//! E6 — how much traffic Edge Fabric detours.
//!
//! Paper shape: the controller touches a small share of traffic — the
//! median PoP detours little or nothing off-peak and a single-digit to
//! low-teens percentage at its regional peak; most traffic always rides
//! BGP's organic choice.

use std::collections::HashMap;

use ef_bench::{load_or_run, percentile, write_json, Arm};
use serde::Serialize;

#[derive(Serialize)]
struct Fig6Row {
    pop: u16,
    mean_detour_frac: f64,
    peak_detour_frac: f64,
    peak_overrides: usize,
}

fn main() {
    let ef = load_or_run(Arm::EdgeFabric);

    let mut by_pop: HashMap<u16, Vec<&ef_sim::PopEpochRecord>> = HashMap::new();
    for r in &ef.pop_epochs {
        by_pop.entry(r.pop).or_default().push(r);
    }

    let mut rows: Vec<Fig6Row> = by_pop
        .iter()
        .map(|(pop, records)| {
            let fracs: Vec<f64> = records
                .iter()
                .map(|r| r.detoured_mbps / r.offered_mbps.max(1.0))
                .collect();
            Fig6Row {
                pop: *pop,
                mean_detour_frac: fracs.iter().sum::<f64>() / fracs.len() as f64,
                peak_detour_frac: fracs.iter().cloned().fold(0.0, f64::max),
                peak_overrides: records
                    .iter()
                    .map(|r| r.overrides_active)
                    .max()
                    .unwrap_or(0),
            }
        })
        .collect();
    rows.sort_by_key(|r| r.pop);

    println!("E6 — fraction of PoP traffic detoured by Edge Fabric (one day)");
    println!(
        "{:>5} {:>12} {:>12} {:>15}",
        "pop", "mean", "peak", "peak overrides"
    );
    for r in &rows {
        println!(
            "{:>5} {:>11.2}% {:>11.2}% {:>15}",
            r.pop,
            r.mean_detour_frac * 100.0,
            r.peak_detour_frac * 100.0,
            r.peak_overrides
        );
    }

    let means: Vec<f64> = rows.iter().map(|r| r.mean_detour_frac).collect();
    let peaks: Vec<f64> = rows.iter().map(|r| r.peak_detour_frac).collect();
    println!(
        "\nmedian PoP: mean {:.2}%, peak {:.2}% | worst PoP peak {:.1}%",
        percentile(&means, 50.0) * 100.0,
        percentile(&peaks, 50.0) * 100.0,
        percentile(&peaks, 100.0) * 100.0
    );

    // Shape: detouring is the exception, not the rule.
    assert!(
        percentile(&means, 50.0) < 0.15,
        "median PoP detours a small share of its traffic"
    );

    write_json("exp_fig6_detour_volume", &rows);
}
