//! E11 / §6 — user-visible performance on a congested path, EF on/off.
//!
//! Paper shape: without Edge Fabric, the overloaded preferred interface
//! inflates RTT (standing queues) and drops traffic through the whole
//! evening peak; with Edge Fabric the same interface stays under the limit
//! and the congestion penalty disappears.

use ef_bench::{load_or_run, write_json, Arm};
use ef_perf::rtt::{PathPerfModel, PerfConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Point {
    t_secs: u64,
    baseline_util: f64,
    ef_util: f64,
    baseline_extra_rtt_ms: f64,
    ef_extra_rtt_ms: f64,
    baseline_loss: f64,
    ef_loss: f64,
}

fn main() {
    let baseline = load_or_run(Arm::Baseline);
    let ef = load_or_run(Arm::EdgeFabric);
    // The RTT/loss inflation model (same knee both arms, by construction).
    let perf = PathPerfModel::new(PerfConfig::default());

    // The watched interface with the worst baseline overload.
    let runs = baseline.max_consecutive_overload();
    let (victim, (_, capacity)) = runs
        .iter()
        .max_by_key(|(_, (n, _))| *n)
        .map(|(e, v)| (*e, *v))
        .expect("a watched interface exists");

    let base_series = &baseline.series[&victim];
    let ef_series = &ef.series[&victim];

    println!(
        "E11 — watched interface if{victim} ({:.0} Mbps), one day, hourly samples",
        capacity
    );
    println!(
        "{:>6} {:>10} {:>10} {:>11} {:>11} {:>9} {:>9}",
        "t(h)", "base util", "EF util", "base RTT+", "EF RTT+", "base loss", "EF loss"
    );

    let mut points = Vec::new();
    for ((t, base_load), (_, ef_load)) in base_series.iter().zip(ef_series.iter()) {
        let bu = base_load / capacity;
        let eu = ef_load / capacity;
        let point = Fig11Point {
            t_secs: *t,
            baseline_util: bu,
            ef_util: eu,
            baseline_extra_rtt_ms: perf.congestion_delay_ms(bu),
            ef_extra_rtt_ms: perf.congestion_delay_ms(eu),
            baseline_loss: perf.loss_rate(bu),
            ef_loss: perf.loss_rate(eu),
        };
        if t % 3600 == 0 {
            println!(
                "{:>6.0} {:>9.0}% {:>9.0}% {:>9.1}ms {:>9.1}ms {:>8.1}% {:>8.1}%",
                *t as f64 / 3600.0,
                bu * 100.0,
                eu * 100.0,
                point.baseline_extra_rtt_ms,
                point.ef_extra_rtt_ms,
                point.baseline_loss * 100.0,
                point.ef_loss * 100.0
            );
        }
        points.push(point);
    }

    let base_peak_rtt = points
        .iter()
        .map(|p| p.baseline_extra_rtt_ms)
        .fold(0.0f64, f64::max);
    let ef_peak_rtt = points
        .iter()
        .map(|p| p.ef_extra_rtt_ms)
        .fold(0.0f64, f64::max);
    let base_loss_epochs = points.iter().filter(|p| p.baseline_loss > 0.0).count();
    let ef_loss_epochs = points.iter().filter(|p| p.ef_loss > 0.0).count();
    println!(
        "\npeak congestion RTT penalty: baseline {base_peak_rtt:.0} ms vs EF {ef_peak_rtt:.0} ms"
    );
    println!(
        "epochs with loss: baseline {base_loss_epochs} vs EF {ef_loss_epochs} (of {})",
        points.len()
    );

    assert!(
        base_peak_rtt >= 60.0,
        "baseline peak hits the standing-queue regime"
    );
    assert!(
        ef_loss_epochs * 20 <= base_loss_epochs,
        "EF eliminates ~all loss epochs ({ef_loss_epochs} vs {base_loss_epochs})"
    );

    write_json("exp_fig11_congestion_rtt", &points);
}
