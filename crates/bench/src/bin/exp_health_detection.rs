//! E19 — health-tier fault detection coverage.
//!
//! Every fault kind the chaos layer can inject must be *visible* to an
//! operator through the built-in SLO rule set (paper §4.4: the controller
//! is stateless per cycle precisely so a stuck or damaged instance can be
//! detected from the outside). One arm per [`ef_chaos::FaultKind`] runs a
//! single fault against a shared deployment with the health tier on, and
//! the binary asserts:
//!
//! (a) each of the 10 fault kinds raises at least one alert from its
//!     expected rule set, at the faulted PoP, within two epochs of onset;
//! (b) the calm arm raises zero alerts (false-positive rate 0);
//! (c) the health tier is read-only: calm and one chaotic arm reproduce
//!     byte-identical results with health on and off.
//!
//! The coverage matrix and per-kind detection latency go to
//! `results/exp_health_detection.json`.

use std::collections::HashMap;

use ef_bench::{telemetry_from_env, write_json};
use ef_bgp::peer::PeerKind;
use ef_bgp::route::EgressId;
use ef_chaos::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
use ef_health::{Alert, HealthConfig};
use ef_sim::{scenario, ScenarioBuilder, SimConfig};
use ef_topology::{generate, Deployment};
use serde::Serialize;

const SEED: u64 = 7;
const EPOCH_SECS: u64 = 30;
const DURATION_SECS: u64 = 900;
/// Fault onset, seconds. Epoch 10 — far past the health warmup.
const ONSET_SECS: u64 = 300;
const FAULT_SECS: u64 = 300;
/// Detection SLO: an expected alert must fire within this many epochs.
const DETECT_EPOCHS: u64 = 2;

fn base_config() -> SimConfig {
    // EF_TELEMETRY=<path> streams health.sample / alert.* events to a
    // JSON-lines file; results/ output is byte-identical either way.
    scenario()
        .small_topology(SEED)
        .duration_secs(DURATION_SECS)
        .epoch_secs(EPOCH_SECS)
        .telemetry(telemetry_from_env())
        .build()
}

/// Runs one arm; returns its alerts (when health is on) and the results
/// fingerprint the read-only contract is judged by.
fn run_arm(cfg: SimConfig, deployment: &Deployment, health: bool) -> (Vec<Alert>, String) {
    let mut builder = ScenarioBuilder::from_config(cfg);
    if health {
        builder = builder.health(HealthConfig::default());
    }
    let mut engine = builder.engine_with(deployment.clone());
    engine.run();
    let alerts = engine
        .health_monitor()
        .map(|m| m.all_alerts())
        .unwrap_or_default();
    let metrics = engine.take_metrics();
    let fingerprint =
        serde_json::to_string(&(&metrics.pop_epochs, &metrics.episodes)).expect("serializes");
    (alerts, fingerprint)
}

fn single_fault(cfg: &SimConfig, target: FaultTarget, kind: FaultKind) -> SimConfig {
    let schedule = FaultSchedule::new(vec![FaultEvent {
        t_start_secs: ONSET_SECS,
        duration_secs: FAULT_SECS,
        target,
        kind,
    }])
    .expect("single-fault schedule is valid");
    ScenarioBuilder::from_config(cfg.clone())
        .chaos(schedule)
        .build()
}

#[derive(Serialize)]
struct KindRow {
    kind: &'static str,
    target_pop: u16,
    expected_rules: Vec<&'static str>,
    detected_rule: String,
    fired_t_secs: u64,
    detect_latency_epochs: u64,
    alerts_at_pop: usize,
    alerts_elsewhere: usize,
}

#[derive(Serialize)]
struct Coverage {
    seed: u64,
    epoch_secs: u64,
    duration_secs: u64,
    onset_secs: u64,
    fault_secs: u64,
    detect_slo_epochs: u64,
    kinds_detected: usize,
    kinds_total: usize,
    calm_alerts: usize,
    false_positive_rate: f64,
    kinds: Vec<KindRow>,
}

fn main() {
    let cfg = base_config();
    let deployment = generate(&cfg.gen);

    // --- calm arm: zero alerts, and health on == off ---------------------
    eprintln!("[health-detection] calm arm (health on vs. off)...");
    let (calm_alerts, calm_on_fp) = run_arm(cfg.clone(), &deployment, true);
    let (_, calm_off_fp) = run_arm(cfg.clone(), &deployment, false);
    assert_eq!(
        calm_on_fp, calm_off_fp,
        "health tier changed the calm run's results"
    );
    assert!(
        calm_alerts.is_empty(),
        "calm arm raised alerts: {calm_alerts:?}"
    );

    // A reference run with full load-series recording picks the fault
    // targets: the busiest peering interface (capacity loss), its PoP
    // (pop-scoped faults), and the first peer at that PoP (peer faults).
    eprintln!("[health-detection] reference run for target selection...");
    let peering: Vec<EgressId> = deployment
        .pops
        .iter()
        .flat_map(|p| p.interfaces.iter())
        .filter(|i| i.kind() != PeerKind::Transit)
        .map(|i| i.id)
        .collect();
    let mut reference = ScenarioBuilder::from_config(cfg.clone()).engine_with(deployment.clone());
    for egress in &peering {
        reference.flag_interface(*egress);
    }
    reference.run();
    let reference = reference.take_metrics();
    let capacity: HashMap<EgressId, (u16, f64)> = deployment
        .pops
        .iter()
        .flat_map(|p| {
            p.interfaces
                .iter()
                .map(|i| (i.id, (p.id.0, i.capacity_mbps)))
        })
        .collect();
    let in_window = |t: u64| (ONSET_SECS..ONSET_SECS + FAULT_SECS).contains(&t);
    let (target_egress, peak_util) = peering
        .iter()
        .map(|egress| {
            let peak = reference.series[egress]
                .iter()
                .filter(|(t, _)| in_window(*t))
                .map(|(_, load)| load / capacity[egress].1)
                .fold(0.0f64, f64::max);
            (*egress, peak)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("deployment has peering interfaces");
    let (target_pop, _) = capacity[&target_egress];
    let pop = target_pop as usize;
    let peer = deployment.pops[pop].peers[0].peer.0;
    // Cut capacity so the surviving headroom is 60% of the observed peak:
    // utilization is guaranteed past 1.0 at onset.
    let caploss = (1.0 - 0.6 * peak_util).clamp(0.2, 0.95);
    // The PoP whose controller churns most right after onset hosts the
    // injection-loss fault: partial loss is only visible when the
    // injector actually sends.
    let churn_pop = deployment
        .pops
        .iter()
        .map(|p| {
            let churn: usize = reference
                .pop_epochs
                .iter()
                .filter(|r| r.pop == p.id.0 && in_window(r.t_secs))
                .map(|r| r.churn_announced + r.churn_withdrawn)
                .sum();
            (p.id.0, churn)
        })
        .max_by_key(|(_, churn)| *churn)
        .map(|(id, _)| id as usize)
        .expect("deployment has PoPs");
    eprintln!(
        "[health-detection] target pop{target_pop} egress{} (peak util {peak_util:.2}), \
         churn pop{churn_pop}",
        target_egress.0
    );

    // Fault → the rules an operator should be paged by.
    let matrix: Vec<(FaultKind, FaultTarget, Vec<&'static str>)> = vec![
        (
            FaultKind::PeerFailure,
            FaultTarget::Peer { pop, peer },
            vec!["bgp_session_down"],
        ),
        (
            FaultKind::LinkCapacityLoss { fraction: caploss },
            FaultTarget::Interface {
                pop,
                egress: target_egress.0,
            },
            vec!["interface_overload", "drop_rate_ceiling"],
        ),
        (
            FaultKind::BmpStall,
            FaultTarget::Pop { pop },
            vec!["stale_inputs"],
        ),
        (
            FaultKind::SflowLoss {
                drop_fraction: 0.95,
            },
            FaultTarget::Pop { pop },
            vec!["stale_inputs"],
        ),
        (
            FaultKind::ControllerCrash,
            FaultTarget::Pop { pop },
            vec!["controller_down"],
        ),
        (
            FaultKind::InjectorLoss,
            FaultTarget::Pop { pop },
            vec!["injector_down"],
        ),
        (
            FaultKind::FlashCrowd { multiplier: 3.0 },
            FaultTarget::Pop { pop },
            vec!["interface_overload", "drop_rate_ceiling"],
        ),
        (
            FaultKind::UpdateCorruption { rate: 0.9 },
            FaultTarget::Peer { pop, peer },
            vec!["ingest_corruption"],
        ),
        (
            FaultKind::SessionFlapStorm { period_s: 5 },
            FaultTarget::Peer { pop, peer },
            vec!["session_flap", "bgp_session_down"],
        ),
        (
            FaultKind::InjectorPartialLoss { fraction: 0.9 },
            FaultTarget::Pop { pop: churn_pop },
            vec!["injection_loss", "override_audit"],
        ),
    ];

    let mut rows: Vec<KindRow> = Vec::new();
    for (kind, target, expected) in &matrix {
        let label = kind.label();
        eprintln!("[health-detection] arm {label}...");
        // Every arm in this matrix targets a per-PoP fault.
        let fault_pop = target.pop().unwrap_or(0) as u16;
        let chaos_cfg = single_fault(&cfg, *target, *kind);
        let (alerts, _) = run_arm(chaos_cfg, &deployment, true);
        let hit = alerts
            .iter()
            .filter(|a| {
                a.pop == fault_pop
                    && expected.contains(&a.rule.as_str())
                    && a.fired_t_secs >= ONSET_SECS
                    && a.fired_t_secs <= ONSET_SECS + DETECT_EPOCHS * EPOCH_SECS
            })
            .min_by_key(|a| a.fired_t_secs);
        let hit = hit.unwrap_or_else(|| {
            panic!(
                "{label}: no expected alert ({expected:?}) at pop{fault_pop} within \
                 {DETECT_EPOCHS} epochs of onset; raised: {alerts:?}"
            )
        });
        let alerts_at_pop = alerts.iter().filter(|a| a.pop == fault_pop).count();
        rows.push(KindRow {
            kind: label,
            target_pop: fault_pop,
            expected_rules: expected.clone(),
            detected_rule: hit.rule.clone(),
            fired_t_secs: hit.fired_t_secs,
            detect_latency_epochs: (hit.fired_t_secs - ONSET_SECS) / EPOCH_SECS,
            alerts_at_pop,
            alerts_elsewhere: alerts.len() - alerts_at_pop,
        });
    }

    // --- read-only contract under chaos: one arm, health on vs. off ------
    eprintln!("[health-detection] read-only check under chaos...");
    let chaos_cfg = single_fault(
        &cfg,
        FaultTarget::Interface {
            pop,
            egress: target_egress.0,
        },
        FaultKind::LinkCapacityLoss { fraction: caploss },
    );
    let (_, chaotic_on_fp) = run_arm(chaos_cfg.clone(), &deployment, true);
    let (_, chaotic_off_fp) = run_arm(chaos_cfg, &deployment, false);
    assert_eq!(
        chaotic_on_fp, chaotic_off_fp,
        "health tier changed the chaotic run's results"
    );

    // --- summary ---------------------------------------------------------
    println!("Health detection — expected alert per fault kind, latency in epochs");
    println!(
        "{:>22} {:>6} {:>20} {:>8} {:>8}",
        "fault", "pop", "detected by", "fired@s", "epochs"
    );
    for r in &rows {
        println!(
            "{:>22} {:>6} {:>20} {:>8} {:>8}",
            r.kind, r.target_pop, r.detected_rule, r.fired_t_secs, r.detect_latency_epochs
        );
    }
    println!(
        "\n{}/{} kinds detected within {DETECT_EPOCHS} epochs; calm arm raised 0 alerts",
        rows.len(),
        matrix.len()
    );

    write_json(
        "exp_health_detection",
        &Coverage {
            seed: SEED,
            epoch_secs: EPOCH_SECS,
            duration_secs: DURATION_SECS,
            onset_secs: ONSET_SECS,
            fault_secs: FAULT_SECS,
            detect_slo_epochs: DETECT_EPOCHS,
            kinds_detected: rows.len(),
            kinds_total: matrix.len(),
            calm_alerts: calm_alerts.len(),
            false_positive_rate: 0.0,
            kinds: rows,
        },
    );
}
