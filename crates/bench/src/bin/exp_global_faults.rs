//! E20 — the global-fault matrix: every global-tier fault kind against
//! the E18 blackout + flash-crowd scenario, with bounded recovery.
//!
//! The worry E20 retires is split-brain: a global tier acting on a
//! partitioned, stale, or lying view of the world can *add* damage to an
//! incident that per-PoP Edge Fabric was already containing. Each arm
//! reuses a shrunken E18 world (EU PoP loses 90% of its egress at t=1.5h
//! for an hour; the EU population's demand multiplies 2.5× from t=1.75h)
//! and injects one global fault overlapping the incident:
//!
//! * **report_partition** — 4 of 6 PoPs stop reporting: below the report
//!   quorum the tier must run *fail-static* (hold placements, initiate
//!   nothing);
//! * **report_staleness** — the victim's report stream replays 4 epochs
//!   late: its budgets/cells must age out rather than steer on fiction;
//! * **global_controller_crash** — the tier is down: issued placements
//!   outlive it, recovery restarts from decayed budgets;
//! * **headroom_lie** — a helper PoP reports 50× its true headroom: the
//!   plausibility clamp must bound its budget by baseline demand.
//!
//! Asserted per arm, the bounded-recovery contract:
//!
//! 1. the matching guard engages within one epoch of fault start;
//! 2. placements drain within `K = ceil(1/decay) + ttl + hold_down + 2`
//!    epochs of the incident's end (guards may pause recovery, never
//!    wedge it);
//! 3. the guarded arm never drops more traffic than EF-only — degraded
//!    steering must stay no worse than no steering at all.

use ef_bench::{telemetry_from_env, write_json};
use ef_chaos::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
use ef_global::{BackendKind, FlashCrowdSpec, GlobalConfig};
use ef_sim::{scenario, ScenarioBuilder, SimConfig};
use ef_topology::{generate, Deployment, GenConfig, PopId, Region};
use serde::Serialize;

const EPOCH_SECS: u64 = 60;
const BLACKOUT_START_SECS: u64 = 5400; // 1.5 h
const BLACKOUT_SECS: u64 = 3600;
const CROWD_START_SECS: u64 = 6300; // 1.75 h
const CROWD_SECS: u64 = 2700;
const CROWD_MULTIPLIER: f64 = 2.5;
const GLOBAL_FAULT_START_SECS: u64 = 6300; // mid-blackout, with the crowd
const GLOBAL_FAULT_SECS: u64 = 1800;
const DECAY: f64 = 0.05;
const TTL_EPOCHS: u64 = 4;
/// Away-fraction below which a placement counts as drained.
const DRAINED: f64 = 0.01;

#[derive(Serialize)]
struct ArmResult {
    arm: String,
    drops_total_mbps_epochs: f64,
    drops_victim_mbps_epochs: f64,
    peak_away_fraction: f64,
    /// Epochs between fault start and the guard signal firing
    /// (fault arms only).
    engage_lag_epochs: Option<u64>,
    /// Epochs past incident end until the victim's away-fraction stayed
    /// below the drained threshold.
    drain_lag_epochs: u64,
    /// Fail-static epochs over the whole run.
    frozen_epochs: u64,
}

#[derive(Serialize)]
struct E20Output {
    victim_pop: u16,
    lied_pop: u16,
    blackout_start_secs: u64,
    blackout_secs: u64,
    crowd_multiplier: f64,
    fault_start_secs: u64,
    fault_secs: u64,
    recovery_budget_epochs: u64,
    arms: Vec<ArmResult>,
}

fn base_config() -> SimConfig {
    scenario()
        .topology(GenConfig {
            n_pops: 6,
            n_ases: 150,
            n_prefixes: 800,
            total_avg_gbps: 2000.0,
            ..GenConfig::default()
        })
        .hours(5)
        .epoch_secs(EPOCH_SECS)
        .telemetry(telemetry_from_env())
        .build()
}

/// E18's aggressive steering tuning with guards at their defaults; a
/// faster decay keeps the recovery budget within the 5-hour run.
fn steering(backend: Option<BackendKind>) -> GlobalConfig {
    GlobalConfig {
        backend,
        step: 0.1,
        max_shift: 1.0,
        decay: DECAY,
        ..GlobalConfig::default()
    }
    .with_flash_crowd(FlashCrowdSpec {
        population: "EU".into(),
        t_start_secs: CROWD_START_SECS,
        duration_secs: CROWD_SECS,
        multiplier: CROWD_MULTIPLIER,
    })
}

fn blackout(dep: &Deployment, victim: PopId) -> Vec<FaultEvent> {
    dep.pops[victim.0 as usize]
        .interfaces
        .iter()
        .map(|iface| FaultEvent {
            t_start_secs: BLACKOUT_START_SECS,
            duration_secs: BLACKOUT_SECS,
            target: FaultTarget::Interface {
                pop: victim.0 as usize,
                egress: iface.id.0,
            },
            kind: FaultKind::LinkCapacityLoss { fraction: 0.9 },
        })
        .collect()
}

fn global_fault(kind: FaultKind, pop: Option<usize>) -> FaultEvent {
    FaultEvent {
        t_start_secs: GLOBAL_FAULT_START_SECS,
        duration_secs: GLOBAL_FAULT_SECS,
        target: FaultTarget::Global { pop },
        kind,
    }
}

/// How many epochs recovery may lawfully take after the incident ends:
/// full decay from away=1, plus the DNS TTL convergence lag, plus the
/// restore hold-down, plus slack for the epoch grid.
fn recovery_budget_epochs() -> u64 {
    let cfg = GlobalConfig::default();
    (1.0 / DECAY).ceil() as u64 + TTL_EPOCHS + cfg.hold_down_epochs + 2
}

struct GuardProbe {
    /// Fires when the arm's guard signal is active for the epoch.
    engaged: fn(&ef_global::GuardSnapshot) -> bool,
}

fn run(
    cfg: SimConfig,
    dep: &Deployment,
    victim: PopId,
    arm: &str,
    probe: Option<&GuardProbe>,
    lie_check: Option<u16>,
) -> ArmResult {
    let epochs = cfg.epochs();
    let mut engine = ScenarioBuilder::from_config(cfg).engine_with(dep.clone());
    let fault_end = GLOBAL_FAULT_START_SECS + GLOBAL_FAULT_SECS;
    let incident_end = (BLACKOUT_START_SECS + BLACKOUT_SECS).max(fault_end);
    let mut peak_away = 0.0f64;
    let mut engaged_at: Option<u64> = None;
    let mut last_undrained: Option<u64> = None;
    let mut frozen_epochs = 0u64;
    for _ in 0..epochs {
        let t = engine.now_secs();
        engine.step();
        let Some(g) = engine.global.as_ref() else {
            continue;
        };
        let away = g.away_fraction(victim);
        peak_away = peak_away.max(away);
        let snap = g.guard_snapshot();
        frozen_epochs = snap.frozen_epochs;
        if let Some(probe) = probe {
            if engaged_at.is_none() && t >= GLOBAL_FAULT_START_SECS && (probe.engaged)(&snap) {
                engaged_at = Some(t);
            }
        }
        if let Some(lied) = lie_check {
            if t >= GLOBAL_FAULT_START_SECS && t < fault_end {
                let j = lied as usize;
                let budget = g.detour_budgets().get(j).copied().unwrap_or(0.0);
                let cap = GlobalConfig::default().budget_plausibility
                    * g.pop_baseline().get(j).copied().unwrap_or(0.0);
                assert!(
                    budget <= cap * (1.0 + 1e-9),
                    "[E20] {arm}: lied budget {budget:.0} exceeds plausibility cap {cap:.0}"
                );
            }
        }
        if t >= incident_end && away > DRAINED {
            last_undrained = Some(t);
        }
    }
    let engage_lag_epochs = probe.map(|_| match engaged_at {
        Some(t) => (t - GLOBAL_FAULT_START_SECS) / EPOCH_SECS,
        None => u64::MAX,
    });
    let drain_lag_epochs = match last_undrained {
        Some(t) => (t + EPOCH_SECS - incident_end) / EPOCH_SECS,
        None => 0,
    };
    let m = engine.take_metrics();
    let drops_total: f64 = m.pop_epochs.iter().map(|r| r.dropped_mbps).sum();
    let drops_victim: f64 = m
        .pop_epochs
        .iter()
        .filter(|r| r.pop == victim.0)
        .map(|r| r.dropped_mbps)
        .sum();
    ArmResult {
        arm: arm.to_string(),
        drops_total_mbps_epochs: drops_total,
        drops_victim_mbps_epochs: drops_victim,
        peak_away_fraction: peak_away,
        engage_lag_epochs,
        drain_lag_epochs,
        frozen_epochs,
    }
}

fn main() {
    let cfg = base_config();
    let dep = generate(&cfg.gen);
    let victim = dep
        .pops
        .iter()
        .find(|p| p.region == Region::Europe)
        .map(|p| p.id)
        .expect("a 6-PoP world has an EU PoP");
    // The lie lands on a helper PoP — one absorbing detours, not the
    // victim — so an unclamped lie would over-steer traffic toward it.
    let lied = dep
        .pops
        .iter()
        .find(|p| p.id != victim)
        .map(|p| p.id)
        .expect("more than one PoP");
    // 4 of 6 partitioned PoPs leaves 2 delivered < quorum(0.5) × 6.
    let partitioned: Vec<usize> = (0..dep.pops.len()).take(4).collect();

    let incident = blackout(&dep, victim);
    let schedule = |extra: Vec<FaultEvent>| {
        let mut events = incident.clone();
        events.extend(extra);
        FaultSchedule::new(events).expect("valid schedule")
    };
    let arm_cfg = |backend: Option<BackendKind>, extra: Vec<FaultEvent>| {
        ScenarioBuilder::from_config(cfg.clone())
            .global(steering(backend))
            .chaos(schedule(extra))
            .build()
    };
    let dns = || {
        Some(BackendKind::Dns {
            ttl_epochs: TTL_EPOCHS,
        })
    };

    eprintln!("[E20] EF only: incident without steering...");
    let ef_only = run(arm_cfg(None, vec![]), &dep, victim, "ef_only", None, None);
    eprintln!("[E20] DNS steering, no global fault...");
    let clean = run(
        arm_cfg(dns(), vec![]),
        &dep,
        victim,
        "dns_clean",
        None,
        None,
    );

    eprintln!("[E20] report_partition (4 of 6 PoPs dark)...");
    let partition = run(
        arm_cfg(
            dns(),
            partitioned
                .iter()
                .map(|&j| global_fault(FaultKind::ReportPartition, Some(j)))
                .collect(),
        ),
        &dep,
        victim,
        "report_partition",
        Some(&GuardProbe {
            engaged: |s| s.fail_static,
        }),
        None,
    );
    eprintln!("[E20] report_staleness (victim stream 4 epochs late)...");
    let staleness = run(
        arm_cfg(
            dns(),
            vec![global_fault(
                FaultKind::ReportStaleness { epochs: 4 },
                Some(victim.0 as usize),
            )],
        ),
        &dep,
        victim,
        "report_staleness",
        Some(&GuardProbe {
            engaged: |s| s.stale_pops > 0,
        }),
        None,
    );
    eprintln!("[E20] global_controller_crash (tier down 30 min)...");
    let crash = run(
        arm_cfg(
            dns(),
            vec![global_fault(FaultKind::GlobalControllerCrash, None)],
        ),
        &dep,
        victim,
        "global_controller_crash",
        Some(&GuardProbe {
            engaged: |s| s.fail_static,
        }),
        None,
    );
    eprintln!("[E20] headroom_lie (helper PoP claims 50x headroom)...");
    let lie = run(
        arm_cfg(
            dns(),
            vec![global_fault(
                FaultKind::HeadroomLie { factor: 50.0 },
                Some(lied.0 as usize),
            )],
        ),
        &dep,
        victim,
        "headroom_lie",
        Some(&GuardProbe {
            engaged: |s| s.plausibility_clamped,
        }),
        Some(lied.0),
    );

    let budget_epochs = recovery_budget_epochs();
    println!("E20 — global-fault matrix over the E18 incident");
    println!(
        "{:<24} {:>14} {:>12} {:>10} {:>10} {:>8}",
        "arm", "drops (Mb·ep)", "victim", "engage", "drain", "frozen"
    );
    for a in [&ef_only, &clean, &partition, &staleness, &crash, &lie] {
        println!(
            "{:<24} {:>14.0} {:>12.0} {:>10} {:>10} {:>8}",
            a.arm,
            a.drops_total_mbps_epochs,
            a.drops_victim_mbps_epochs,
            a.engage_lag_epochs
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into()),
            a.drain_lag_epochs,
            a.frozen_epochs
        );
    }
    println!("recovery budget: {budget_epochs} epochs past incident end");

    assert!(
        ef_only.drops_total_mbps_epochs > 0.0,
        "the incident must drop traffic without steering"
    );
    assert!(
        clean.drops_total_mbps_epochs < ef_only.drops_total_mbps_epochs / 5.0,
        "clean steering must cut drops >=5x before faults mean anything"
    );
    for a in [&partition, &staleness, &crash, &lie] {
        let lag = a.engage_lag_epochs.unwrap_or(u64::MAX);
        assert!(
            lag <= 1,
            "[E20] {}: guard engaged {lag} epochs after fault start (want <=1)",
            a.arm
        );
        assert!(
            a.drain_lag_epochs <= budget_epochs,
            "[E20] {}: placements took {} epochs past incident end to drain (budget {})",
            a.arm,
            a.drain_lag_epochs,
            budget_epochs
        );
        assert!(
            a.drops_total_mbps_epochs <= ef_only.drops_total_mbps_epochs * (1.0 + 1e-9),
            "[E20] {}: guarded steering dropped more than EF-only ({:.0} vs {:.0})",
            a.arm,
            a.drops_total_mbps_epochs,
            ef_only.drops_total_mbps_epochs
        );
    }
    assert!(
        partition.frozen_epochs >= GLOBAL_FAULT_SECS / EPOCH_SECS,
        "partition below quorum must run fail-static for the fault window"
    );
    assert!(
        crash.frozen_epochs >= GLOBAL_FAULT_SECS / EPOCH_SECS,
        "a crashed tier counts every fault epoch as frozen"
    );
    assert_eq!(
        staleness.frozen_epochs, 0,
        "one stale PoP keeps quorum; staleness degrades budgets, not the tier"
    );

    write_json(
        "exp_global_faults",
        &E20Output {
            victim_pop: victim.0,
            lied_pop: lied.0,
            blackout_start_secs: BLACKOUT_START_SECS,
            blackout_secs: BLACKOUT_SECS,
            crowd_multiplier: CROWD_MULTIPLIER,
            fault_start_secs: GLOBAL_FAULT_START_SECS,
            fault_secs: GLOBAL_FAULT_SECS,
            recovery_budget_epochs: budget_epochs,
            arms: vec![ef_only, clean, partition, staleness, crash, lie],
        },
    );
}
