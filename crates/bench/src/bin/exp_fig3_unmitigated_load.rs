//! E3 / Fig. 3 — the load BGP alone would place on egress interfaces.
//!
//! Paper shape: absent Edge Fabric, BGP keeps sending traffic to preferred
//! interfaces past their capacity during daily peaks — a tail of
//! (interface, interval) samples exceeds 100 % utilization, approaching
//! ~2× capacity on the worst interfaces.

use ef_bench::{cdf_points, load_or_run, write_json, Arm};
use serde::Serialize;

#[derive(Serialize)]
struct Fig3Output {
    cdf_peering_util: Vec<(f64, f64)>,
    interfaces_ever_over_capacity: usize,
    peering_interfaces: usize,
    worst_peak_util: f64,
    frac_samples_over_capacity: f64,
}

fn main() {
    let data = load_or_run(Arm::Baseline);

    // Reconstruct the utilization sample distribution over all peering
    // (capacity-constrained) interfaces from their histograms.
    let mut samples: Vec<f64> = Vec::new();
    let mut over = 0u64;
    let mut total = 0u64;
    for stats in data.peering_interfaces() {
        for (bucket, count) in stats.util_histogram.iter().enumerate() {
            let util = (bucket as f64 + 0.5) / 50.0;
            for _ in 0..*count {
                samples.push(util);
            }
            total += u64::from(*count);
            if util > 1.0 {
                over += u64::from(*count);
            }
        }
    }
    let cdf = cdf_points(&samples, 40);

    println!("E3 / Fig. 3 — unmitigated utilization across peering interface-epochs");
    println!("{:>12} {:>10}", "utilization", "CDF");
    for (u, f) in &cdf {
        if *f > 0.55 {
            // The interesting part is the upper tail.
            println!("{:>11.0}% {:>9.3}", u * 100.0, f);
        }
    }

    let ever_over = data
        .peering_interfaces()
        .filter(|s| s.epochs_over_capacity > 0)
        .count();
    let n_peering = data.peering_interfaces().count();
    let worst = data
        .peering_interfaces()
        .map(|s| s.peak_util)
        .fold(0.0f64, f64::max);
    println!(
        "\ninterfaces that would exceed capacity: {} / {} peering interfaces",
        ever_over, n_peering
    );
    println!("worst peak: {:.0}% of capacity", worst * 100.0);
    println!(
        "interface-epochs over capacity: {:.2}%",
        100.0 * over as f64 / total as f64
    );

    // Paper-shape assertions: a real minority overloads, the worst nearing 2x.
    assert!(ever_over > 0, "the problem exists");
    assert!(
        (ever_over as f64) < 0.5 * n_peering as f64,
        "overload is a minority phenomenon"
    );
    assert!(
        worst > 1.4,
        "worst interfaces far exceed capacity (got {worst})"
    );

    write_json(
        "exp_fig3_unmitigated_load",
        &Fig3Output {
            cdf_peering_util: cdf,
            interfaces_ever_over_capacity: ever_over,
            peering_interfaces: n_peering,
            worst_peak_util: worst,
            frac_samples_over_capacity: over as f64 / total as f64,
        },
    );
}
