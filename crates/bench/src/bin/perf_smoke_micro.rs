//! Microbenchmark regression gates for the perf-smoke CI job: FIB
//! longest-prefix match and the BGP decision ladder.
//!
//! The criterion benches (`benches/lpm.rs`, `benches/decision.rs`) produce
//! the detailed curves; this binary distills the two hot-path numbers into
//! a committed baseline and a pass/fail gate, the same shape as
//! `exp_perf_scaling --smoke`:
//!
//! * default — measure and write `results/BENCH_micro.json`;
//! * `--check` — measure and exit nonzero if any metric regressed more
//!   than 2x against the committed baseline (headroom for machine-to-
//!   machine variance, as in the epoch gate).
//!
//! Timings are min-of-reps over fixed iteration counts — the standard
//! steady-state estimator under one-sided noise.

use std::time::Instant;

use ef_bench::{results_dir, write_json};
use ef_bgp::attrs::{AsPath, PathAttributes};
use ef_bgp::attrstore::{AttrStore, RouteRec};
use ef_bgp::decision::{best_rec, rank_recs_into};
use ef_bgp::peer::{PeerId, PeerKind};
use ef_bgp::route::{EgressId, RouteSource};
use ef_net_types::{Asn, CompressedTrie, Prefix};
use serde::{Deserialize, Serialize};

const TRIE_N: u32 = 100_000;
const LOOKUP_ITERS: u32 = 200_000;
const DECISION_ITERS: u32 = 500_000;
const BUILD_REPS: usize = 5;
const REPS: usize = 7;
const REGRESSION_HEADROOM: f64 = 2.0;

#[derive(Serialize, Deserialize)]
struct MicroReport {
    trie_n: u32,
    /// CompressedTrie longest-match, ns per lookup.
    lpm_ns: f64,
    /// CompressedTrie::from_sorted batched build, ms for `trie_n` keys.
    trie_build_ms: f64,
    /// best_rec over 8 candidates, ns per call.
    decision_best_ns: f64,
    /// rank_recs_into over 8 candidates, ns per call.
    decision_rank_ns: f64,
}

fn keyset(n: u32) -> Vec<(Prefix, u32)> {
    (0..n)
        .map(|i| {
            let addr = i.wrapping_mul(2_654_435_761);
            let len = if i % 3 == 0 { 16 } else { 24 };
            (Prefix::v4(std::net::Ipv4Addr::from(addr), len), i)
        })
        .collect()
}

fn rec_candidates(n: usize) -> Vec<RouteRec> {
    let mut store = AttrStore::new();
    (0..n)
        .map(|i| {
            let attrs = PathAttributes {
                local_pref: Some(200 + ((i * 200) % 800) as u32),
                as_path: AsPath::sequence((0..(i % 4 + 1)).map(|k| Asn(65000 + k as u32))),
                med: Some((i * 7 % 100) as u32),
                ..Default::default()
            };
            let source = RouteSource {
                peer: PeerId(i as u64),
                peer_asn: Asn(65000 + i as u32),
                kind: if i % 3 == 0 {
                    PeerKind::Transit
                } else {
                    PeerKind::PrivatePeer
                },
            };
            store.make_rec(&attrs, source, EgressId(i as u32))
        })
        .collect()
}

/// Min-of-reps wall time of `f`, seconds.
fn timed(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn measure() -> MicroReport {
    let trie = CompressedTrie::from_sorted(keyset(TRIE_N));
    let keys: Vec<Prefix> = (0..1024u32)
        .map(|i| Prefix::v4(std::net::Ipv4Addr::from(i.wrapping_mul(2_654_435_761)), 24))
        .collect();

    let lpm = timed(REPS, || {
        let mut hits = 0usize;
        for i in 0..LOOKUP_ITERS {
            let key = keys[(i as usize) % keys.len()];
            if std::hint::black_box(trie.longest_match(key)).is_some() {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
    });

    let build = timed(BUILD_REPS, || {
        std::hint::black_box(CompressedTrie::from_sorted(keyset(TRIE_N)));
    });

    let recs = rec_candidates(8);
    let best = timed(REPS, || {
        for _ in 0..DECISION_ITERS {
            std::hint::black_box(best_rec(std::hint::black_box(&recs)));
        }
    });
    let mut out = Vec::with_capacity(recs.len());
    let rank = timed(REPS, || {
        for _ in 0..DECISION_ITERS {
            rank_recs_into(std::hint::black_box(&recs), &mut out);
            std::hint::black_box(out.len());
        }
    });

    let report = MicroReport {
        trie_n: TRIE_N,
        lpm_ns: lpm * 1e9 / f64::from(LOOKUP_ITERS),
        trie_build_ms: build * 1e3,
        decision_best_ns: best * 1e9 / f64::from(DECISION_ITERS),
        decision_rank_ns: rank * 1e9 / f64::from(DECISION_ITERS),
    };
    println!(
        "micro: lpm {:.1} ns, build({}) {:.1} ms, best_rec {:.1} ns, rank {:.1} ns",
        report.lpm_ns,
        report.trie_n,
        report.trie_build_ms,
        report.decision_best_ns,
        report.decision_rank_ns
    );
    report
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let report = measure();
    if !check {
        write_json("BENCH_micro", &report);
        return;
    }
    let path = results_dir().join("BENCH_micro.json");
    let committed: Option<MicroReport> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let Some(committed) = committed else {
        eprintln!("[micro] no committed baseline at {path:?}; check passes vacuously");
        return;
    };
    let gates = [
        ("lpm_ns", report.lpm_ns, committed.lpm_ns),
        (
            "trie_build_ms",
            report.trie_build_ms,
            committed.trie_build_ms,
        ),
        (
            "decision_best_ns",
            report.decision_best_ns,
            committed.decision_best_ns,
        ),
        (
            "decision_rank_ns",
            report.decision_rank_ns,
            committed.decision_rank_ns,
        ),
    ];
    let mut failed = false;
    for (name, measured, baseline) in gates {
        let limit = baseline * REGRESSION_HEADROOM;
        let verdict = if measured > limit { "FAIL" } else { "ok" };
        println!("micro gate {name}: measured {measured:.1}, baseline {baseline:.1}, limit {limit:.1} [{verdict}]");
        failed |= measured > limit;
    }
    if failed {
        eprintln!("[micro] FAIL: hot-path microbenchmark regressed more than 2x vs baseline");
        std::process::exit(1);
    }
}
