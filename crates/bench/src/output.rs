//! Small statistics and output helpers for the experiment binaries.

use std::path::PathBuf;

use serde::Serialize;

/// The directory experiment outputs are written to (`results/` at the
/// workspace root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Walks up from the crate's manifest to the workspace root.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

/// Opt-in telemetry sink for experiment binaries: when the `EF_TELEMETRY`
/// environment variable names a file, every telemetry record streams there
/// as JSON lines; otherwise telemetry stays disabled. The sink is pure
/// I/O — attaching it never changes what lands in the byte-compared
/// `results/` files (the CI determinism job runs with it enabled).
pub fn telemetry_from_env() -> ef_telemetry::TelemetryHandle {
    match std::env::var("EF_TELEMETRY") {
        Ok(path) if !path.is_empty() => match ef_telemetry::TelemetryHandle::to_file(&path) {
            Ok(handle) => {
                eprintln!("[telemetry] streaming records to {path}");
                handle
            }
            Err(e) => {
                eprintln!("[telemetry] cannot open {path}: {e}; telemetry disabled");
                ef_telemetry::TelemetryHandle::disabled()
            }
        },
        _ => ef_telemetry::TelemetryHandle::disabled(),
    }
}

/// Serializes `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize");
    std::fs::write(&path, json).expect("write results file");
    println!("[wrote {}]", path.display());
}

/// Empirical CDF: returns `(value, fraction ≤ value)` at `n` evenly spaced
/// ranks (plus the max). Input need not be sorted.
pub fn cdf_points(values: &[f64], n: usize) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let len = v.len();
    let mut out = Vec::with_capacity(n + 1);
    for i in 0..n {
        let rank = (i * (len - 1)) / n.max(1);
        out.push((v[rank], (rank + 1) as f64 / len as f64));
    }
    out.push((v[len - 1], 1.0));
    out.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    out
}

/// The `p`-th percentile (0–100) of `values` (nearest-rank).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let cdf = cdf_points(&values, 4);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_empty_is_empty() {
        assert!(cdf_points(&[], 10).is_empty());
    }

    #[test]
    fn percentiles() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 50.0), 51.0);
        assert_eq!(percentile(&values, 100.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}
