//! Experiment harness shared by the per-figure binaries.
//!
//! The heavyweight experiments (E3–E9, E11) share two simulation "arms" —
//! baseline BGP and Edge Fabric — over the same one-day, 20-PoP scenario.
//! [`campaign`] runs an arm once and caches its distilled metrics as JSON
//! under `results/`, so each figure binary is cheap after the first run.
//! [`output`] holds the small statistics/printing helpers.

pub mod campaign;
pub mod output;

pub use campaign::{load_or_run, Arm, CampaignData};
pub use output::{cdf_points, percentile, results_dir, telemetry_from_env, write_json};
