//! The shared one-day campaign: baseline BGP vs. Edge Fabric on the same
//! world, distilled and cached under `results/`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ef_bgp::route::EgressId;
use ef_sim::{scenario, MetricsStore, ScenarioBuilder, SimConfig};
use ef_topology::generate;

use crate::output::results_dir;

/// Which arm of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// BGP alone: controller disabled; overloads land where BGP puts them.
    Baseline,
    /// Edge Fabric enabled.
    EdgeFabric,
}

impl Arm {
    fn label(self) -> &'static str {
        match self {
            Arm::Baseline => "baseline",
            Arm::EdgeFabric => "edge_fabric",
        }
    }
}

/// Distilled metrics of one campaign arm (serializable cache).
#[derive(Debug, Serialize, Deserialize)]
pub struct CampaignData {
    /// Scenario epoch length, seconds.
    pub epoch_secs: u64,
    /// Scenario duration, seconds.
    pub duration_secs: u64,
    /// Per-interface aggregates.
    pub interfaces: Vec<ef_sim::InterfaceStats>,
    /// Per-PoP per-epoch records.
    pub pop_epochs: Vec<ef_sim::PopEpochRecord>,
    /// Detour episodes (empty in the baseline arm).
    pub episodes: Vec<ef_sim::DetourEpisode>,
    /// Load series for the watched interfaces (egress → (t, Mbps)).
    pub series: HashMap<u32, Vec<(u64, f64)>>,
}

/// The scenario both arms share: the default 20-PoP deployment, one
/// simulated day of 30-second epochs, production-like sampled rates.
pub fn campaign_config() -> SimConfig {
    scenario()
        .hours(24)
        .epoch_secs(30)
        .telemetry(crate::output::telemetry_from_env())
        .build()
}

/// The interfaces watched with full time series: chosen by a fast
/// coarse-epoch baseline probe as the most-overloaded ones. Cached.
pub fn watched_interfaces() -> Vec<u32> {
    let path = results_dir().join("campaign_watched.json");
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(v) = serde_json::from_str::<Vec<u32>>(&text) {
            return v;
        }
    }
    eprintln!("[campaign] probing for the busiest interfaces (coarse baseline run)...");
    let mut engine = ScenarioBuilder::from_config(campaign_config())
        .baseline()
        .epoch_secs(300) // coarse: 288 epochs over the day
        .exact_rates()
        .engine();
    engine.run();
    let metrics = engine.take_metrics();
    let watched: Vec<u32> = metrics
        .worst_interfaces()
        .iter()
        .take(10)
        .map(|s| s.egress)
        .collect();
    std::fs::write(&path, serde_json::to_string(&watched).unwrap()).expect("cache watched");
    watched
}

fn distill(metrics: MetricsStore, cfg: &SimConfig) -> CampaignData {
    CampaignData {
        epoch_secs: cfg.epoch_secs,
        duration_secs: cfg.duration_secs,
        interfaces: metrics.interfaces.values().cloned().collect(),
        pop_epochs: metrics.pop_epochs,
        episodes: metrics.episodes,
        series: metrics.series.into_iter().map(|(e, s)| (e.0, s)).collect(),
    }
}

/// Loads the cached campaign arm, or runs it (minutes) and caches it.
pub fn load_or_run(arm: Arm) -> CampaignData {
    let path = results_dir().join(format!("campaign_{}.json", arm.label()));
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(data) = serde_json::from_str::<CampaignData>(&text) {
            eprintln!(
                "[campaign] loaded cached {} arm from {}",
                arm.label(),
                path.display()
            );
            return data;
        }
    }
    let watched = watched_interfaces();
    let cfg = match arm {
        Arm::Baseline => campaign_config().baseline(),
        Arm::EdgeFabric => campaign_config(),
    };
    eprintln!(
        "[campaign] running {} arm: {} epochs of {}s over {} PoPs...",
        arm.label(),
        cfg.epochs(),
        cfg.epoch_secs,
        cfg.gen.n_pops
    );
    let deployment = generate(&cfg.gen);
    let mut engine = ScenarioBuilder::from_config(cfg.clone()).engine_with(deployment);
    for egress in &watched {
        engine.flag_interface(EgressId(*egress));
    }
    let start = std::time::Instant::now();
    engine.run();
    eprintln!(
        "[campaign] {} arm finished in {:?}",
        arm.label(),
        start.elapsed()
    );
    assert!(engine.all_sessions_up(), "sessions survived the day");
    let data = distill(engine.take_metrics(), &cfg);
    std::fs::write(&path, serde_json::to_string(&data).unwrap()).expect("cache campaign");
    data
}

impl CampaignData {
    /// Interfaces of peering kinds (the capacity-constrained ones).
    pub fn peering_interfaces(&self) -> impl Iterator<Item = &ef_sim::InterfaceStats> {
        self.interfaces
            .iter()
            .filter(|s| s.kind == "private" || s.kind == "public" || s.kind == "route-server")
    }

    /// Total offered and dropped traffic (Mbps·epochs).
    pub fn totals(&self) -> (f64, f64) {
        let offered = self.pop_epochs.iter().map(|r| r.offered_mbps).sum();
        let dropped = self.pop_epochs.iter().map(|r| r.dropped_mbps).sum();
        (offered, dropped)
    }

    /// Longest run of consecutive over-capacity epochs per watched
    /// interface, from the recorded series.
    pub fn max_consecutive_overload(&self) -> HashMap<u32, (usize, f64)> {
        let caps: HashMap<u32, f64> = self
            .interfaces
            .iter()
            .map(|s| (s.egress, s.capacity_mbps))
            .collect();
        self.series
            .iter()
            .filter_map(|(egress, series)| {
                let cap = caps.get(egress)?;
                let mut best = 0usize;
                let mut run = 0usize;
                for (_, load) in series {
                    if load > cap {
                        run += 1;
                        best = best.max(run);
                    } else {
                        run = 0;
                    }
                }
                Some((*egress, (best, *cap)))
            })
            .collect()
    }
}
