//! The fault-schedule data model.
//!
//! A schedule is an ordered list of [`FaultEvent`]s. Each event names a
//! [`FaultTarget`] (a PoP, one of its BGP peers, or one of its egress
//! interfaces), a [`FaultKind`], and a `[t_start, t_start + duration)`
//! window in simulated seconds. Events are plain data: the simulator asks
//! [`FaultSchedule::active_at`] each tick and applies/reverts faults as
//! windows open and close.

use serde::{Deserialize, Serialize};

/// What a fault acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultTarget {
    /// A whole PoP (controller, feeds, demand).
    Pop { pop: usize },
    /// One BGP peering session at a PoP, by stable peer id.
    Peer { pop: usize, peer: u64 },
    /// One egress interface at a PoP, by egress id.
    Interface { pop: usize, egress: u32 },
    /// The global steering tier. `pop: Some(p)` breaks the reporting path
    /// between PoP `p` and the tier (partition, staleness, a lying
    /// exporter); `pop: None` takes down the tier itself. Global faults
    /// never reach a PoP runtime — [`FaultTarget::pop`] is `None` — the
    /// engine interprets them around the tier's observe/place cycle.
    Global { pop: Option<usize> },
}

impl FaultTarget {
    /// The PoP runtime this fault is applied at; `None` for global-tier
    /// faults, which the engine interprets above the PoPs.
    pub fn pop(&self) -> Option<usize> {
        match *self {
            FaultTarget::Pop { pop }
            | FaultTarget::Peer { pop, .. }
            | FaultTarget::Interface { pop, .. } => Some(pop),
            FaultTarget::Global { .. } => None,
        }
    }

    /// The PoP whose *reporting path to the global tier* this fault
    /// breaks, for `Global` targets that name one.
    pub fn global_pop(&self) -> Option<usize> {
        match *self {
            FaultTarget::Global { pop } => pop,
            _ => None,
        }
    }
}

/// The failure modes of every controller input and output.
///
/// Parameterized kinds carry their severity so a schedule is fully
/// self-describing and replayable from JSON alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A BGP peering session drops (routes withdrawn) and re-establishes
    /// when the window closes. Target: `Peer`.
    PeerFailure,
    /// An egress interface loses part of its capacity (link flap /
    /// LAG-member loss). Target: `Interface`.
    LinkCapacityLoss {
        /// Fraction of nominal capacity lost, in `(0, 1]`.
        fraction: f64,
    },
    /// The BMP feed stalls: the controller sees a frozen Adj-RIB-In until
    /// the window closes, then the queued updates arrive. Target: `Pop`.
    BmpStall,
    /// sFlow sample loss: the rate estimator is starved of this fraction
    /// of samples. Target: `Pop`.
    SflowLoss {
        /// Fraction of samples dropped, in `(0, 1]`.
        drop_fraction: f64,
    },
    /// The controller process crashes: epochs are skipped, the injector
    /// session drops (implicitly withdrawing every override), and on
    /// restart the controller must resync from a fresh BMP snapshot.
    /// Target: `Pop`.
    ControllerCrash,
    /// Only the injector's BGP session to the peering router drops; the
    /// controller keeps running and re-announces once it reconnects.
    /// Target: `Pop`.
    InjectorLoss,
    /// A flash crowd multiplies the PoP's demand for the window.
    /// Target: `Pop`.
    FlashCrowd {
        /// Demand multiplier, `> 1`.
        multiplier: f64,
    },
    /// A fraction of the peer's UPDATEs arrive with mangled attribute
    /// bytes; RFC 7606 grading on the receive path downgrades them to
    /// treat-as-withdraw / attribute-discard instead of resetting the
    /// session. Target: `Peer`.
    UpdateCorruption {
        /// Fraction of the peer's UPDATEs corrupted, in `(0, 1]`.
        rate: f64,
    },
    /// The peer's session flaps repeatedly: it drops every `period_s`
    /// seconds for the window, exercising the reconnect governor's backoff
    /// and flap damping. Target: `Peer`.
    SessionFlapStorm {
        /// Seconds between consecutive drops, `>= 1`.
        period_s: u64,
    },
    /// A fraction of the controller's per-prefix injection sends are lost
    /// before reaching the router; the injector's retry/reconciliation
    /// machinery must repair the divergence. Target: `Pop`.
    InjectorPartialLoss {
        /// Fraction of injection sends dropped, in `(0, 1]`.
        fraction: f64,
    },
    /// One PoP's `PopReport` never reaches the global controller for the
    /// window — the tier sees the PoP go silent. Target: `Global` with a
    /// named pop.
    ReportPartition,
    /// One PoP's reports still arrive but are frozen `epochs` old — a
    /// stalled exporter replaying its last measurements. Target: `Global`
    /// with a named pop.
    ReportStaleness {
        /// How many epochs behind real time the delivered reports are,
        /// `>= 1`.
        epochs: u64,
    },
    /// The global controller itself is down: no reports are processed and
    /// every placement is frozen as issued until the window closes.
    /// Target: `Global` with `pop: None`.
    GlobalControllerCrash,
    /// One PoP's exporter over-reports headroom by `factor` — a
    /// mis-measured or lying capacity feed tempting the tier to steer
    /// users into a wall. Target: `Global` with a named pop.
    HeadroomLie {
        /// Multiplier applied to the reported headroom, `> 1`.
        factor: f64,
    },
}

impl FaultKind {
    /// Short stable label for metrics tagging and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::PeerFailure => "peer_failure",
            FaultKind::LinkCapacityLoss { .. } => "link_capacity_loss",
            FaultKind::BmpStall => "bmp_stall",
            FaultKind::SflowLoss { .. } => "sflow_loss",
            FaultKind::ControllerCrash => "controller_crash",
            FaultKind::InjectorLoss => "injector_loss",
            FaultKind::FlashCrowd { .. } => "flash_crowd",
            FaultKind::UpdateCorruption { .. } => "update_corruption",
            FaultKind::SessionFlapStorm { .. } => "session_flap_storm",
            FaultKind::InjectorPartialLoss { .. } => "injector_partial_loss",
            FaultKind::ReportPartition => "report_partition",
            FaultKind::ReportStaleness { .. } => "report_staleness",
            FaultKind::GlobalControllerCrash => "global_controller_crash",
            FaultKind::HeadroomLie { .. } => "headroom_lie",
        }
    }

    /// Per-PoP labels, in declaration order (for matrix sweeps and
    /// reports). Default generation samples from this set; the global-tier
    /// kinds in [`GLOBAL_LABELS`](Self::GLOBAL_LABELS) are opt-in because
    /// they are no-ops in scenarios without the tier.
    pub const ALL_LABELS: [&'static str; 10] = [
        "peer_failure",
        "link_capacity_loss",
        "bmp_stall",
        "sflow_loss",
        "controller_crash",
        "injector_loss",
        "flash_crowd",
        "update_corruption",
        "session_flap_storm",
        "injector_partial_loss",
    ];

    /// Labels of the global-tier fault kinds, in declaration order.
    pub const GLOBAL_LABELS: [&'static str; 4] = [
        "report_partition",
        "report_staleness",
        "global_controller_crash",
        "headroom_lie",
    ];
}

/// One fault: `kind` applied to `target` for `[t_start, t_start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub t_start_secs: u64,
    pub duration_secs: u64,
    pub target: FaultTarget,
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Exclusive end of the fault window.
    pub fn t_end_secs(&self) -> u64 {
        self.t_start_secs.saturating_add(self.duration_secs)
    }

    /// True while the fault is in effect at `t_secs`.
    pub fn active_at(&self, t_secs: u64) -> bool {
        t_secs >= self.t_start_secs && t_secs < self.t_end_secs()
    }

    /// Validates the event's parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_secs == 0 {
            return Err(format!(
                "fault at t={} has zero duration",
                self.t_start_secs
            ));
        }
        match (self.kind, self.target) {
            (FaultKind::PeerFailure, FaultTarget::Peer { .. }) => Ok(()),
            (FaultKind::PeerFailure, t) => {
                Err(format!("peer_failure must target a Peer, got {t:?}"))
            }
            (FaultKind::LinkCapacityLoss { fraction }, FaultTarget::Interface { .. }) => {
                if fraction > 0.0 && fraction <= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "link_capacity_loss fraction {fraction} outside (0, 1]"
                    ))
                }
            }
            (FaultKind::LinkCapacityLoss { .. }, t) => Err(format!(
                "link_capacity_loss must target an Interface, got {t:?}"
            )),
            (FaultKind::SflowLoss { drop_fraction }, FaultTarget::Pop { .. }) => {
                if drop_fraction > 0.0 && drop_fraction <= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "sflow_loss drop_fraction {drop_fraction} outside (0, 1]"
                    ))
                }
            }
            (FaultKind::FlashCrowd { multiplier }, FaultTarget::Pop { .. }) => {
                if multiplier > 1.0 && multiplier.is_finite() {
                    Ok(())
                } else {
                    Err(format!("flash_crowd multiplier {multiplier} must be > 1"))
                }
            }
            (FaultKind::UpdateCorruption { rate }, FaultTarget::Peer { .. }) => {
                if rate > 0.0 && rate <= 1.0 {
                    Ok(())
                } else {
                    Err(format!("update_corruption rate {rate} outside (0, 1]"))
                }
            }
            (FaultKind::UpdateCorruption { .. }, t) => {
                Err(format!("update_corruption must target a Peer, got {t:?}"))
            }
            (FaultKind::SessionFlapStorm { period_s }, FaultTarget::Peer { .. }) => {
                if period_s >= 1 {
                    Ok(())
                } else {
                    Err("session_flap_storm period_s must be >= 1".to_string())
                }
            }
            (FaultKind::SessionFlapStorm { .. }, t) => {
                Err(format!("session_flap_storm must target a Peer, got {t:?}"))
            }
            (FaultKind::InjectorPartialLoss { fraction }, FaultTarget::Pop { .. }) => {
                if fraction > 0.0 && fraction <= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "injector_partial_loss fraction {fraction} outside (0, 1]"
                    ))
                }
            }
            (
                FaultKind::BmpStall | FaultKind::ControllerCrash | FaultKind::InjectorLoss,
                FaultTarget::Pop { .. },
            ) => Ok(()),
            (FaultKind::ReportPartition, FaultTarget::Global { pop: Some(_) }) => Ok(()),
            (FaultKind::ReportPartition, t) => Err(format!(
                "report_partition must target Global with a pop, got {t:?}"
            )),
            (FaultKind::ReportStaleness { epochs }, FaultTarget::Global { pop: Some(_) }) => {
                if epochs >= 1 {
                    Ok(())
                } else {
                    Err("report_staleness epochs must be >= 1".to_string())
                }
            }
            (FaultKind::ReportStaleness { .. }, t) => Err(format!(
                "report_staleness must target Global with a pop, got {t:?}"
            )),
            (FaultKind::GlobalControllerCrash, FaultTarget::Global { pop: None }) => Ok(()),
            (FaultKind::GlobalControllerCrash, t) => Err(format!(
                "global_controller_crash must target Global with pop: None, got {t:?}"
            )),
            (FaultKind::HeadroomLie { factor }, FaultTarget::Global { pop: Some(_) }) => {
                if factor > 1.0 && factor.is_finite() {
                    Ok(())
                } else {
                    Err(format!("headroom_lie factor {factor} must be > 1"))
                }
            }
            (FaultKind::HeadroomLie { .. }, t) => Err(format!(
                "headroom_lie must target Global with a pop, got {t:?}"
            )),
            (k, t) => Err(format!("{} must target a Pop, got {t:?}", k.label())),
        }
    }
}

/// An ordered, validated collection of fault events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule, sorting events into canonical order and
    /// validating each one.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<Self, String> {
        for e in &events {
            e.validate()?;
        }
        events.sort_by_key(|e| (e.t_start_secs, e.duration_secs, kind_rank(&e.kind)));
        Ok(FaultSchedule { events })
    }

    /// An empty schedule (no faults — sunny-day run).
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Event indices and events in effect at `t_secs`, in schedule order.
    /// Indices are stable identities the simulator uses to diff the active
    /// set between ticks.
    pub fn active_at(&self, t_secs: u64) -> impl Iterator<Item = (usize, &FaultEvent)> {
        self.events
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.active_at(t_secs))
    }

    /// Active events at `t_secs` whose target lives at `pop`. Global-tier
    /// faults never match — they have no PoP runtime to land on.
    pub fn active_at_pop(
        &self,
        t_secs: u64,
        pop: usize,
    ) -> impl Iterator<Item = (usize, &FaultEvent)> {
        self.active_at(t_secs)
            .filter(move |(_, e)| e.target.pop() == Some(pop))
    }

    /// The last instant at which any fault is still active, or 0.
    pub fn horizon_secs(&self) -> u64 {
        self.events
            .iter()
            .map(FaultEvent::t_end_secs)
            .max()
            .unwrap_or(0)
    }

    /// Parses a schedule from JSON, re-validating every event.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let parsed: FaultSchedule =
            serde_json::from_str(text).map_err(|e| format!("bad fault schedule JSON: {e}"))?;
        FaultSchedule::new(parsed.events)
    }

    /// Serializes the schedule as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedule serializes")
    }
}

fn kind_rank(kind: &FaultKind) -> u8 {
    match kind {
        FaultKind::PeerFailure => 0,
        FaultKind::LinkCapacityLoss { .. } => 1,
        FaultKind::BmpStall => 2,
        FaultKind::SflowLoss { .. } => 3,
        FaultKind::ControllerCrash => 4,
        FaultKind::InjectorLoss => 5,
        FaultKind::FlashCrowd { .. } => 6,
        FaultKind::UpdateCorruption { .. } => 7,
        FaultKind::SessionFlapStorm { .. } => 8,
        FaultKind::InjectorPartialLoss { .. } => 9,
        FaultKind::ReportPartition => 10,
        FaultKind::ReportStaleness { .. } => 11,
        FaultKind::GlobalControllerCrash => 12,
        FaultKind::HeadroomLie { .. } => 13,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, d: u64, kind: FaultKind, target: FaultTarget) -> FaultEvent {
        FaultEvent {
            t_start_secs: t,
            duration_secs: d,
            target,
            kind,
        }
    }

    #[test]
    fn windows_are_half_open() {
        let e = ev(100, 50, FaultKind::BmpStall, FaultTarget::Pop { pop: 0 });
        assert!(!e.active_at(99));
        assert!(e.active_at(100));
        assert!(e.active_at(149));
        assert!(!e.active_at(150));
    }

    #[test]
    fn schedule_sorts_and_queries_by_pop() {
        let sched = FaultSchedule::new(vec![
            ev(
                200,
                60,
                FaultKind::InjectorLoss,
                FaultTarget::Pop { pop: 1 },
            ),
            ev(
                100,
                60,
                FaultKind::LinkCapacityLoss { fraction: 0.5 },
                FaultTarget::Interface { pop: 0, egress: 3 },
            ),
            ev(
                100,
                30,
                FaultKind::PeerFailure,
                FaultTarget::Peer { pop: 1, peer: 7 },
            ),
        ])
        .unwrap();
        assert_eq!(sched.events[0].t_start_secs, 100);
        assert_eq!(sched.horizon_secs(), 260);
        let at_pop1: Vec<_> = sched.active_at_pop(110, 1).collect();
        assert_eq!(at_pop1.len(), 1);
        assert!(matches!(at_pop1[0].1.kind, FaultKind::PeerFailure));
        assert_eq!(sched.active_at(110).count(), 2);
        assert_eq!(sched.active_at(500).count(), 0);
    }

    #[test]
    fn validation_rejects_mismatched_targets() {
        assert!(
            ev(0, 10, FaultKind::PeerFailure, FaultTarget::Pop { pop: 0 })
                .validate()
                .is_err()
        );
        assert!(ev(
            0,
            10,
            FaultKind::BmpStall,
            FaultTarget::Interface { pop: 0, egress: 1 }
        )
        .validate()
        .is_err());
        assert!(ev(
            0,
            10,
            FaultKind::LinkCapacityLoss { fraction: 1.5 },
            FaultTarget::Interface { pop: 0, egress: 1 }
        )
        .validate()
        .is_err());
        assert!(ev(
            0,
            10,
            FaultKind::FlashCrowd { multiplier: 0.5 },
            FaultTarget::Pop { pop: 0 }
        )
        .validate()
        .is_err());
        assert!(ev(0, 0, FaultKind::BmpStall, FaultTarget::Pop { pop: 0 })
            .validate()
            .is_err());
    }

    #[test]
    fn validation_covers_robustness_fault_kinds() {
        let peer = FaultTarget::Peer { pop: 0, peer: 7 };
        let pop = FaultTarget::Pop { pop: 0 };
        assert!(ev(0, 10, FaultKind::UpdateCorruption { rate: 0.3 }, peer)
            .validate()
            .is_ok());
        assert!(ev(0, 10, FaultKind::UpdateCorruption { rate: 0.0 }, peer)
            .validate()
            .is_err());
        assert!(ev(0, 10, FaultKind::UpdateCorruption { rate: 0.3 }, pop)
            .validate()
            .is_err());
        assert!(ev(0, 10, FaultKind::SessionFlapStorm { period_s: 5 }, peer)
            .validate()
            .is_ok());
        assert!(ev(0, 10, FaultKind::SessionFlapStorm { period_s: 0 }, peer)
            .validate()
            .is_err());
        assert!(ev(0, 10, FaultKind::SessionFlapStorm { period_s: 5 }, pop)
            .validate()
            .is_err());
        assert!(
            ev(0, 10, FaultKind::InjectorPartialLoss { fraction: 0.5 }, pop)
                .validate()
                .is_ok()
        );
        assert!(
            ev(0, 10, FaultKind::InjectorPartialLoss { fraction: 1.5 }, pop)
                .validate()
                .is_err()
        );
        assert!(ev(
            0,
            10,
            FaultKind::InjectorPartialLoss { fraction: 0.5 },
            peer
        )
        .validate()
        .is_err());
    }

    #[test]
    fn global_targets_validate_and_stay_off_pop_slices() {
        let at_pop = FaultTarget::Global { pop: Some(1) };
        let tier = FaultTarget::Global { pop: None };
        assert!(ev(0, 10, FaultKind::ReportPartition, at_pop)
            .validate()
            .is_ok());
        assert!(ev(
            0,
            10,
            FaultKind::ReportPartition,
            FaultTarget::Pop { pop: 1 }
        )
        .validate()
        .is_err());
        assert!(ev(0, 10, FaultKind::ReportPartition, tier)
            .validate()
            .is_err());
        assert!(ev(0, 10, FaultKind::ReportStaleness { epochs: 3 }, at_pop)
            .validate()
            .is_ok());
        assert!(ev(0, 10, FaultKind::ReportStaleness { epochs: 0 }, at_pop)
            .validate()
            .is_err());
        assert!(ev(0, 10, FaultKind::GlobalControllerCrash, tier)
            .validate()
            .is_ok());
        assert!(ev(0, 10, FaultKind::GlobalControllerCrash, at_pop)
            .validate()
            .is_err());
        assert!(ev(0, 10, FaultKind::HeadroomLie { factor: 10.0 }, at_pop)
            .validate()
            .is_ok());
        assert!(ev(0, 10, FaultKind::HeadroomLie { factor: 1.0 }, at_pop)
            .validate()
            .is_err());
        assert!(
            ev(0, 10, FaultKind::HeadroomLie { factor: f64::NAN }, at_pop)
                .validate()
                .is_err()
        );
        // Global faults never land on any per-PoP schedule slice.
        assert_eq!(at_pop.pop(), None);
        assert_eq!(at_pop.global_pop(), Some(1));
        assert_eq!(tier.global_pop(), None);
        let sched = FaultSchedule::new(vec![
            ev(100, 60, FaultKind::ReportPartition, at_pop),
            ev(100, 60, FaultKind::BmpStall, FaultTarget::Pop { pop: 1 }),
        ])
        .unwrap();
        assert_eq!(sched.active_at_pop(110, 1).count(), 1);
        assert_eq!(sched.active_at(110).count(), 2);
    }

    #[test]
    fn global_labels_are_distinct_and_ranked() {
        for label in FaultKind::GLOBAL_LABELS {
            assert!(!FaultKind::ALL_LABELS.contains(&label));
        }
        let kinds = [
            FaultKind::ReportPartition,
            FaultKind::ReportStaleness { epochs: 2 },
            FaultKind::GlobalControllerCrash,
            FaultKind::HeadroomLie { factor: 4.0 },
        ];
        for (kind, label) in kinds.iter().zip(FaultKind::GLOBAL_LABELS) {
            assert_eq!(kind.label(), label);
        }
    }

    #[test]
    fn json_round_trip_preserves_schedule() {
        let sched = FaultSchedule::new(vec![
            ev(
                30,
                120,
                FaultKind::LinkCapacityLoss { fraction: 0.4 },
                FaultTarget::Interface { pop: 2, egress: 0 },
            ),
            ev(
                60,
                90,
                FaultKind::SflowLoss {
                    drop_fraction: 0.95,
                },
                FaultTarget::Pop { pop: 2 },
            ),
            ev(
                10,
                40,
                FaultKind::FlashCrowd { multiplier: 2.5 },
                FaultTarget::Pop { pop: 0 },
            ),
        ])
        .unwrap();
        let json = sched.to_json();
        let back = FaultSchedule::from_json(&json).unwrap();
        assert_eq!(back, sched);
    }

    #[test]
    fn from_json_rejects_invalid_events() {
        let json = r#"{"events":[{"t_start_secs":0,"duration_secs":0,
            "target":{"Pop":{"pop":0}},"kind":"BmpStall"}]}"#;
        assert!(FaultSchedule::from_json(json).is_err());
    }
}
