//! # ef-chaos
//!
//! Fault injection for the Edge Fabric reproduction.
//!
//! The paper's central safety argument (§4.4, §5) is that the controller
//! *fails static*: it recomputes the full override set from fresh inputs
//! every epoch, so a crashed controller, a lost injector session, or a
//! stale BMP/sFlow feed degrades back to plain BGP instead of wedging
//! traffic on bad paths. This crate provides the fault model needed to
//! exercise that claim: a serde-serializable [`FaultSchedule`] of
//! `(t_start, duration, target, kind)` events covering the failure modes
//! of every input and output the controller touches, plus a seeded
//! [`generator`] that samples schedules deterministically.
//!
//! The schedule is pure data — `ef-sim` interprets it (applying active
//! faults to routers, feeds, and controllers each tick), and the
//! `exp_fault_matrix` experiment sweeps it EF-on vs EF-off.

pub mod generator;
pub mod schedule;

pub use generator::{generate, ChaosProfile, PopSurface, SimSurface};
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
