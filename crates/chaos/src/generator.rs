//! Seeded schedule generation.
//!
//! Experiments need *many* fault scenarios, reproducibly. The generator
//! samples a [`FaultSchedule`] from a [`ChaosProfile`] (how many faults of
//! which kinds, how long) and a [`SimSurface`] (what exists to break:
//! PoPs, their peers, their interfaces), using nothing but the seed for
//! randomness — the same `(profile, surface, seed)` triple always yields
//! the identical schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::schedule::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};

/// What the simulator exposes to break at one PoP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopSurface {
    pub pop: usize,
    /// Stable peer ids with sessions at this PoP.
    pub peers: Vec<u64>,
    /// Egress interface ids at this PoP.
    pub egresses: Vec<u32>,
}

/// The full breakable surface of a simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimSurface {
    pub pops: Vec<PopSurface>,
}

impl SimSurface {
    pub fn is_empty(&self) -> bool {
        self.pops.is_empty()
    }
}

/// Tunables for schedule sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Faults start within `[warmup_secs, duration_secs)` — the warm-up
    /// lets the controller converge before the first injection.
    pub duration_secs: u64,
    pub warmup_secs: u64,
    /// Total number of fault events to sample.
    pub events: usize,
    /// Fault windows are sampled uniformly from this range (seconds).
    pub min_fault_secs: u64,
    pub max_fault_secs: u64,
    /// Kinds eligible for sampling, by [`FaultKind::label`] name. Empty
    /// means every per-PoP kind in [`FaultKind::ALL_LABELS`]; the
    /// global-tier kinds ([`FaultKind::GLOBAL_LABELS`]) must be named
    /// explicitly — they are no-ops in scenarios without the tier.
    #[serde(default)]
    pub kinds: Vec<String>,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            duration_secs: 3600,
            warmup_secs: 300,
            events: 8,
            min_fault_secs: 120,
            max_fault_secs: 600,
            kinds: Vec::new(),
        }
    }
}

impl ChaosProfile {
    pub fn validate(&self) -> Result<(), String> {
        if self.warmup_secs >= self.duration_secs {
            return Err(format!(
                "warmup {}s must be shorter than duration {}s",
                self.warmup_secs, self.duration_secs
            ));
        }
        if self.min_fault_secs == 0 || self.min_fault_secs > self.max_fault_secs {
            return Err(format!(
                "fault length range [{}, {}] is invalid",
                self.min_fault_secs, self.max_fault_secs
            ));
        }
        for kind in &self.kinds {
            if !FaultKind::ALL_LABELS.contains(&kind.as_str())
                && !FaultKind::GLOBAL_LABELS.contains(&kind.as_str())
            {
                return Err(format!("unknown fault kind {kind:?}"));
            }
        }
        Ok(())
    }

    fn enabled_labels(&self) -> Vec<&str> {
        if self.kinds.is_empty() {
            FaultKind::ALL_LABELS.to_vec()
        } else {
            self.kinds.iter().map(String::as_str).collect()
        }
    }
}

/// Samples a schedule. Deterministic in `(profile, surface, seed)`.
pub fn generate(
    profile: &ChaosProfile,
    surface: &SimSurface,
    seed: u64,
) -> Result<FaultSchedule, String> {
    profile.validate()?;
    if surface.is_empty() {
        return Err("cannot generate faults for an empty surface".to_string());
    }
    let labels = profile.enabled_labels();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xEF_C4A0_5EED);
    let mut events = Vec::with_capacity(profile.events);
    let mut attempts = 0usize;
    while events.len() < profile.events {
        attempts += 1;
        if attempts > profile.events * 64 {
            return Err(format!(
                "could not place {} faults on this surface (placed {})",
                profile.events,
                events.len()
            ));
        }
        let label = labels[rng.gen_range(0..labels.len())];
        let pop_surface = &surface.pops[rng.gen_range(0..surface.pops.len())];
        let pop = pop_surface.pop;
        let (kind, target) = match label {
            "peer_failure" => {
                if pop_surface.peers.is_empty() {
                    continue;
                }
                let peer = pop_surface.peers[rng.gen_range(0..pop_surface.peers.len())];
                (FaultKind::PeerFailure, FaultTarget::Peer { pop, peer })
            }
            "link_capacity_loss" => {
                if pop_surface.egresses.is_empty() {
                    continue;
                }
                let egress = pop_surface.egresses[rng.gen_range(0..pop_surface.egresses.len())];
                (
                    FaultKind::LinkCapacityLoss {
                        fraction: rng.gen_range(0.25..0.75),
                    },
                    FaultTarget::Interface { pop, egress },
                )
            }
            "bmp_stall" => (FaultKind::BmpStall, FaultTarget::Pop { pop }),
            "sflow_loss" => (
                FaultKind::SflowLoss {
                    drop_fraction: rng.gen_range(0.5..1.0),
                },
                FaultTarget::Pop { pop },
            ),
            "controller_crash" => (FaultKind::ControllerCrash, FaultTarget::Pop { pop }),
            "injector_loss" => (FaultKind::InjectorLoss, FaultTarget::Pop { pop }),
            "flash_crowd" => (
                FaultKind::FlashCrowd {
                    multiplier: rng.gen_range(1.5..3.0),
                },
                FaultTarget::Pop { pop },
            ),
            "update_corruption" => {
                if pop_surface.peers.is_empty() {
                    continue;
                }
                let peer = pop_surface.peers[rng.gen_range(0..pop_surface.peers.len())];
                (
                    FaultKind::UpdateCorruption {
                        rate: rng.gen_range(0.1..0.6),
                    },
                    FaultTarget::Peer { pop, peer },
                )
            }
            "session_flap_storm" => {
                if pop_surface.peers.is_empty() {
                    continue;
                }
                let peer = pop_surface.peers[rng.gen_range(0..pop_surface.peers.len())];
                (
                    FaultKind::SessionFlapStorm {
                        period_s: rng.gen_range(2..=15),
                    },
                    FaultTarget::Peer { pop, peer },
                )
            }
            "injector_partial_loss" => (
                FaultKind::InjectorPartialLoss {
                    fraction: rng.gen_range(0.2..0.8),
                },
                FaultTarget::Pop { pop },
            ),
            "report_partition" => (
                FaultKind::ReportPartition,
                FaultTarget::Global { pop: Some(pop) },
            ),
            "report_staleness" => (
                FaultKind::ReportStaleness {
                    epochs: rng.gen_range(2..=6),
                },
                FaultTarget::Global { pop: Some(pop) },
            ),
            "global_controller_crash" => (
                FaultKind::GlobalControllerCrash,
                FaultTarget::Global { pop: None },
            ),
            "headroom_lie" => (
                FaultKind::HeadroomLie {
                    factor: rng.gen_range(2.0..10.0),
                },
                FaultTarget::Global { pop: Some(pop) },
            ),
            other => return Err(format!("unknown fault kind {other:?}")),
        };
        let duration_secs = rng.gen_range(profile.min_fault_secs..=profile.max_fault_secs);
        let latest_start = profile.duration_secs.saturating_sub(duration_secs);
        if latest_start <= profile.warmup_secs {
            continue;
        }
        let t_start_secs = rng.gen_range(profile.warmup_secs..latest_start);
        events.push(FaultEvent {
            t_start_secs,
            duration_secs,
            target,
            kind,
        });
    }
    FaultSchedule::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface() -> SimSurface {
        SimSurface {
            pops: vec![
                PopSurface {
                    pop: 0,
                    peers: vec![1, 2, 3],
                    egresses: vec![0, 1, 2],
                },
                PopSurface {
                    pop: 1,
                    peers: vec![4, 5],
                    egresses: vec![0, 1],
                },
            ],
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let profile = ChaosProfile::default();
        let a = generate(&profile, &surface(), 42).unwrap();
        let b = generate(&profile, &surface(), 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), profile.events);
    }

    #[test]
    fn different_seeds_differ() {
        let profile = ChaosProfile::default();
        let a = generate(&profile, &surface(), 1).unwrap();
        let b = generate(&profile, &surface(), 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_warmup_and_duration() {
        let profile = ChaosProfile {
            duration_secs: 2000,
            warmup_secs: 500,
            events: 12,
            min_fault_secs: 60,
            max_fault_secs: 120,
            kinds: Vec::new(),
        };
        let sched = generate(&profile, &surface(), 7).unwrap();
        for e in &sched.events {
            assert!(e.t_start_secs >= profile.warmup_secs);
            assert!(e.t_end_secs() <= profile.duration_secs);
            assert!(e.validate().is_ok());
        }
    }

    #[test]
    fn kind_filter_is_honored() {
        let profile = ChaosProfile {
            kinds: vec!["bmp_stall".to_string(), "flash_crowd".to_string()],
            ..Default::default()
        };
        let sched = generate(&profile, &surface(), 3).unwrap();
        assert!(!sched.is_empty());
        for e in &sched.events {
            assert!(matches!(
                e.kind,
                FaultKind::BmpStall | FaultKind::FlashCrowd { .. }
            ));
        }
    }

    #[test]
    fn global_kinds_are_opt_in_and_sample_valid_targets() {
        // The default (empty kinds) never samples a global fault.
        let sched = generate(&ChaosProfile::default(), &surface(), 5).unwrap();
        for e in &sched.events {
            assert!(e.target.pop().is_some(), "default sampling stays per-PoP");
        }
        // Asking for them yields validated Global targets.
        let profile = ChaosProfile {
            events: 16,
            kinds: FaultKind::GLOBAL_LABELS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..Default::default()
        };
        let sched = generate(&profile, &surface(), 9).unwrap();
        assert_eq!(sched.len(), 16);
        for e in &sched.events {
            assert_eq!(e.target.pop(), None);
            assert!(e.validate().is_ok());
            match e.kind {
                FaultKind::GlobalControllerCrash => assert_eq!(e.target.global_pop(), None),
                _ => assert!(e.target.global_pop().is_some()),
            }
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let profile = ChaosProfile {
            kinds: vec!["meteor_strike".to_string()],
            ..Default::default()
        };
        assert!(generate(&profile, &surface(), 0).is_err());
    }

    #[test]
    fn empty_surface_rejected() {
        assert!(generate(&ChaosProfile::default(), &SimSurface::default(), 0).is_err());
    }
}
