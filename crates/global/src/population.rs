//! User populations: the unit the global tier steers.
//!
//! Per-PoP Edge Fabric thinks in prefixes; the layer above it thinks in
//! *user populations* — named groups of users whose placement is decided
//! together, because that is the granularity real steering mechanisms
//! operate at (a DNS map entry, an anycast catchment). A
//! [`PopulationMap`] partitions the prefix universe into populations and
//! records each population's *baseline*: the average demand it places on
//! every PoP under the generator's serving footprint. Baselines are what
//! backends compare reported headroom against when deciding whether a
//! drained PoP is healthy enough to take its users back.

use serde::{Deserialize, Serialize};

use ef_topology::{Deployment, Region};

/// How prefixes are grouped into populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PopulationGrouping {
    /// One population per world region (8 total), named by region label
    /// (`"NA"`, `"EU"`, …). The default: matches how flash crowds and
    /// regional blackouts actually correlate.
    #[default]
    ByRegion,
    /// One population per eyeball AS, named `"AS<asn>"`. Finer-grained;
    /// useful for steering experiments targeting a single network.
    ByOriginAs,
}

/// A named group of users steered as a unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// Display name (region label or `AS<asn>`).
    pub name: String,
    /// Average demand this population places on each PoP (Mbps), indexed
    /// by PoP index. Zero means the PoP has no serving footprint for any
    /// of the population's prefixes — users cannot be placed there.
    pub baseline_mbps: Vec<f64>,
}

impl Population {
    /// Total average demand of this population across all PoPs, Mbps.
    pub fn total_baseline_mbps(&self) -> f64 {
        self.baseline_mbps.iter().sum()
    }
}

/// The partition of the prefix universe into populations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationMap {
    /// All populations, in deterministic order (region order or AS order).
    pub populations: Vec<Population>,
    /// Population index of each prefix (indexed by `prefix_idx`).
    pub of_prefix: Vec<u32>,
}

impl PopulationMap {
    /// Partitions `deployment`'s prefix universe and computes baselines
    /// from the serving footprint.
    pub fn build(deployment: &Deployment, grouping: PopulationGrouping) -> Self {
        let n_pops = deployment.pops.len();
        let universe = &deployment.universe;
        let (mut populations, of_prefix) = match grouping {
            PopulationGrouping::ByRegion => {
                let populations: Vec<Population> = Region::ALL
                    .iter()
                    .map(|r| Population {
                        name: r.label().to_string(),
                        baseline_mbps: vec![0.0; n_pops],
                    })
                    .collect();
                let index_of = |region: Region| -> u32 {
                    Region::ALL
                        .iter()
                        .position(|r| *r == region)
                        .map(|i| i as u32)
                        .unwrap_or(0)
                };
                let of_prefix: Vec<u32> = universe
                    .prefixes
                    .iter()
                    .map(|p| index_of(universe.origin_of(p).region))
                    .collect();
                (populations, of_prefix)
            }
            PopulationGrouping::ByOriginAs => {
                let populations: Vec<Population> = universe
                    .ases
                    .iter()
                    .map(|a| Population {
                        name: format!("AS{}", a.asn.0),
                        baseline_mbps: vec![0.0; n_pops],
                    })
                    .collect();
                let of_prefix: Vec<u32> = universe.prefixes.iter().map(|p| p.origin_idx).collect();
                (populations, of_prefix)
            }
        };
        for (pop_idx, pop) in deployment.pops.iter().enumerate() {
            for served in &pop.served {
                if let Some(pi) = of_prefix.get(served.prefix_idx as usize) {
                    if let Some(p) = populations.get_mut(*pi as usize) {
                        p.baseline_mbps[pop_idx] += served.avg_mbps;
                    }
                }
            }
        }
        PopulationMap {
            populations,
            of_prefix,
        }
    }

    /// Index of the population with the given name, if any.
    pub fn population_named(&self, name: &str) -> Option<usize> {
        self.populations.iter().position(|p| p.name == name)
    }

    /// Number of populations.
    pub fn len(&self) -> usize {
        self.populations.len()
    }

    /// True when there are no populations.
    pub fn is_empty(&self) -> bool {
        self.populations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_topology::{generate, GenConfig};

    #[test]
    fn by_region_covers_every_prefix_and_baseline_matches_served() {
        let dep = generate(&GenConfig::small(4));
        let map = PopulationMap::build(&dep, PopulationGrouping::ByRegion);
        assert_eq!(map.len(), 8);
        assert_eq!(map.of_prefix.len(), dep.universe.prefixes.len());
        // Baselines sum to the total served demand, exactly partitioned.
        let total_served: f64 = dep.pops.iter().map(|p| p.total_avg_demand_mbps()).sum();
        let total_baseline: f64 = map
            .populations
            .iter()
            .map(|p| p.total_baseline_mbps())
            .sum();
        assert!((total_served - total_baseline).abs() < 1e-6);
        // Names follow the fixed region order.
        assert_eq!(map.populations[0].name, "NA");
        assert_eq!(map.populations[1].name, "EU");
        assert_eq!(map.population_named("EU"), Some(1));
        assert_eq!(map.population_named("XX"), None);
    }

    #[test]
    fn by_origin_as_has_one_population_per_as() {
        let dep = generate(&GenConfig::small(3));
        let map = PopulationMap::build(&dep, PopulationGrouping::ByOriginAs);
        assert_eq!(map.len(), dep.universe.ases.len());
        assert!(map.populations[0].name.starts_with("AS"));
        for (idx, p) in dep.universe.prefixes.iter().enumerate() {
            assert_eq!(map.of_prefix[idx], p.origin_idx);
        }
    }

    #[test]
    fn serde_round_trip() {
        let dep = generate(&GenConfig::small(3));
        let map = PopulationMap::build(&dep, PopulationGrouping::ByRegion);
        let json = serde_json::to_string(&map).unwrap();
        let back: PopulationMap = serde_json::from_str(&json).unwrap();
        assert_eq!(map, back);
    }
}
