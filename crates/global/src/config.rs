//! Configuration for the global steering tier.

use serde::{Deserialize, Serialize};

use crate::population::PopulationGrouping;

/// Which mechanism moves user populations between PoPs. The two variants
/// bracket the design space the paper's successors explored: DNS maps
/// (gradual, fractional, delayed by resolver caches) versus anycast
/// announcements (instant whole-catchment cutover once BGP converges).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackendKind {
    /// DNS-style steering: per epoch the map may move a fraction of a
    /// population, and issued changes take effect gradually as resolver
    /// caches expire over `ttl_epochs`.
    Dns {
        /// Cache-expiry horizon in controller epochs (≥ 1). Each epoch the
        /// observed fraction closes `1/ttl_epochs` of the gap to the
        /// issued target.
        ttl_epochs: u64,
    },
    /// Anycast-style steering: withdrawing the announcement moves the
    /// *whole* population at once, `convergence_epochs` after the decision
    /// (BGP propagation delay). No fractional states ever exist.
    Anycast {
        /// Decision-to-effect delay in controller epochs (≥ 1).
        convergence_epochs: u64,
    },
}

/// A scheduled flash crowd: one population's demand multiplied for a
/// window of simulated time (the World-Cup-final scenario from §2 of the
/// paper, scaled to a named region).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdSpec {
    /// Population name (`"EU"`, `"AS64512"`, …). Unknown names are
    /// ignored.
    pub population: String,
    /// Window start, simulated seconds.
    pub t_start_secs: u64,
    /// Window length, seconds.
    pub duration_secs: u64,
    /// Demand multiplier applied inside the window.
    pub multiplier: f64,
}

/// Global-tier configuration.
///
/// `backend: None` is the *shape-only* arm: flash crowds still shape
/// demand (so baseline and steered experiment arms see byte-identical
/// offered load) but no steering ever happens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalConfig {
    /// How prefixes group into populations.
    #[serde(default)]
    pub grouping: PopulationGrouping,
    /// Steering mechanism; `None` disables steering (shape-only).
    #[serde(default)]
    pub backend: Option<BackendKind>,
    /// Shift increment per epoch of observed residual overload.
    #[serde(default = "default_step")]
    pub step: f64,
    /// Ceiling on the fraction of a population's demand at one PoP that a
    /// fractional backend may move away. Anycast ignores this: a
    /// withdrawal is all-or-nothing by construction.
    #[serde(default = "default_max_shift")]
    pub max_shift: f64,
    /// Decay per healthy epoch (fractional backends).
    #[serde(default = "default_decay")]
    pub decay: f64,
    /// Fraction of a PoP's reported headroom the global tier may consume
    /// as detour budget each epoch. Below 1.0 so global placement never
    /// eats the margin the per-PoP controller needs for its own detours.
    #[serde(default = "default_headroom_safety")]
    pub headroom_safety: f64,
    /// Scheduled flash crowds.
    #[serde(default)]
    pub flash_crowds: Vec<FlashCrowdSpec>,
    /// Report-freshness horizon, epochs (≥ 1). A PoP whose last report is
    /// `age` epochs old keeps `1 - age/horizon` of its usable budget; at
    /// the horizon the budget is zero — the tier stops steering users
    /// toward headroom numbers it cannot verify.
    #[serde(default = "default_staleness_horizon")]
    pub staleness_horizon_epochs: u64,
    /// Minimum fraction of PoP reports that must arrive in an epoch for
    /// the backend to keep updating placements, in `(0, 1]`. Below it the
    /// tier goes *fail-static*: every away-fraction freezes and no new
    /// move is initiated until visibility returns.
    #[serde(default = "default_fail_static_quorum")]
    pub fail_static_quorum: f64,
    /// Per-epoch global blast-radius cap: total placed demand may not
    /// exceed this fraction of total offered demand, in `(0, 1]`. Bounds
    /// how far a single bad epoch of inputs can move the world.
    #[serde(default = "default_blast_radius_fraction")]
    pub blast_radius_fraction: f64,
    /// Move hysteresis: after a cell's away-fraction rises (a drain step),
    /// restores at that cell are suppressed for this many epochs. Zero
    /// disables the hold-down. The anti-thrash knob for populations that
    /// would otherwise bounce between PoPs on alternating reports.
    #[serde(default = "default_hold_down_epochs")]
    pub hold_down_epochs: u64,
    /// Plausibility clamp on negotiated budgets: a PoP's usable budget
    /// never exceeds this multiple of its own baseline demand, however
    /// much headroom it claims (`> 0`). Bounds the damage of an exporter
    /// over-reporting headroom.
    #[serde(default = "default_budget_plausibility")]
    pub budget_plausibility: f64,
}

fn default_step() -> f64 {
    0.05
}
fn default_max_shift() -> f64 {
    0.5
}
fn default_decay() -> f64 {
    0.01
}
fn default_headroom_safety() -> f64 {
    0.8
}
fn default_staleness_horizon() -> u64 {
    4
}
fn default_fail_static_quorum() -> f64 {
    0.5
}
fn default_blast_radius_fraction() -> f64 {
    0.5
}
fn default_hold_down_epochs() -> u64 {
    3
}
fn default_budget_plausibility() -> f64 {
    1.0
}

/// Why a [`GlobalConfig`] was rejected. The tier refuses to start on
/// out-of-range knobs instead of silently computing nonsense budgets
/// (a negative `headroom_safety` used to yield negative detour budgets).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `headroom_safety` must be finite and in `[0, 1]`.
    HeadroomSafety(f64),
    /// `step` must be finite and in `(0, 1]`.
    Step(f64),
    /// `max_shift` must be finite and in `(0, 1]`.
    MaxShift(f64),
    /// `decay` must be finite and in `[0, 1]`.
    Decay(f64),
    /// A DNS backend's `ttl_epochs` must be ≥ 1.
    ZeroTtl,
    /// An anycast backend's `convergence_epochs` must be ≥ 1.
    ZeroConvergence,
    /// `staleness_horizon_epochs` must be ≥ 1.
    ZeroStalenessHorizon,
    /// `fail_static_quorum` must be finite and in `(0, 1]`.
    FailStaticQuorum(f64),
    /// `blast_radius_fraction` must be finite and in `(0, 1]`.
    BlastRadiusFraction(f64),
    /// `budget_plausibility` must be finite and `> 0`.
    BudgetPlausibility(f64),
    /// A flash crowd's multiplier must be finite and `> 0`.
    FlashCrowdMultiplier {
        /// The offending crowd's population name.
        population: String,
        /// The rejected multiplier.
        multiplier: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::HeadroomSafety(v) => {
                write!(f, "headroom_safety {v} must be finite and in [0, 1]")
            }
            ConfigError::Step(v) => write!(f, "step {v} must be finite and in (0, 1]"),
            ConfigError::MaxShift(v) => write!(f, "max_shift {v} must be finite and in (0, 1]"),
            ConfigError::Decay(v) => write!(f, "decay {v} must be finite and in [0, 1]"),
            ConfigError::ZeroTtl => write!(f, "dns ttl_epochs must be >= 1"),
            ConfigError::ZeroConvergence => write!(f, "anycast convergence_epochs must be >= 1"),
            ConfigError::ZeroStalenessHorizon => {
                write!(f, "staleness_horizon_epochs must be >= 1")
            }
            ConfigError::FailStaticQuorum(v) => {
                write!(f, "fail_static_quorum {v} must be finite and in (0, 1]")
            }
            ConfigError::BlastRadiusFraction(v) => {
                write!(f, "blast_radius_fraction {v} must be finite and in (0, 1]")
            }
            ConfigError::BudgetPlausibility(v) => {
                write!(f, "budget_plausibility {v} must be finite and > 0")
            }
            ConfigError::FlashCrowdMultiplier {
                population,
                multiplier,
            } => write!(
                f,
                "flash crowd for {population:?}: multiplier {multiplier} must be finite and > 0"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig {
            grouping: PopulationGrouping::default(),
            backend: Some(BackendKind::Dns { ttl_epochs: 1 }),
            step: default_step(),
            max_shift: default_max_shift(),
            decay: default_decay(),
            headroom_safety: default_headroom_safety(),
            flash_crowds: Vec::new(),
            staleness_horizon_epochs: default_staleness_horizon(),
            fail_static_quorum: default_fail_static_quorum(),
            blast_radius_fraction: default_blast_radius_fraction(),
            hold_down_epochs: default_hold_down_epochs(),
            budget_plausibility: default_budget_plausibility(),
        }
    }
}

impl GlobalConfig {
    /// DNS-style steering with the given cache-expiry horizon.
    pub fn dns(ttl_epochs: u64) -> Self {
        GlobalConfig {
            backend: Some(BackendKind::Dns {
                ttl_epochs: ttl_epochs.max(1),
            }),
            ..GlobalConfig::default()
        }
    }

    /// Anycast-style steering with the given convergence delay.
    pub fn anycast(convergence_epochs: u64) -> Self {
        GlobalConfig {
            backend: Some(BackendKind::Anycast {
                convergence_epochs: convergence_epochs.max(1),
            }),
            ..GlobalConfig::default()
        }
    }

    /// Demand shaping only — flash crowds apply, steering never does.
    pub fn shape_only() -> Self {
        GlobalConfig {
            backend: None,
            ..GlobalConfig::default()
        }
    }

    /// Adds a scheduled flash crowd (builder-style).
    pub fn with_flash_crowd(mut self, spec: FlashCrowdSpec) -> Self {
        self.flash_crowds.push(spec);
        self
    }

    /// Rejects out-of-range knobs. Called by `GlobalController::new`, so a
    /// config that deserialized fine (serde checks shape, not ranges) still
    /// cannot reach the control loop with a NaN safety margin or a
    /// zero-epoch TTL.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.headroom_safety.is_finite() || !(0.0..=1.0).contains(&self.headroom_safety) {
            return Err(ConfigError::HeadroomSafety(self.headroom_safety));
        }
        if !self.step.is_finite() || self.step <= 0.0 || self.step > 1.0 {
            return Err(ConfigError::Step(self.step));
        }
        if !self.max_shift.is_finite() || self.max_shift <= 0.0 || self.max_shift > 1.0 {
            return Err(ConfigError::MaxShift(self.max_shift));
        }
        if !self.decay.is_finite() || !(0.0..=1.0).contains(&self.decay) {
            return Err(ConfigError::Decay(self.decay));
        }
        match self.backend {
            Some(BackendKind::Dns { ttl_epochs: 0 }) => return Err(ConfigError::ZeroTtl),
            Some(BackendKind::Anycast {
                convergence_epochs: 0,
            }) => return Err(ConfigError::ZeroConvergence),
            _ => {}
        }
        if self.staleness_horizon_epochs == 0 {
            return Err(ConfigError::ZeroStalenessHorizon);
        }
        if !self.fail_static_quorum.is_finite()
            || self.fail_static_quorum <= 0.0
            || self.fail_static_quorum > 1.0
        {
            return Err(ConfigError::FailStaticQuorum(self.fail_static_quorum));
        }
        if !self.blast_radius_fraction.is_finite()
            || self.blast_radius_fraction <= 0.0
            || self.blast_radius_fraction > 1.0
        {
            return Err(ConfigError::BlastRadiusFraction(self.blast_radius_fraction));
        }
        if !self.budget_plausibility.is_finite() || self.budget_plausibility <= 0.0 {
            return Err(ConfigError::BudgetPlausibility(self.budget_plausibility));
        }
        for crowd in &self.flash_crowds {
            if !crowd.multiplier.is_finite() || crowd.multiplier <= 0.0 {
                return Err(ConfigError::FlashCrowdMultiplier {
                    population: crowd.population.clone(),
                    multiplier: crowd.multiplier,
                });
            }
        }
        Ok(())
    }
}

/// Tunables of the retired `ef_sim::GlobalShifter` prototype, kept so old
/// configs and call sites migrate mechanically:
/// `GlobalConfig::from(old_cfg)` yields an equivalent DNS backend with a
/// one-epoch TTL (the prototype applied its shift immediately).
#[deprecated(note = "use ef_global::GlobalConfig instead")]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalShifterConfig {
    /// Shift increment per overloaded epoch.
    pub step: f64,
    /// Ceiling on the shifted-away fraction.
    pub max_shift: f64,
    /// Decay per quiet epoch.
    pub decay: f64,
}

#[allow(deprecated)]
impl Default for GlobalShifterConfig {
    fn default() -> Self {
        GlobalShifterConfig {
            step: default_step(),
            max_shift: default_max_shift(),
            decay: default_decay(),
        }
    }
}

#[allow(deprecated)]
impl From<GlobalShifterConfig> for GlobalConfig {
    fn from(old: GlobalShifterConfig) -> Self {
        GlobalConfig {
            backend: Some(BackendKind::Dns { ttl_epochs: 1 }),
            step: old.step,
            max_shift: old.max_shift,
            decay: old.decay,
            ..GlobalConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_the_right_backend() {
        assert_eq!(
            GlobalConfig::dns(4).backend,
            Some(BackendKind::Dns { ttl_epochs: 4 })
        );
        assert_eq!(
            GlobalConfig::anycast(3).backend,
            Some(BackendKind::Anycast {
                convergence_epochs: 3
            })
        );
        assert_eq!(GlobalConfig::shape_only().backend, None);
        // Degenerate horizons are clamped to 1.
        assert_eq!(
            GlobalConfig::dns(0).backend,
            Some(BackendKind::Dns { ttl_epochs: 1 })
        );
    }

    #[test]
    fn serde_round_trip_with_defaults() {
        let cfg = GlobalConfig::dns(4).with_flash_crowd(FlashCrowdSpec {
            population: "EU".into(),
            t_start_secs: 9000,
            duration_secs: 3600,
            multiplier: 2.5,
        });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GlobalConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // Missing optional fields come back as defaults.
        let minimal: GlobalConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(minimal.step, 0.05);
        assert_eq!(minimal.backend, None);
        assert!(minimal.flash_crowds.is_empty());
    }

    #[test]
    fn validate_accepts_defaults_and_constructors() {
        assert_eq!(GlobalConfig::default().validate(), Ok(()));
        assert_eq!(GlobalConfig::dns(4).validate(), Ok(()));
        assert_eq!(GlobalConfig::anycast(3).validate(), Ok(()));
        assert_eq!(GlobalConfig::shape_only().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_knobs() {
        let bad = |f: fn(&mut GlobalConfig)| {
            let mut cfg = GlobalConfig::default();
            f(&mut cfg);
            cfg.validate()
        };
        assert!(matches!(
            bad(|c| c.headroom_safety = f64::NAN),
            Err(ConfigError::HeadroomSafety(v)) if v.is_nan()
        ));
        assert_eq!(
            bad(|c| c.headroom_safety = -0.1),
            Err(ConfigError::HeadroomSafety(-0.1))
        );
        assert_eq!(
            bad(|c| c.headroom_safety = 1.5),
            Err(ConfigError::HeadroomSafety(1.5))
        );
        assert_eq!(bad(|c| c.step = 0.0), Err(ConfigError::Step(0.0)));
        assert_eq!(
            bad(|c| c.max_shift = f64::INFINITY),
            Err(ConfigError::MaxShift(f64::INFINITY))
        );
        assert_eq!(bad(|c| c.decay = -0.01), Err(ConfigError::Decay(-0.01)));
        assert_eq!(
            bad(|c| c.backend = Some(BackendKind::Dns { ttl_epochs: 0 })),
            Err(ConfigError::ZeroTtl)
        );
        assert_eq!(
            bad(|c| c.backend = Some(BackendKind::Anycast {
                convergence_epochs: 0
            })),
            Err(ConfigError::ZeroConvergence)
        );
        assert_eq!(
            bad(|c| c.staleness_horizon_epochs = 0),
            Err(ConfigError::ZeroStalenessHorizon)
        );
        assert_eq!(
            bad(|c| c.fail_static_quorum = 0.0),
            Err(ConfigError::FailStaticQuorum(0.0))
        );
        assert_eq!(
            bad(|c| c.blast_radius_fraction = 1.1),
            Err(ConfigError::BlastRadiusFraction(1.1))
        );
        assert_eq!(
            bad(|c| c.budget_plausibility = 0.0),
            Err(ConfigError::BudgetPlausibility(0.0))
        );
        let crowd = bad(|c| {
            c.flash_crowds.push(FlashCrowdSpec {
                population: "EU".into(),
                t_start_secs: 0,
                duration_secs: 60,
                multiplier: f64::NAN,
            })
        });
        assert!(matches!(
            crowd,
            Err(ConfigError::FlashCrowdMultiplier { .. })
        ));
        // Errors render as readable strings (used by the sim's startup path).
        assert!(ConfigError::ZeroTtl.to_string().contains("ttl_epochs"));
    }

    #[test]
    fn guard_knob_defaults_survive_serde() {
        let minimal: GlobalConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(minimal.staleness_horizon_epochs, 4);
        assert_eq!(minimal.fail_static_quorum, 0.5);
        assert_eq!(minimal.blast_radius_fraction, 0.5);
        assert_eq!(minimal.hold_down_epochs, 3);
        assert_eq!(minimal.budget_plausibility, 1.0);
        assert_eq!(minimal.validate(), Ok(()));
    }

    #[test]
    #[allow(deprecated)]
    fn shifter_config_migrates_to_dns_ttl_1() {
        let old = GlobalShifterConfig {
            step: 0.1,
            max_shift: 0.6,
            decay: 0.02,
        };
        let cfg: GlobalConfig = old.into();
        assert_eq!(cfg.backend, Some(BackendKind::Dns { ttl_epochs: 1 }));
        assert_eq!(cfg.step, 0.1);
        assert_eq!(cfg.max_shift, 0.6);
        assert_eq!(cfg.decay, 0.02);
    }
}
