//! Configuration for the global steering tier.

use serde::{Deserialize, Serialize};

use crate::population::PopulationGrouping;

/// Which mechanism moves user populations between PoPs. The two variants
/// bracket the design space the paper's successors explored: DNS maps
/// (gradual, fractional, delayed by resolver caches) versus anycast
/// announcements (instant whole-catchment cutover once BGP converges).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackendKind {
    /// DNS-style steering: per epoch the map may move a fraction of a
    /// population, and issued changes take effect gradually as resolver
    /// caches expire over `ttl_epochs`.
    Dns {
        /// Cache-expiry horizon in controller epochs (≥ 1). Each epoch the
        /// observed fraction closes `1/ttl_epochs` of the gap to the
        /// issued target.
        ttl_epochs: u64,
    },
    /// Anycast-style steering: withdrawing the announcement moves the
    /// *whole* population at once, `convergence_epochs` after the decision
    /// (BGP propagation delay). No fractional states ever exist.
    Anycast {
        /// Decision-to-effect delay in controller epochs (≥ 1).
        convergence_epochs: u64,
    },
}

/// A scheduled flash crowd: one population's demand multiplied for a
/// window of simulated time (the World-Cup-final scenario from §2 of the
/// paper, scaled to a named region).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdSpec {
    /// Population name (`"EU"`, `"AS64512"`, …). Unknown names are
    /// ignored.
    pub population: String,
    /// Window start, simulated seconds.
    pub t_start_secs: u64,
    /// Window length, seconds.
    pub duration_secs: u64,
    /// Demand multiplier applied inside the window.
    pub multiplier: f64,
}

/// Global-tier configuration.
///
/// `backend: None` is the *shape-only* arm: flash crowds still shape
/// demand (so baseline and steered experiment arms see byte-identical
/// offered load) but no steering ever happens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalConfig {
    /// How prefixes group into populations.
    #[serde(default)]
    pub grouping: PopulationGrouping,
    /// Steering mechanism; `None` disables steering (shape-only).
    #[serde(default)]
    pub backend: Option<BackendKind>,
    /// Shift increment per epoch of observed residual overload.
    #[serde(default = "default_step")]
    pub step: f64,
    /// Ceiling on the fraction of a population's demand at one PoP that a
    /// fractional backend may move away. Anycast ignores this: a
    /// withdrawal is all-or-nothing by construction.
    #[serde(default = "default_max_shift")]
    pub max_shift: f64,
    /// Decay per healthy epoch (fractional backends).
    #[serde(default = "default_decay")]
    pub decay: f64,
    /// Fraction of a PoP's reported headroom the global tier may consume
    /// as detour budget each epoch. Below 1.0 so global placement never
    /// eats the margin the per-PoP controller needs for its own detours.
    #[serde(default = "default_headroom_safety")]
    pub headroom_safety: f64,
    /// Scheduled flash crowds.
    #[serde(default)]
    pub flash_crowds: Vec<FlashCrowdSpec>,
}

fn default_step() -> f64 {
    0.05
}
fn default_max_shift() -> f64 {
    0.5
}
fn default_decay() -> f64 {
    0.01
}
fn default_headroom_safety() -> f64 {
    0.8
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig {
            grouping: PopulationGrouping::default(),
            backend: Some(BackendKind::Dns { ttl_epochs: 1 }),
            step: default_step(),
            max_shift: default_max_shift(),
            decay: default_decay(),
            headroom_safety: default_headroom_safety(),
            flash_crowds: Vec::new(),
        }
    }
}

impl GlobalConfig {
    /// DNS-style steering with the given cache-expiry horizon.
    pub fn dns(ttl_epochs: u64) -> Self {
        GlobalConfig {
            backend: Some(BackendKind::Dns {
                ttl_epochs: ttl_epochs.max(1),
            }),
            ..GlobalConfig::default()
        }
    }

    /// Anycast-style steering with the given convergence delay.
    pub fn anycast(convergence_epochs: u64) -> Self {
        GlobalConfig {
            backend: Some(BackendKind::Anycast {
                convergence_epochs: convergence_epochs.max(1),
            }),
            ..GlobalConfig::default()
        }
    }

    /// Demand shaping only — flash crowds apply, steering never does.
    pub fn shape_only() -> Self {
        GlobalConfig {
            backend: None,
            ..GlobalConfig::default()
        }
    }

    /// Adds a scheduled flash crowd (builder-style).
    pub fn with_flash_crowd(mut self, spec: FlashCrowdSpec) -> Self {
        self.flash_crowds.push(spec);
        self
    }
}

/// Tunables of the retired `ef_sim::GlobalShifter` prototype, kept so old
/// configs and call sites migrate mechanically:
/// `GlobalConfig::from(old_cfg)` yields an equivalent DNS backend with a
/// one-epoch TTL (the prototype applied its shift immediately).
#[deprecated(note = "use ef_global::GlobalConfig instead")]
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalShifterConfig {
    /// Shift increment per overloaded epoch.
    pub step: f64,
    /// Ceiling on the shifted-away fraction.
    pub max_shift: f64,
    /// Decay per quiet epoch.
    pub decay: f64,
}

#[allow(deprecated)]
impl Default for GlobalShifterConfig {
    fn default() -> Self {
        GlobalShifterConfig {
            step: default_step(),
            max_shift: default_max_shift(),
            decay: default_decay(),
        }
    }
}

#[allow(deprecated)]
impl From<GlobalShifterConfig> for GlobalConfig {
    fn from(old: GlobalShifterConfig) -> Self {
        GlobalConfig {
            backend: Some(BackendKind::Dns { ttl_epochs: 1 }),
            step: old.step,
            max_shift: old.max_shift,
            decay: old.decay,
            ..GlobalConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_the_right_backend() {
        assert_eq!(
            GlobalConfig::dns(4).backend,
            Some(BackendKind::Dns { ttl_epochs: 4 })
        );
        assert_eq!(
            GlobalConfig::anycast(3).backend,
            Some(BackendKind::Anycast {
                convergence_epochs: 3
            })
        );
        assert_eq!(GlobalConfig::shape_only().backend, None);
        // Degenerate horizons are clamped to 1.
        assert_eq!(
            GlobalConfig::dns(0).backend,
            Some(BackendKind::Dns { ttl_epochs: 1 })
        );
    }

    #[test]
    fn serde_round_trip_with_defaults() {
        let cfg = GlobalConfig::dns(4).with_flash_crowd(FlashCrowdSpec {
            population: "EU".into(),
            t_start_secs: 9000,
            duration_secs: 3600,
            multiplier: 2.5,
        });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GlobalConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // Missing optional fields come back as defaults.
        let minimal: GlobalConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(minimal.step, 0.05);
        assert_eq!(minimal.backend, None);
        assert!(minimal.flash_crowds.is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn shifter_config_migrates_to_dns_ttl_1() {
        let old = GlobalShifterConfig {
            step: 0.1,
            max_shift: 0.6,
            decay: 0.02,
        };
        let cfg: GlobalConfig = old.into();
        assert_eq!(cfg.backend, Some(BackendKind::Dns { ttl_epochs: 1 }));
        assert_eq!(cfg.step, 0.1);
        assert_eq!(cfg.max_shift, 0.6);
        assert_eq!(cfg.decay, 0.02);
    }
}
