//! The global controller: user→PoP placement above per-PoP Edge Fabric.
//!
//! Edge Fabric (the paper's system) runs one controller per PoP and can
//! only shuffle traffic between that PoP's own egresses. When a whole PoP
//! runs out of capacity — a regional blackout, a flash crowd — the fix
//! lives a layer up: move *users* to other PoPs, the job of Facebook's
//! Cartographer and its successors. [`GlobalController`] reproduces that
//! layer:
//!
//! * demand is grouped into named [populations](crate::population) and
//!   optionally *shaped* by scheduled flash crowds;
//! * each epoch every PoP reports up a [`PopReport`] (residual overload,
//!   drops, headroom) and a [steering backend](crate::backend) updates
//!   per-(population, PoP) away-fractions;
//! * before the next epoch the controller *places* the moved demand onto
//!   other PoPs that serve the same prefixes, within per-PoP detour
//!   budgets negotiated from reported headroom — so global steering never
//!   overloads a healthy PoP to save a sick one.
//!
//! Placement conserves demand exactly: whatever cannot be granted a
//! budget stays at its source PoP (and keeps hurting, which keeps the
//! backend shifting). Every placement action is emitted as a
//! [`PlacementRecord`] so `efctl trace` can answer *why* a population
//! moved where it did.

use serde::{Deserialize, Serialize};

use ef_telemetry::{
    PlacementRecord, PlacementRejectReason, PlacementTarget, PlacementVerdict, RejectedTarget,
    TelemetryHandle,
};
use ef_topology::{Deployment, PopId};
use ef_traffic::demand::DemandPoint;

use crate::backend::{AnycastBackend, CellObservation, DnsBackend, ShiftTuning, SteeringBackend};
use crate::config::{BackendKind, GlobalConfig};
use crate::population::PopulationMap;

const EPS: f64 = 1e-12;

/// Above this away-fraction a PoP that received nothing is reported as
/// [`PlacementRejectReason::SourceShifted`] (it is mostly withdrawn
/// itself) rather than out of budget.
const SOURCE_SHIFTED_AWAY: f64 = 0.5;

/// What one PoP reports up to the global tier after an epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PopReport {
    /// The per-PoP controller saw overload it could not relieve.
    pub residual_overloaded: bool,
    /// Traffic actually dropped at this PoP during the epoch, Mbps.
    pub dropped_mbps: f64,
    /// Total demand offered to this PoP during the epoch, Mbps.
    pub offered_mbps: f64,
    /// Spare egress capacity under the utilization limit, Mbps.
    pub headroom_mbps: f64,
}

impl PopReport {
    /// The overload signal backends react to: actual drops. Residual
    /// overload without loss is the per-PoP controller's problem; the
    /// global tier moves users only once traffic is demonstrably lost.
    pub fn overloaded(&self) -> bool {
        self.dropped_mbps > 0.0
    }
}

/// One population's current placement state, for reports and the CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementSummary {
    /// Population name.
    pub population: String,
    /// Away-fraction per PoP (how much of the population's demand at that
    /// PoP is currently steered elsewhere).
    pub away: Vec<f64>,
    /// Demand actually moved in the last epoch, Mbps.
    pub moved_mbps: f64,
    /// The population's average demand per PoP, Mbps.
    pub baseline_mbps: Vec<f64>,
}

/// The global steering tier. One instance sits above all PoPs; the
/// simulation engine calls [`shape_demand`](Self::shape_demand) →
/// [`place`](Self::place) before stepping the PoPs and
/// [`observe`](Self::observe) with their reports afterwards.
pub struct GlobalController {
    cfg: GlobalConfig,
    map: PopulationMap,
    backend: Option<Box<dyn SteeringBackend>>,
    /// `away[population][pop]` — fraction steered away, updated by the
    /// backend each `observe`.
    away: Vec<Vec<f64>>,
    /// Per-PoP detour budget (Mbps) from the last `observe`.
    budgets: Vec<f64>,
    /// Demand moved per population in the last `place`, Mbps.
    moved_last: Vec<f64>,
    /// Flash crowds resolved to population indices:
    /// `(population, start_secs, end_secs, multiplier)`.
    crowds: Vec<(usize, u64, u64, f64)>,
    /// `holders[prefix_idx]` — every `(pop_idx, demand_point_idx)` serving
    /// that prefix, in deployment order.
    holders: Vec<Vec<(u32, u32)>>,
    epoch: u64,
    n_pops: usize,
    telemetry: TelemetryHandle,
}

impl std::fmt::Debug for GlobalController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalController")
            .field("backend", &self.backend_name())
            .field("populations", &self.map.len())
            .field("pops", &self.n_pops)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl GlobalController {
    /// Builds the tier for a deployment. Flash crowds naming unknown
    /// populations are ignored.
    pub fn new(deployment: &Deployment, cfg: GlobalConfig, telemetry: TelemetryHandle) -> Self {
        let map = PopulationMap::build(deployment, cfg.grouping);
        let n_pops = deployment.pops.len();
        let n_populations = map.len();
        let mut backend: Option<Box<dyn SteeringBackend>> = match cfg.backend {
            Some(BackendKind::Dns { ttl_epochs }) => Some(Box::new(DnsBackend::new(ttl_epochs))),
            Some(BackendKind::Anycast { convergence_epochs }) => {
                Some(Box::new(AnycastBackend::new(convergence_epochs)))
            }
            None => None,
        };
        if let Some(b) = backend.as_mut() {
            b.init(n_populations, n_pops);
        }
        let mut holders: Vec<Vec<(u32, u32)>> =
            vec![Vec::new(); deployment.universe.prefixes.len()];
        for (pop_idx, pop) in deployment.pops.iter().enumerate() {
            for (point_idx, served) in pop.served.iter().enumerate() {
                if let Some(h) = holders.get_mut(served.prefix_idx as usize) {
                    h.push((pop_idx as u32, point_idx as u32));
                }
            }
        }
        let crowds = cfg
            .flash_crowds
            .iter()
            .filter_map(|spec| {
                map.population_named(&spec.population).map(|pi| {
                    (
                        pi,
                        spec.t_start_secs,
                        spec.t_start_secs.saturating_add(spec.duration_secs),
                        spec.multiplier,
                    )
                })
            })
            .collect();
        GlobalController {
            away: vec![vec![0.0; n_pops]; n_populations],
            budgets: vec![0.0; n_pops],
            moved_last: vec![0.0; n_populations],
            crowds,
            holders,
            epoch: 0,
            n_pops,
            cfg,
            map,
            backend,
            telemetry,
        }
    }

    /// The steering mechanism's name (`"dns"`, `"anycast"`, or
    /// `"shape_only"` when steering is disabled).
    pub fn backend_name(&self) -> &'static str {
        match self.backend.as_deref() {
            Some(b) => b.name(),
            None => "shape_only",
        }
    }

    /// The configuration the tier runs with.
    pub fn config(&self) -> &GlobalConfig {
        &self.cfg
    }

    /// The population partition.
    pub fn population_map(&self) -> &PopulationMap {
        &self.map
    }

    /// Epochs observed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when any population currently has demand steered away.
    pub fn is_active(&self) -> bool {
        self.away.iter().any(|row| row.iter().any(|f| *f > EPS))
    }

    /// The largest away-fraction any population has at `pop` — the
    /// successor of the prototype shifter's per-PoP shift fraction.
    pub fn away_fraction(&self, pop: PopId) -> f64 {
        let idx = pop.0 as usize;
        self.away
            .iter()
            .filter_map(|row| row.get(idx))
            .fold(0.0, |acc, f| acc.max(*f))
    }

    /// Current placement state per population, for reports and `efctl`.
    pub fn placements(&self) -> Vec<PlacementSummary> {
        self.map
            .populations
            .iter()
            .enumerate()
            .map(|(pi, p)| PlacementSummary {
                population: p.name.clone(),
                away: self.away.get(pi).cloned().unwrap_or_default(),
                moved_mbps: self.moved_last.get(pi).copied().unwrap_or(0.0),
                baseline_mbps: p.baseline_mbps.clone(),
            })
            .collect()
    }

    /// Applies scheduled flash crowds to offered demand: every demand
    /// point belonging to an active crowd's population is multiplied, at
    /// every PoP (the crowd raises the population's demand; the serving
    /// footprint splits it as usual).
    pub fn shape_demand(&self, t_secs: u64, demands: &mut [(PopId, Vec<DemandPoint>)]) {
        for &(pi, start, end, mult) in &self.crowds {
            if t_secs < start || t_secs >= end {
                continue;
            }
            for (_, points) in demands.iter_mut() {
                for point in points.iter_mut() {
                    let member = self
                        .map
                        .of_prefix
                        .get(point.prefix_idx as usize)
                        .is_some_and(|p| *p as usize == pi);
                    if member {
                        point.mbps *= mult;
                    }
                }
            }
        }
    }

    /// Moves steered-away demand onto other PoPs serving the same
    /// prefixes, within per-PoP detour budgets. Demand is conserved
    /// exactly: the fraction of a victim's moved demand that no budget
    /// accepts stays at the victim. Emits one [`PlacementRecord`] per
    /// (population, drained PoP) with demand in motion.
    pub fn place(&mut self, t_secs: u64, demands: &mut [(PopId, Vec<DemandPoint>)]) {
        let n_pops = self.n_pops;
        let n_populations = self.map.len();
        for m in &mut self.moved_last {
            *m = 0.0;
        }
        if !self.is_active() || n_pops == 0 {
            return;
        }
        // Map pop index → position in `demands` (callers usually pass
        // deployment order, but don't rely on it).
        let mut arm_of_pop: Vec<usize> = vec![demands.len(); n_pops];
        for (arm, (pop, _)) in demands.iter().enumerate() {
            if let Some(slot) = arm_of_pop.get_mut(pop.0 as usize) {
                *slot = arm;
            }
        }
        let mut remaining = self.budgets.clone();
        // Attribution, indexed [population][src] and [population][src][dst].
        let mut attempted = vec![0.0f64; n_populations * n_pops];
        let mut placed = vec![0.0f64; n_populations * n_pops];
        let mut granted = vec![0.0f64; n_populations * n_pops * n_pops];

        let mut victims: Vec<(usize, usize, usize, f64)> = Vec::new();
        let mut receivers: Vec<(usize, usize, usize, f64)> = Vec::new();
        let mut grants: Vec<f64> = Vec::new();
        for (prefix_idx, holders) in self.holders.iter().enumerate() {
            let Some(pi) = self.map.of_prefix.get(prefix_idx).map(|p| *p as usize) else {
                continue;
            };
            let Some(a_row) = self.away.get(pi) else {
                continue;
            };
            victims.clear();
            receivers.clear();
            let mut moved = 0.0f64;
            let mut total_w = 0.0f64;
            for &(pop_idx, point_idx) in holders {
                let (p, q) = (pop_idx as usize, point_idx as usize);
                let Some(&arm) = arm_of_pop.get(p) else {
                    continue;
                };
                let Some((_, points)) = demands.get(arm) else {
                    continue;
                };
                let Some(point) = points.get(q) else { continue };
                let away = a_row.get(p).copied().unwrap_or(0.0).clamp(0.0, 1.0);
                if away > EPS {
                    let contribution = point.mbps * away;
                    if contribution > EPS {
                        moved += contribution;
                        victims.push((arm, q, p, contribution));
                    }
                }
                // Receiver weight fades continuously with the cell's own
                // away-fraction: a fully withdrawn PoP receives nothing, a
                // lightly shifted one (decay residue, a transient blip)
                // stays usable. A hard "must be exactly at home" cutoff
                // regularly leaves *no* receivers, because per-PoP drop
                // blips sprinkle small away-fractions everywhere.
                let receiving = 1.0 - away;
                if receiving > EPS {
                    let budget = remaining.get(p).copied().unwrap_or(0.0).max(0.0);
                    if budget > EPS {
                        let w = budget * receiving;
                        total_w += w;
                        receivers.push((arm, q, p, w));
                    }
                }
            }
            if moved <= EPS {
                continue;
            }
            for &(_, _, src, c) in &victims {
                attempted[pi * n_pops + src] += c;
            }
            if total_w <= EPS {
                continue; // nowhere to place — demand stays and keeps hurting
            }
            // Grant each receiver its budget-proportional share, capped by
            // what is left of that PoP's budget.
            grants.clear();
            let mut total_granted = 0.0f64;
            for &(_, _, dst, w) in &receivers {
                let ideal = moved * w / total_w;
                let cap = remaining.get(dst).copied().unwrap_or(0.0).max(0.0);
                let g = ideal.min(cap);
                grants.push(g);
                total_granted += g;
            }
            if total_granted <= EPS {
                continue;
            }
            // Victims lose exactly what receivers gain, proportionally to
            // their contribution — conservation is exact by construction.
            let scale = total_granted / moved;
            for &(arm, q, src, c) in &victims {
                if let Some((_, points)) = demands.get_mut(arm) {
                    if let Some(point) = points.get_mut(q) {
                        point.mbps = (point.mbps - c * scale).max(0.0);
                    }
                }
                placed[pi * n_pops + src] += c * scale;
            }
            for (ri, &(arm, q, dst, _)) in receivers.iter().enumerate() {
                let g = grants.get(ri).copied().unwrap_or(0.0);
                if g <= EPS {
                    continue;
                }
                if let Some((_, points)) = demands.get_mut(arm) {
                    if let Some(point) = points.get_mut(q) {
                        point.mbps += g;
                    }
                }
                if let Some(r) = remaining.get_mut(dst) {
                    *r -= g;
                }
                for &(_, _, src, c) in &victims {
                    granted[(pi * n_pops + src) * n_pops + dst] += g * c / moved;
                }
            }
        }

        // Roll up per-population totals and emit provenance.
        let now_ms = t_secs.saturating_mul(1000);
        for pi in 0..n_populations {
            let mut population_moved = 0.0f64;
            for src in 0..n_pops {
                let att = attempted[pi * n_pops + src];
                if att <= EPS {
                    continue;
                }
                let plc = placed[pi * n_pops + src];
                population_moved += plc;
                if self.telemetry.enabled() {
                    self.emit_placement(pi, src, plc, &granted, &remaining, now_ms);
                }
            }
            if let Some(m) = self.moved_last.get_mut(pi) {
                *m = population_moved;
            }
            if self.telemetry.enabled() && population_moved > EPS {
                if let Some(p) = self.map.populations.get(pi) {
                    self.telemetry
                        .gauge(&format!("global.{}.moved_mbps", p.name), population_moved);
                    let away_max = self
                        .away
                        .get(pi)
                        .map(|row| row.iter().fold(0.0f64, |a, f| a.max(*f)))
                        .unwrap_or(0.0);
                    self.telemetry
                        .gauge(&format!("global.{}.away_max", p.name), away_max);
                }
            }
        }
    }

    fn emit_placement(
        &self,
        pi: usize,
        src: usize,
        moved_mbps: f64,
        granted: &[f64],
        remaining: &[f64],
        now_ms: u64,
    ) {
        let Some(population) = self.map.populations.get(pi) else {
            return;
        };
        let n_pops = self.n_pops;
        let mut targets = Vec::new();
        let mut rejected = Vec::new();
        for dst in 0..n_pops {
            if dst == src {
                continue;
            }
            let g = granted
                .get((pi * n_pops + src) * n_pops + dst)
                .copied()
                .unwrap_or(0.0);
            if g > EPS {
                targets.push(PlacementTarget {
                    pop: dst as u16,
                    granted_mbps: g,
                });
                continue;
            }
            let baseline = population.baseline_mbps.get(dst).copied().unwrap_or(0.0);
            let away = self
                .away
                .get(pi)
                .and_then(|row| row.get(dst))
                .copied()
                .unwrap_or(0.0);
            let reason = if baseline <= EPS {
                PlacementRejectReason::NoFootprint
            } else if away > SOURCE_SHIFTED_AWAY {
                PlacementRejectReason::SourceShifted
            } else {
                PlacementRejectReason::NoHeadroom {
                    budget_mbps: remaining.get(dst).copied().unwrap_or(0.0).max(0.0),
                }
            };
            rejected.push(RejectedTarget {
                pop: dst as u16,
                reason,
            });
        }
        let verdict = if moved_mbps > EPS {
            PlacementVerdict::Applied
        } else {
            PlacementVerdict::NoFeasibleTarget
        };
        let record = PlacementRecord {
            population: population.name.clone(),
            backend: self.backend_name().to_string(),
            trigger: "overload".to_string(),
            from_pop: src as u16,
            away_fraction: self
                .away
                .get(pi)
                .and_then(|row| row.get(src))
                .copied()
                .unwrap_or(0.0),
            moved_mbps,
            targets,
            rejected,
            verdict,
        };
        self.telemetry.placement(src as u16, now_ms, &record);
    }

    /// Feeds the epoch's per-PoP reports: refreshes detour budgets from
    /// reported headroom and lets the backend update every
    /// (population, PoP) away-fraction. `reports` is indexed by PoP.
    pub fn observe(&mut self, reports: &[PopReport]) {
        for (j, budget) in self.budgets.iter_mut().enumerate() {
            *budget = reports
                .get(j)
                .map(|r| (r.headroom_mbps * self.cfg.headroom_safety).max(0.0))
                .unwrap_or(0.0);
        }
        self.epoch = self.epoch.saturating_add(1);
        let tuning = ShiftTuning {
            step: self.cfg.step,
            max_shift: self.cfg.max_shift,
            decay: self.cfg.decay,
        };
        let Some(backend) = self.backend.as_mut() else {
            return;
        };
        for (pi, population) in self.map.populations.iter().enumerate() {
            for j in 0..self.n_pops {
                let baseline = population.baseline_mbps.get(j).copied().unwrap_or(0.0);
                if baseline <= 0.0 {
                    continue; // no footprint — nothing of this population here
                }
                let Some(report) = reports.get(j) else {
                    continue;
                };
                let obs = CellObservation {
                    dropped_mbps: report.dropped_mbps.max(0.0),
                    offered_mbps: report.offered_mbps.max(0.0),
                    headroom_mbps: report.headroom_mbps,
                    baseline_mbps: baseline,
                };
                let fraction = backend.update(pi, j, &obs, &tuning).clamp(0.0, 1.0);
                if let Some(cell) = self.away.get_mut(pi).and_then(|row| row.get_mut(j)) {
                    *cell = fraction;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_topology::{generate, GenConfig};
    use proptest::prelude::*;

    fn deployment(pops: u16) -> Deployment {
        generate(&GenConfig {
            n_pops: pops as usize,
            ..GenConfig::small(3)
        })
    }

    fn demands_for(dep: &Deployment) -> Vec<(PopId, Vec<DemandPoint>)> {
        dep.pops
            .iter()
            .map(|pop| {
                (
                    pop.id,
                    pop.served
                        .iter()
                        .map(|s| DemandPoint {
                            prefix_idx: s.prefix_idx,
                            mbps: s.avg_mbps,
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn total(demands: &[(PopId, Vec<DemandPoint>)]) -> f64 {
        demands
            .iter()
            .map(|(_, pts)| pts.iter().map(|p| p.mbps).sum::<f64>())
            .sum()
    }

    fn pop_total(demands: &[(PopId, Vec<DemandPoint>)], pop: PopId) -> f64 {
        demands
            .iter()
            .find(|(p, _)| *p == pop)
            .map(|(_, pts)| pts.iter().map(|p| p.mbps).sum())
            .unwrap()
    }

    /// Reports where `victim` is overloaded and everyone else has
    /// abundant headroom.
    fn reports(dep: &Deployment, victim: PopId, headroom: f64) -> Vec<PopReport> {
        dep.pops
            .iter()
            .map(|p| {
                if p.id == victim {
                    // Dropping half of everything offered: severe enough
                    // that every backend reacts at full tilt.
                    PopReport {
                        residual_overloaded: true,
                        dropped_mbps: 1e9,
                        offered_mbps: 2e9,
                        headroom_mbps: 0.0,
                    }
                } else {
                    PopReport {
                        residual_overloaded: false,
                        dropped_mbps: 0.0,
                        offered_mbps: 1e9,
                        headroom_mbps: headroom,
                    }
                }
            })
            .collect()
    }

    #[test]
    fn dns_steering_drains_an_overloaded_pop() {
        let dep = deployment(4);
        let mut ctl =
            GlobalController::new(&dep, GlobalConfig::dns(1), TelemetryHandle::disabled());
        let victim = PopId(0);
        for _ in 0..6 {
            ctl.observe(&reports(&dep, victim, 1e9));
        }
        assert!(ctl.is_active());
        assert!((ctl.away_fraction(victim) - 0.30).abs() < 1e-9);
        let mut demands = demands_for(&dep);
        let before_total = total(&demands);
        let before_victim = pop_total(&demands, victim);
        ctl.place(3600, &mut demands);
        assert!((total(&demands) - before_total).abs() < 1e-6);
        let after_victim = pop_total(&demands, victim);
        assert!(after_victim < before_victim * 0.75, "{after_victim}");
        let moved: f64 = ctl.placements().iter().map(|p| p.moved_mbps).sum();
        assert!(moved > 0.0);
    }

    #[test]
    fn place_respects_detour_budgets() {
        let dep = deployment(3);
        let mut ctl =
            GlobalController::new(&dep, GlobalConfig::dns(1), TelemetryHandle::disabled());
        let victim = PopId(0);
        // Zero headroom anywhere: nothing may be placed.
        for _ in 0..6 {
            ctl.observe(&reports(&dep, victim, 0.0));
        }
        let mut demands = demands_for(&dep);
        let snapshot = demands.clone();
        ctl.place(0, &mut demands);
        for ((pa, a), (pb, b)) in demands.iter().zip(snapshot.iter()) {
            assert_eq!(pa, pb);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x.mbps - y.mbps).abs() < 1e-9);
            }
        }
        // A tiny budget is consumed but never exceeded.
        for _ in 0..6 {
            ctl.observe(&reports(&dep, victim, 10.0));
        }
        let mut demands = demands_for(&dep);
        let before: Vec<f64> = dep.pops.iter().map(|p| pop_total(&demands, p.id)).collect();
        ctl.place(0, &mut demands);
        for (idx, pop) in dep.pops.iter().enumerate() {
            if pop.id == victim {
                continue;
            }
            let gained = pop_total(&demands, pop.id) - before[idx];
            // budget = headroom × safety = 10 × 0.8
            assert!(gained <= 8.0 + 1e-6, "pop {idx} gained {gained}");
        }
    }

    #[test]
    fn shape_only_never_steers_but_shapes_crowds() {
        let dep = deployment(3);
        let cfg = GlobalConfig::shape_only().with_flash_crowd(crate::config::FlashCrowdSpec {
            population: "NA".into(),
            t_start_secs: 100,
            duration_secs: 100,
            multiplier: 2.0,
        });
        let mut ctl = GlobalController::new(&dep, cfg, TelemetryHandle::disabled());
        let victim = PopId(0);
        for _ in 0..10 {
            ctl.observe(&reports(&dep, victim, 1e9));
        }
        assert!(!ctl.is_active());
        assert_eq!(ctl.backend_name(), "shape_only");
        // The crowd multiplies exactly the NA population's demand.
        let na = ctl.population_map().population_named("NA").unwrap();
        let mut demands = demands_for(&dep);
        let before = total(&demands);
        let na_before: f64 = demands
            .iter()
            .flat_map(|(_, pts)| pts.iter())
            .filter(|p| ctl.population_map().of_prefix[p.prefix_idx as usize] as usize == na)
            .map(|p| p.mbps)
            .sum();
        ctl.shape_demand(150, &mut demands);
        assert!((total(&demands) - (before + na_before)).abs() < 1e-6);
        // Outside the window: identity.
        let snapshot = demands.clone();
        ctl.shape_demand(300, &mut demands);
        assert_eq!(demands, snapshot);
    }

    #[test]
    fn placement_records_carry_provenance() {
        let dep = deployment(3);
        let (telemetry, sink) = TelemetryHandle::memory();
        let mut ctl = GlobalController::new(&dep, GlobalConfig::dns(1), telemetry);
        let victim = PopId(1);
        for _ in 0..6 {
            ctl.observe(&reports(&dep, victim, 1e9));
        }
        let mut demands = demands_for(&dep);
        ctl.place(7200, &mut demands);
        let placements = sink.placements();
        assert!(!placements.is_empty());
        for (pop, now_ms, record) in &placements {
            assert_eq!(*pop, victim.0);
            assert_eq!(*now_ms, 7_200_000);
            assert_eq!(record.backend, "dns");
            assert!(record.applied());
            assert!(!record.targets.is_empty());
            assert!(record.moved_mbps > 0.0);
            assert!(record.away_fraction > 0.0);
        }
    }

    #[test]
    fn anycast_moves_whole_population_after_convergence() {
        let dep = deployment(4);
        let mut ctl =
            GlobalController::new(&dep, GlobalConfig::anycast(2), TelemetryHandle::disabled());
        let victim = PopId(0);
        // Decision + convergence epochs.
        for _ in 0..3 {
            ctl.observe(&reports(&dep, victim, 1e9));
        }
        // Every population served at the victim is fully withdrawn.
        assert_eq!(ctl.away_fraction(victim), 1.0);
        let mut demands = demands_for(&dep);
        let before = total(&demands);
        ctl.place(0, &mut demands);
        assert!((total(&demands) - before).abs() < 1e-6);
        // The victim keeps only demand no budget accepted (here: none).
        assert!(pop_total(&demands, victim) < 1e-6);
    }

    proptest! {
        /// DNS placement conserves total demand for any overload pattern,
        /// any headroom distribution, and any number of epochs.
        #[test]
        fn prop_dns_place_conserves_demand(
            seed_pops in 2u16..6,
            victim in 0u16..6,
            epochs in 1usize..12,
            headroom in 0.0f64..100_000.0,
        ) {
            let dep = deployment(seed_pops);
            let victim = PopId(victim % seed_pops);
            let mut ctl = GlobalController::new(
                &dep, GlobalConfig::dns(2), TelemetryHandle::disabled());
            for _ in 0..epochs {
                ctl.observe(&reports(&dep, victim, headroom));
            }
            let mut demands = demands_for(&dep);
            let before = total(&demands);
            ctl.place(0, &mut demands);
            prop_assert!((total(&demands) - before).abs() < 1e-6);
            // No demand point ever goes negative.
            for (_, pts) in &demands {
                for p in pts {
                    prop_assert!(p.mbps >= 0.0);
                }
            }
        }
    }
}
