//! The global controller: user→PoP placement above per-PoP Edge Fabric.
//!
//! Edge Fabric (the paper's system) runs one controller per PoP and can
//! only shuffle traffic between that PoP's own egresses. When a whole PoP
//! runs out of capacity — a regional blackout, a flash crowd — the fix
//! lives a layer up: move *users* to other PoPs, the job of Facebook's
//! Cartographer and its successors. [`GlobalController`] reproduces that
//! layer:
//!
//! * demand is grouped into named [populations](crate::population) and
//!   optionally *shaped* by scheduled flash crowds;
//! * each epoch every PoP reports up a [`PopReport`] (residual overload,
//!   drops, headroom) and a [steering backend](crate::backend) updates
//!   per-(population, PoP) away-fractions;
//! * before the next epoch the controller *places* the moved demand onto
//!   other PoPs that serve the same prefixes, within per-PoP detour
//!   budgets negotiated from reported headroom — so global steering never
//!   overloads a healthy PoP to save a sick one.
//!
//! Placement conserves demand exactly: whatever cannot be granted a
//! budget stays at its source PoP (and keeps hurting, which keeps the
//! backend shifting). Every placement action is emitted as a
//! [`PlacementRecord`] so `efctl trace` can answer *why* a population
//! moved where it did.

use serde::{Deserialize, Serialize};

use ef_telemetry::{
    PlacementGuard, PlacementRecord, PlacementRejectReason, PlacementTarget, PlacementVerdict,
    RejectedTarget, TelemetryHandle,
};
use ef_topology::{Deployment, PopId};
use ef_traffic::demand::DemandPoint;

use crate::backend::{AnycastBackend, CellObservation, DnsBackend, ShiftTuning, SteeringBackend};
use crate::config::{BackendKind, ConfigError, GlobalConfig};
use crate::population::PopulationMap;

const EPS: f64 = 1e-12;

/// Above this away-fraction a PoP that received nothing is reported as
/// [`PlacementRejectReason::SourceShifted`] (it is mostly withdrawn
/// itself) rather than out of budget.
const SOURCE_SHIFTED_AWAY: f64 = 0.5;

/// What one PoP reports up to the global tier after an epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PopReport {
    /// The per-PoP controller saw overload it could not relieve.
    pub residual_overloaded: bool,
    /// Traffic actually dropped at this PoP during the epoch, Mbps.
    pub dropped_mbps: f64,
    /// Total demand offered to this PoP during the epoch, Mbps.
    pub offered_mbps: f64,
    /// Spare egress capacity under the utilization limit, Mbps.
    pub headroom_mbps: f64,
    /// Controller epoch the report describes, stamped by the producer.
    /// Freshness is judged against this stamp, not against delivery —
    /// a frozen exporter that keeps re-sending an old epoch looks exactly
    /// as stale as a partitioned one. Pre-stamp reports deserialize as
    /// epoch 0 (maximally old).
    #[serde(default)]
    pub epoch: u64,
}

impl PopReport {
    /// The overload signal backends react to: actual drops. Residual
    /// overload without loss is the per-PoP controller's problem; the
    /// global tier moves users only once traffic is demonstrably lost.
    /// Drops with zero offered demand are a measurement artifact (a
    /// counter race at an idle PoP), not overload.
    pub fn overloaded(&self) -> bool {
        self.dropped_mbps > 0.0 && self.offered_mbps > 0.0
    }
}

/// One epoch's degradation-guard verdicts, for health rules and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GuardSnapshot {
    /// Reports delivered in the last observed epoch.
    pub delivered_reports: usize,
    /// Reports expected per epoch (one per PoP).
    pub expected_reports: usize,
    /// PoPs whose freshest report is at least one epoch old.
    pub stale_pops: usize,
    /// Largest report age across PoPs, epochs (0 = all fresh).
    pub max_report_age: u64,
    /// The last epoch ran fail-static (below report quorum, or crashed).
    pub fail_static: bool,
    /// Total epochs spent fail-static or crashed since start.
    pub frozen_epochs: u64,
    /// Away-fraction direction flips in the last epoch (a drain right
    /// after a restore or vice versa) — the thrash signal.
    pub flips: u64,
    /// Restores suppressed by the hold-down in the last epoch.
    pub suppressed_restores: u64,
    /// The last placement epoch hit the blast-radius cap.
    pub blast_capped: bool,
    /// The last observed epoch clamped at least one PoP's budget to its
    /// plausibility cap — reported headroom exceeded the configured
    /// multiple of the PoP's baseline demand. A richly provisioned healthy
    /// PoP can trip this too; the cap is the point, not the accusation.
    pub plausibility_clamped: bool,
}

/// One population's current placement state, for reports and the CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementSummary {
    /// Population name.
    pub population: String,
    /// Away-fraction per PoP (how much of the population's demand at that
    /// PoP is currently steered elsewhere).
    pub away: Vec<f64>,
    /// Demand actually moved in the last epoch, Mbps.
    pub moved_mbps: f64,
    /// The population's average demand per PoP, Mbps.
    pub baseline_mbps: Vec<f64>,
}

/// The global steering tier. One instance sits above all PoPs; the
/// simulation engine calls [`shape_demand`](Self::shape_demand) →
/// [`place`](Self::place) before stepping the PoPs and
/// [`observe`](Self::observe) with their reports afterwards.
pub struct GlobalController {
    cfg: GlobalConfig,
    map: PopulationMap,
    backend: Option<Box<dyn SteeringBackend>>,
    /// `away[population][pop]` — fraction steered away, updated by the
    /// backend each `observe`.
    away: Vec<Vec<f64>>,
    /// Per-PoP detour budget (Mbps) from the last `observe`.
    budgets: Vec<f64>,
    /// Demand moved per population in the last `place`, Mbps.
    moved_last: Vec<f64>,
    /// Flash crowds resolved to population indices:
    /// `(population, start_secs, end_secs, multiplier)`.
    crowds: Vec<(usize, u64, u64, f64)>,
    /// `holders[prefix_idx]` — every `(pop_idx, demand_point_idx)` serving
    /// that prefix, in deployment order.
    holders: Vec<Vec<(u32, u32)>>,
    epoch: u64,
    n_pops: usize,
    /// Total baseline demand per PoP, Mbps — the plausibility yardstick
    /// for reported headroom.
    pop_baseline: Vec<f64>,
    /// Freshest report seen per PoP, kept across missed epochs so budgets
    /// decay from the last known headroom instead of snapping to zero.
    last_report: Vec<Option<PopReport>>,
    /// Remaining suppressed-restore count per `(population, pop)` cell.
    hold: Vec<Vec<u64>>,
    /// Last movement direction per cell: +1 drain, -1 restore, 0 none.
    last_dir: Vec<Vec<i8>>,
    /// Guard verdicts of the last epoch.
    guards: GuardSnapshot,
    /// The tier is down (crash fault): everything frozen until `observe`.
    crashed: bool,
    /// Blast-radius cap applied in the last `place`, Mbps.
    blast_cap_mbps: f64,
    telemetry: TelemetryHandle,
}

impl std::fmt::Debug for GlobalController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalController")
            .field("backend", &self.backend_name())
            .field("populations", &self.map.len())
            .field("pops", &self.n_pops)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl GlobalController {
    /// Builds the tier for a deployment, rejecting out-of-range
    /// configuration. Flash crowds naming unknown populations are ignored.
    pub fn new(
        deployment: &Deployment,
        cfg: GlobalConfig,
        telemetry: TelemetryHandle,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let map = PopulationMap::build(deployment, cfg.grouping);
        let n_pops = deployment.pops.len();
        let n_populations = map.len();
        let mut backend: Option<Box<dyn SteeringBackend>> = match cfg.backend {
            Some(BackendKind::Dns { ttl_epochs }) => Some(Box::new(DnsBackend::new(ttl_epochs))),
            Some(BackendKind::Anycast { convergence_epochs }) => {
                Some(Box::new(AnycastBackend::new(convergence_epochs)))
            }
            None => None,
        };
        if let Some(b) = backend.as_mut() {
            b.init(n_populations, n_pops);
        }
        let mut holders: Vec<Vec<(u32, u32)>> =
            vec![Vec::new(); deployment.universe.prefixes.len()];
        for (pop_idx, pop) in deployment.pops.iter().enumerate() {
            for (point_idx, served) in pop.served.iter().enumerate() {
                if let Some(h) = holders.get_mut(served.prefix_idx as usize) {
                    h.push((pop_idx as u32, point_idx as u32));
                }
            }
        }
        let crowds = cfg
            .flash_crowds
            .iter()
            .filter_map(|spec| {
                map.population_named(&spec.population).map(|pi| {
                    (
                        pi,
                        spec.t_start_secs,
                        spec.t_start_secs.saturating_add(spec.duration_secs),
                        spec.multiplier,
                    )
                })
            })
            .collect();
        let mut pop_baseline = vec![0.0f64; n_pops];
        for population in &map.populations {
            for (j, b) in population.baseline_mbps.iter().enumerate() {
                if let Some(total) = pop_baseline.get_mut(j) {
                    *total += b.max(0.0);
                }
            }
        }
        Ok(GlobalController {
            away: vec![vec![0.0; n_pops]; n_populations],
            budgets: vec![0.0; n_pops],
            moved_last: vec![0.0; n_populations],
            crowds,
            holders,
            epoch: 0,
            n_pops,
            pop_baseline,
            last_report: vec![None; n_pops],
            hold: vec![vec![0; n_pops]; n_populations],
            last_dir: vec![vec![0; n_pops]; n_populations],
            guards: GuardSnapshot {
                expected_reports: n_pops,
                ..GuardSnapshot::default()
            },
            crashed: false,
            blast_cap_mbps: f64::INFINITY,
            cfg,
            map,
            backend,
            telemetry,
        })
    }

    /// The steering mechanism's name (`"dns"`, `"anycast"`, or
    /// `"shape_only"` when steering is disabled).
    pub fn backend_name(&self) -> &'static str {
        match self.backend.as_deref() {
            Some(b) => b.name(),
            None => "shape_only",
        }
    }

    /// The configuration the tier runs with.
    pub fn config(&self) -> &GlobalConfig {
        &self.cfg
    }

    /// The population partition.
    pub fn population_map(&self) -> &PopulationMap {
        &self.map
    }

    /// Epochs observed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when any population currently has demand steered away.
    pub fn is_active(&self) -> bool {
        self.away.iter().any(|row| row.iter().any(|f| *f > EPS))
    }

    /// The largest away-fraction any population has at `pop` — the
    /// successor of the prototype shifter's per-PoP shift fraction.
    pub fn away_fraction(&self, pop: PopId) -> f64 {
        let idx = pop.0 as usize;
        self.away
            .iter()
            .filter_map(|row| row.get(idx))
            .fold(0.0, |acc, f| acc.max(*f))
    }

    /// Current placement state per population, for reports and `efctl`.
    pub fn placements(&self) -> Vec<PlacementSummary> {
        self.map
            .populations
            .iter()
            .enumerate()
            .map(|(pi, p)| PlacementSummary {
                population: p.name.clone(),
                away: self.away.get(pi).cloned().unwrap_or_default(),
                moved_mbps: self.moved_last.get(pi).copied().unwrap_or(0.0),
                baseline_mbps: p.baseline_mbps.clone(),
            })
            .collect()
    }

    /// Applies scheduled flash crowds to offered demand: every demand
    /// point belonging to an active crowd's population is multiplied, at
    /// every PoP (the crowd raises the population's demand; the serving
    /// footprint splits it as usual).
    pub fn shape_demand(&self, t_secs: u64, demands: &mut [(PopId, Vec<DemandPoint>)]) {
        for &(pi, start, end, mult) in &self.crowds {
            if t_secs < start || t_secs >= end {
                continue;
            }
            for (_, points) in demands.iter_mut() {
                for point in points.iter_mut() {
                    let member = self
                        .map
                        .of_prefix
                        .get(point.prefix_idx as usize)
                        .is_some_and(|p| *p as usize == pi);
                    if member {
                        point.mbps *= mult;
                    }
                }
            }
        }
    }

    /// Moves steered-away demand onto other PoPs serving the same
    /// prefixes, within per-PoP detour budgets. Demand is conserved
    /// exactly: the fraction of a victim's moved demand that no budget
    /// accepts stays at the victim. Emits one [`PlacementRecord`] per
    /// (population, drained PoP) with demand in motion.
    pub fn place(&mut self, t_secs: u64, demands: &mut [(PopId, Vec<DemandPoint>)]) {
        let n_pops = self.n_pops;
        let n_populations = self.map.len();
        for m in &mut self.moved_last {
            *m = 0.0;
        }
        if !self.is_active() || n_pops == 0 {
            return;
        }
        // Map pop index → position in `demands` (callers usually pass
        // deployment order, but don't rely on it).
        let mut arm_of_pop: Vec<usize> = vec![demands.len(); n_pops];
        for (arm, (pop, _)) in demands.iter().enumerate() {
            if let Some(slot) = arm_of_pop.get_mut(pop.0 as usize) {
                *slot = arm;
            }
        }
        let mut remaining = self.budgets.clone();
        // Blast-radius cap: however wrong this epoch's inputs are, at most
        // this much demand moves before the next epoch's reports arrive.
        let total_offered: f64 = demands
            .iter()
            .map(|(_, pts)| pts.iter().map(|p| p.mbps.max(0.0)).sum::<f64>())
            .sum();
        let blast_cap = self.cfg.blast_radius_fraction * total_offered;
        let mut blast_remaining = blast_cap;
        let mut blast_capped = false;
        // Attribution, indexed [population][src] and [population][src][dst].
        let mut attempted = vec![0.0f64; n_populations * n_pops];
        let mut placed = vec![0.0f64; n_populations * n_pops];
        let mut granted = vec![0.0f64; n_populations * n_pops * n_pops];

        let mut victims: Vec<(usize, usize, usize, f64)> = Vec::new();
        let mut receivers: Vec<(usize, usize, usize, f64)> = Vec::new();
        let mut grants: Vec<f64> = Vec::new();
        for (prefix_idx, holders) in self.holders.iter().enumerate() {
            let Some(pi) = self.map.of_prefix.get(prefix_idx).map(|p| *p as usize) else {
                continue;
            };
            let Some(a_row) = self.away.get(pi) else {
                continue;
            };
            victims.clear();
            receivers.clear();
            let mut moved = 0.0f64;
            let mut total_w = 0.0f64;
            for &(pop_idx, point_idx) in holders {
                let (p, q) = (pop_idx as usize, point_idx as usize);
                let Some(&arm) = arm_of_pop.get(p) else {
                    continue;
                };
                let Some((_, points)) = demands.get(arm) else {
                    continue;
                };
                let Some(point) = points.get(q) else { continue };
                let away = a_row.get(p).copied().unwrap_or(0.0).clamp(0.0, 1.0);
                if away > EPS {
                    let contribution = point.mbps * away;
                    if contribution > EPS {
                        moved += contribution;
                        victims.push((arm, q, p, contribution));
                    }
                }
                // Receiver weight fades continuously with the cell's own
                // away-fraction: a fully withdrawn PoP receives nothing, a
                // lightly shifted one (decay residue, a transient blip)
                // stays usable. A hard "must be exactly at home" cutoff
                // regularly leaves *no* receivers, because per-PoP drop
                // blips sprinkle small away-fractions everywhere.
                let receiving = 1.0 - away;
                if receiving > EPS {
                    let budget = remaining.get(p).copied().unwrap_or(0.0).max(0.0);
                    if budget > EPS {
                        let w = budget * receiving;
                        total_w += w;
                        receivers.push((arm, q, p, w));
                    }
                }
            }
            if moved <= EPS {
                continue;
            }
            for &(_, _, src, c) in &victims {
                attempted[pi * n_pops + src] += c;
            }
            if total_w <= EPS {
                continue; // nowhere to place — demand stays and keeps hurting
            }
            // Grant each receiver its budget-proportional share, capped by
            // what is left of that PoP's budget.
            grants.clear();
            let mut total_granted = 0.0f64;
            for &(_, _, dst, w) in &receivers {
                let ideal = moved * w / total_w;
                let cap = remaining.get(dst).copied().unwrap_or(0.0).max(0.0);
                let g = ideal.min(cap);
                grants.push(g);
                total_granted += g;
            }
            if total_granted > blast_remaining {
                blast_capped = true;
                let scale = if total_granted > EPS {
                    (blast_remaining.max(0.0)) / total_granted
                } else {
                    0.0
                };
                for g in grants.iter_mut() {
                    *g *= scale;
                }
                total_granted *= scale;
            }
            if total_granted <= EPS {
                continue;
            }
            blast_remaining -= total_granted;
            // Victims lose exactly what receivers gain, proportionally to
            // their contribution — conservation is exact by construction.
            let scale = total_granted / moved;
            for &(arm, q, src, c) in &victims {
                if let Some((_, points)) = demands.get_mut(arm) {
                    if let Some(point) = points.get_mut(q) {
                        point.mbps = (point.mbps - c * scale).max(0.0);
                    }
                }
                placed[pi * n_pops + src] += c * scale;
            }
            for (ri, &(arm, q, dst, _)) in receivers.iter().enumerate() {
                let g = grants.get(ri).copied().unwrap_or(0.0);
                if g <= EPS {
                    continue;
                }
                if let Some((_, points)) = demands.get_mut(arm) {
                    if let Some(point) = points.get_mut(q) {
                        point.mbps += g;
                    }
                }
                if let Some(r) = remaining.get_mut(dst) {
                    *r -= g;
                }
                for &(_, _, src, c) in &victims {
                    granted[(pi * n_pops + src) * n_pops + dst] += g * c / moved;
                }
            }
        }

        // Roll up per-population totals and emit provenance.
        self.guards.blast_capped = blast_capped;
        self.blast_cap_mbps = blast_cap;
        let now_ms = t_secs.saturating_mul(1000);
        for pi in 0..n_populations {
            let mut population_moved = 0.0f64;
            for src in 0..n_pops {
                let att = attempted[pi * n_pops + src];
                if att <= EPS {
                    continue;
                }
                let plc = placed[pi * n_pops + src];
                population_moved += plc;
                if self.telemetry.enabled() {
                    self.emit_placement(pi, src, plc, &granted, &remaining, now_ms);
                }
            }
            if let Some(m) = self.moved_last.get_mut(pi) {
                *m = population_moved;
            }
            if self.telemetry.enabled() && population_moved > EPS {
                if let Some(p) = self.map.populations.get(pi) {
                    self.telemetry
                        .gauge(&format!("global.{}.moved_mbps", p.name), population_moved);
                    let away_max = self
                        .away
                        .get(pi)
                        .map(|row| row.iter().fold(0.0f64, |a, f| a.max(*f)))
                        .unwrap_or(0.0);
                    self.telemetry
                        .gauge(&format!("global.{}.away_max", p.name), away_max);
                }
            }
        }
    }

    fn emit_placement(
        &self,
        pi: usize,
        src: usize,
        moved_mbps: f64,
        granted: &[f64],
        remaining: &[f64],
        now_ms: u64,
    ) {
        let Some(population) = self.map.populations.get(pi) else {
            return;
        };
        let n_pops = self.n_pops;
        let mut targets = Vec::new();
        let mut rejected = Vec::new();
        for dst in 0..n_pops {
            if dst == src {
                continue;
            }
            let g = granted
                .get((pi * n_pops + src) * n_pops + dst)
                .copied()
                .unwrap_or(0.0);
            if g > EPS {
                targets.push(PlacementTarget {
                    pop: dst as u16,
                    granted_mbps: g,
                });
                continue;
            }
            let baseline = population.baseline_mbps.get(dst).copied().unwrap_or(0.0);
            let away = self
                .away
                .get(pi)
                .and_then(|row| row.get(dst))
                .copied()
                .unwrap_or(0.0);
            let stale_age = self
                .report_age(dst)
                .filter(|age| *age >= self.cfg.staleness_horizon_epochs.max(1));
            let reason = if baseline <= EPS {
                PlacementRejectReason::NoFootprint
            } else if away > SOURCE_SHIFTED_AWAY {
                PlacementRejectReason::SourceShifted
            } else if let Some(age_epochs) = stale_age {
                // The budget is zero because the PoP went quiet, not
                // because it reported being full.
                PlacementRejectReason::StaleReport { age_epochs }
            } else {
                PlacementRejectReason::NoHeadroom {
                    budget_mbps: remaining.get(dst).copied().unwrap_or(0.0).max(0.0),
                }
            };
            rejected.push(RejectedTarget {
                pop: dst as u16,
                reason,
            });
        }
        let verdict = if moved_mbps > EPS {
            PlacementVerdict::Applied
        } else {
            PlacementVerdict::NoFeasibleTarget
        };
        let mut guards = Vec::new();
        if self.crashed {
            guards.push(PlacementGuard::ControllerFrozen);
        } else if self.guards.fail_static {
            guards.push(PlacementGuard::FailStatic);
        }
        if self.guards.blast_capped {
            guards.push(PlacementGuard::BlastRadiusCapped {
                cap_mbps: self.blast_cap_mbps,
            });
        }
        let epochs_left = self
            .hold
            .get(pi)
            .and_then(|row| row.get(src))
            .copied()
            .unwrap_or(0);
        if epochs_left > 0 {
            guards.push(PlacementGuard::HoldDown { epochs_left });
        }
        let record = PlacementRecord {
            population: population.name.clone(),
            backend: self.backend_name().to_string(),
            trigger: "overload".to_string(),
            from_pop: src as u16,
            away_fraction: self
                .away
                .get(pi)
                .and_then(|row| row.get(src))
                .copied()
                .unwrap_or(0.0),
            moved_mbps,
            targets,
            rejected,
            verdict,
            guards,
        };
        self.telemetry.placement(src as u16, now_ms, &record);
    }

    /// Age of PoP `j`'s freshest report in epochs (0 = stamped in the most
    /// recently observed epoch), or `None` if it never reported.
    fn report_age(&self, j: usize) -> Option<u64> {
        self.last_report
            .get(j)
            .and_then(|r| r.as_ref())
            .map(|r| self.epoch.saturating_sub(1).saturating_sub(r.epoch))
    }

    /// Usable-budget multiplier for a report of the given age: linear
    /// decay from 1 at age 0 to 0 at the staleness horizon. The tier
    /// steadily stops trusting headroom it cannot re-verify.
    fn freshness(&self, age: u64) -> f64 {
        let h = self.cfg.staleness_horizon_epochs.max(1);
        1.0 - (age.min(h) as f64) / (h as f64)
    }

    /// The guard verdicts of the last epoch.
    pub fn guard_snapshot(&self) -> GuardSnapshot {
        self.guards
    }

    /// Per-PoP detour budgets from the last `observe`, Mbps.
    pub fn detour_budgets(&self) -> &[f64] {
        &self.budgets
    }

    /// Demand moved by the last placement pass, all populations, Mbps.
    pub fn moved_last_mbps(&self) -> f64 {
        self.moved_last.iter().sum()
    }

    /// Per-PoP baseline demand (summed over populations), Mbps — the
    /// reference the plausibility clamp bounds budgets against.
    pub fn pop_baseline(&self) -> &[f64] {
        &self.pop_baseline
    }

    /// An epoch during which the tier itself is down. Placements, budgets,
    /// away-fractions, and backend state all freeze — issued DNS maps and
    /// anycast announcements outlive the controller that issued them, so
    /// the world keeps the last placement until the tier returns. Only the
    /// epoch counter advances (report ages keep growing, so budgets pick
    /// up decayed on recovery rather than snapping back to stale values).
    pub fn crash_epoch(&mut self) {
        self.epoch = self.epoch.saturating_add(1);
        self.crashed = true;
        self.guards.fail_static = true;
        self.guards.frozen_epochs = self.guards.frozen_epochs.saturating_add(1);
        self.guards.delivered_reports = 0;
        self.guards.flips = 0;
        self.guards.suppressed_restores = 0;
        self.refresh_staleness_counters();
    }

    fn refresh_staleness_counters(&mut self) {
        let mut stale = 0usize;
        let mut max_age = 0u64;
        for j in 0..self.n_pops {
            match self.report_age(j) {
                Some(age) => {
                    if age >= 1 {
                        stale += 1;
                    }
                    max_age = max_age.max(age);
                }
                None => {
                    // Never reported: stale only once epochs have passed.
                    if self.epoch > 0 {
                        stale += 1;
                        max_age = max_age.max(self.epoch);
                    }
                }
            }
        }
        self.guards.stale_pops = stale;
        self.guards.max_report_age = max_age;
    }

    /// Feeds the epoch's per-PoP reports, `None` where a PoP's report did
    /// not arrive. Degradation guards run first:
    ///
    /// * budgets derive from the freshest report each PoP ever sent,
    ///   decayed linearly with the report's age and clamped to
    ///   `budget_plausibility ×` the PoP's own baseline demand;
    /// * below `fail_static_quorum` delivered reports the epoch is
    ///   *fail-static*: every away-fraction freezes, no move is initiated;
    /// * a cell whose report aged past the staleness horizon is skipped
    ///   (frozen) rather than steered on fiction;
    /// * restores are suppressed while the cell's hold-down is armed — a
    ///   drain re-arms it — so placements cannot thrash on alternating
    ///   reports. Drains are never suppressed: shedding load off a sick
    ///   PoP is always the safe direction.
    pub fn observe(&mut self, reports: &[Option<PopReport>]) {
        self.crashed = false;
        let mut delivered = 0usize;
        for j in 0..self.n_pops {
            if let Some(report) = reports.get(j).and_then(|r| r.as_ref()) {
                delivered += 1;
                let keep = self
                    .last_report
                    .get(j)
                    .and_then(|r| r.as_ref())
                    .is_some_and(|old| old.epoch > report.epoch);
                if !keep {
                    if let Some(slot) = self.last_report.get_mut(j) {
                        *slot = Some(*report);
                    }
                }
            }
        }
        self.epoch = self.epoch.saturating_add(1);

        let mut clamped = false;
        for j in 0..self.n_pops {
            let budget = match self.last_report.get(j).and_then(|r| r.as_ref()) {
                Some(report) => {
                    let age = self.report_age(j).unwrap_or(0);
                    let raw = (report.headroom_mbps * self.cfg.headroom_safety).max(0.0)
                        * self.freshness(age);
                    let cap = (self.cfg.budget_plausibility
                        * self.pop_baseline.get(j).copied().unwrap_or(0.0))
                    .max(0.0);
                    if raw > cap {
                        clamped = true;
                    }
                    raw.min(cap)
                }
                None => 0.0,
            };
            if let Some(slot) = self.budgets.get_mut(j) {
                *slot = budget;
            }
        }
        self.guards.plausibility_clamped = clamped;

        let fail_static = (delivered as f64) < self.cfg.fail_static_quorum * (self.n_pops as f64);
        self.guards.delivered_reports = delivered;
        self.guards.fail_static = fail_static;
        self.guards.flips = 0;
        self.guards.suppressed_restores = 0;
        self.refresh_staleness_counters();
        if fail_static {
            self.guards.frozen_epochs = self.guards.frozen_epochs.saturating_add(1);
            return; // hold placements; never initiate a move on a dark map
        }

        let tuning = ShiftTuning {
            step: self.cfg.step,
            max_shift: self.cfg.max_shift,
            decay: self.cfg.decay,
        };
        let horizon = self.cfg.staleness_horizon_epochs.max(1);
        let hold_down = self.cfg.hold_down_epochs;
        let mut flips = 0u64;
        let mut suppressed = 0u64;
        let Some(backend) = self.backend.as_mut() else {
            return;
        };
        for (pi, population) in self.map.populations.iter().enumerate() {
            for j in 0..self.n_pops {
                let baseline = population.baseline_mbps.get(j).copied().unwrap_or(0.0);
                if baseline <= 0.0 {
                    continue; // no footprint — nothing of this population here
                }
                if reports.get(j).and_then(|r| r.as_ref()).is_none() {
                    continue; // nothing delivered this epoch — cell freezes
                }
                let Some(report) = self.last_report.get(j).and_then(|r| r.as_ref()) else {
                    continue;
                };
                let age = self.epoch.saturating_sub(1).saturating_sub(report.epoch);
                if age >= horizon {
                    continue; // content too old to act on — cell freezes
                }
                let obs = CellObservation {
                    dropped_mbps: report.dropped_mbps.max(0.0),
                    offered_mbps: report.offered_mbps.max(0.0),
                    headroom_mbps: report.headroom_mbps,
                    baseline_mbps: baseline,
                };
                let fraction = backend.update(pi, j, &obs, &tuning).clamp(0.0, 1.0);
                let Some(cell) = self.away.get_mut(pi).and_then(|row| row.get_mut(j)) else {
                    continue;
                };
                let dir: i8 = if fraction > *cell + EPS {
                    1
                } else if fraction < *cell - EPS {
                    -1
                } else {
                    0
                };
                if dir == -1 {
                    // Restore: suppressed while the hold-down is armed.
                    let held = self
                        .hold
                        .get_mut(pi)
                        .and_then(|row| row.get_mut(j))
                        .filter(|h| **h > 0);
                    if let Some(h) = held {
                        *h -= 1;
                        suppressed += 1;
                        continue;
                    }
                }
                if dir == 1 {
                    if let Some(h) = self.hold.get_mut(pi).and_then(|row| row.get_mut(j)) {
                        *h = hold_down;
                    }
                }
                if dir != 0 {
                    let prev = self.last_dir.get_mut(pi).and_then(|row| row.get_mut(j));
                    if let Some(prev) = prev {
                        if *prev != 0 && *prev != dir {
                            flips += 1;
                        }
                        *prev = dir;
                    }
                    *cell = fraction;
                }
            }
        }
        self.guards.flips = flips;
        self.guards.suppressed_restores = suppressed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_topology::{generate, GenConfig};
    use proptest::prelude::*;

    fn deployment(pops: u16) -> Deployment {
        generate(&GenConfig {
            n_pops: pops as usize,
            ..GenConfig::small(3)
        })
    }

    fn demands_for(dep: &Deployment) -> Vec<(PopId, Vec<DemandPoint>)> {
        dep.pops
            .iter()
            .map(|pop| {
                (
                    pop.id,
                    pop.served
                        .iter()
                        .map(|s| DemandPoint {
                            prefix_idx: s.prefix_idx,
                            mbps: s.avg_mbps,
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn total(demands: &[(PopId, Vec<DemandPoint>)]) -> f64 {
        demands
            .iter()
            .map(|(_, pts)| pts.iter().map(|p| p.mbps).sum::<f64>())
            .sum()
    }

    fn pop_total(demands: &[(PopId, Vec<DemandPoint>)], pop: PopId) -> f64 {
        demands
            .iter()
            .find(|(p, _)| *p == pop)
            .map(|(_, pts)| pts.iter().map(|p| p.mbps).sum())
            .unwrap()
    }

    /// Reports for epoch `epoch` where `victim` is overloaded and everyone
    /// else has abundant headroom, all delivered and freshly stamped.
    fn reports(
        dep: &Deployment,
        victim: PopId,
        headroom: f64,
        epoch: u64,
    ) -> Vec<Option<PopReport>> {
        dep.pops
            .iter()
            .map(|p| {
                if p.id == victim {
                    // Dropping half of everything offered: severe enough
                    // that every backend reacts at full tilt.
                    Some(PopReport {
                        residual_overloaded: true,
                        dropped_mbps: 1e9,
                        offered_mbps: 2e9,
                        headroom_mbps: 0.0,
                        epoch,
                    })
                } else {
                    Some(PopReport {
                        residual_overloaded: false,
                        dropped_mbps: 0.0,
                        offered_mbps: 1e9,
                        headroom_mbps: headroom,
                        epoch,
                    })
                }
            })
            .collect()
    }

    /// A controller with a generous plausibility cap, so tests that drive
    /// absurd headroom through the budgets still exercise the old paths.
    fn controller(dep: &Deployment, cfg: GlobalConfig) -> GlobalController {
        GlobalController::new(dep, cfg, TelemetryHandle::disabled()).unwrap()
    }

    #[test]
    fn dns_steering_drains_an_overloaded_pop() {
        let dep = deployment(4);
        let mut ctl = controller(&dep, GlobalConfig::dns(1));
        let victim = PopId(0);
        for e in 0..6 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        assert!(ctl.is_active());
        assert!((ctl.away_fraction(victim) - 0.30).abs() < 1e-9);
        let mut demands = demands_for(&dep);
        let before_total = total(&demands);
        let before_victim = pop_total(&demands, victim);
        ctl.place(3600, &mut demands);
        assert!((total(&demands) - before_total).abs() < 1e-6);
        let after_victim = pop_total(&demands, victim);
        assert!(after_victim < before_victim * 0.75, "{after_victim}");
        let moved: f64 = ctl.placements().iter().map(|p| p.moved_mbps).sum();
        assert!(moved > 0.0);
    }

    #[test]
    fn place_respects_detour_budgets() {
        let dep = deployment(3);
        let mut ctl = controller(&dep, GlobalConfig::dns(1));
        let victim = PopId(0);
        // Zero headroom anywhere: nothing may be placed.
        for e in 0..6 {
            ctl.observe(&reports(&dep, victim, 0.0, e));
        }
        let mut demands = demands_for(&dep);
        let snapshot = demands.clone();
        ctl.place(0, &mut demands);
        for ((pa, a), (pb, b)) in demands.iter().zip(snapshot.iter()) {
            assert_eq!(pa, pb);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x.mbps - y.mbps).abs() < 1e-9);
            }
        }
        // A tiny budget is consumed but never exceeded.
        for e in 6..12 {
            ctl.observe(&reports(&dep, victim, 10.0, e));
        }
        let mut demands = demands_for(&dep);
        let before: Vec<f64> = dep.pops.iter().map(|p| pop_total(&demands, p.id)).collect();
        ctl.place(0, &mut demands);
        for (idx, pop) in dep.pops.iter().enumerate() {
            if pop.id == victim {
                continue;
            }
            let gained = pop_total(&demands, pop.id) - before[idx];
            // budget = headroom × safety = 10 × 0.8
            assert!(gained <= 8.0 + 1e-6, "pop {idx} gained {gained}");
        }
    }

    #[test]
    fn shape_only_never_steers_but_shapes_crowds() {
        let dep = deployment(3);
        let cfg = GlobalConfig::shape_only().with_flash_crowd(crate::config::FlashCrowdSpec {
            population: "NA".into(),
            t_start_secs: 100,
            duration_secs: 100,
            multiplier: 2.0,
        });
        let mut ctl = controller(&dep, cfg);
        let victim = PopId(0);
        for e in 0..10 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        assert!(!ctl.is_active());
        assert_eq!(ctl.backend_name(), "shape_only");
        // The crowd multiplies exactly the NA population's demand.
        let na = ctl.population_map().population_named("NA").unwrap();
        let mut demands = demands_for(&dep);
        let before = total(&demands);
        let na_before: f64 = demands
            .iter()
            .flat_map(|(_, pts)| pts.iter())
            .filter(|p| ctl.population_map().of_prefix[p.prefix_idx as usize] as usize == na)
            .map(|p| p.mbps)
            .sum();
        ctl.shape_demand(150, &mut demands);
        assert!((total(&demands) - (before + na_before)).abs() < 1e-6);
        // Outside the window: identity.
        let snapshot = demands.clone();
        ctl.shape_demand(300, &mut demands);
        assert_eq!(demands, snapshot);
    }

    #[test]
    fn placement_records_carry_provenance() {
        let dep = deployment(3);
        let (telemetry, sink) = TelemetryHandle::memory();
        let mut ctl = GlobalController::new(&dep, GlobalConfig::dns(1), telemetry).unwrap();
        let victim = PopId(1);
        for e in 0..6 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        let mut demands = demands_for(&dep);
        ctl.place(7200, &mut demands);
        let placements = sink.placements();
        assert!(!placements.is_empty());
        for (pop, now_ms, record) in &placements {
            assert_eq!(*pop, victim.0);
            assert_eq!(*now_ms, 7_200_000);
            assert_eq!(record.backend, "dns");
            assert!(record.applied());
            assert!(!record.targets.is_empty());
            assert!(record.moved_mbps > 0.0);
            assert!(record.away_fraction > 0.0);
        }
    }

    #[test]
    fn anycast_moves_whole_population_after_convergence() {
        let dep = deployment(4);
        let mut ctl = controller(&dep, GlobalConfig::anycast(2));
        let victim = PopId(0);
        // Decision + convergence epochs.
        for e in 0..3 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        // Every population served at the victim is fully withdrawn.
        assert_eq!(ctl.away_fraction(victim), 1.0);
        let mut demands = demands_for(&dep);
        let before = total(&demands);
        ctl.place(0, &mut demands);
        assert!((total(&demands) - before).abs() < 1e-6);
        // The victim keeps only demand no budget accepted (here: none).
        assert!(pop_total(&demands, victim) < 1e-6);
    }

    #[test]
    fn overload_signal_needs_offered_demand() {
        let drops_at_idle = PopReport {
            dropped_mbps: 5.0,
            offered_mbps: 0.0,
            ..PopReport::default()
        };
        assert!(!drops_at_idle.overloaded());
        let real = PopReport {
            dropped_mbps: 5.0,
            offered_mbps: 100.0,
            ..PopReport::default()
        };
        assert!(real.overloaded());
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let dep = deployment(2);
        let cfg = GlobalConfig {
            headroom_safety: f64::NAN,
            ..GlobalConfig::default()
        };
        assert!(GlobalController::new(&dep, cfg, TelemetryHandle::disabled()).is_err());
    }

    #[test]
    fn stale_reports_decay_budgets_to_zero() {
        let dep = deployment(3);
        let mut cfg = GlobalConfig::dns(1);
        cfg.staleness_horizon_epochs = 4;
        cfg.budget_plausibility = 1e12; // isolate the freshness decay
        let mut ctl = controller(&dep, cfg);
        let victim = PopId(0);
        ctl.observe(&reports(&dep, victim, 1000.0, 0));
        let fresh: Vec<f64> = ctl.detour_budgets().to_vec();
        assert!(fresh.iter().any(|b| (*b - 800.0).abs() < 1e-9));
        // Reports stop arriving: budgets shrink linearly, hitting zero at
        // the horizon.
        let dark: Vec<Option<PopReport>> = vec![None; dep.pops.len()];
        let mut prev = fresh.clone();
        for step in 1..=4u64 {
            ctl.observe(&dark);
            for (j, b) in ctl.detour_budgets().iter().enumerate() {
                assert!(*b <= prev[j] + 1e-9, "budget grew while dark");
                if fresh[j] > 0.0 {
                    let expect = fresh[j] * (1.0 - step.min(4) as f64 / 4.0);
                    assert!(
                        (b - expect).abs() < 1e-6,
                        "step {step} pop {j}: {b} vs {expect}"
                    );
                }
            }
            prev = ctl.detour_budgets().to_vec();
        }
        assert!(ctl.detour_budgets().iter().all(|b| *b == 0.0));
        let snap = ctl.guard_snapshot();
        assert_eq!(snap.stale_pops, dep.pops.len());
        assert_eq!(snap.max_report_age, 4);
    }

    #[test]
    fn fail_static_freezes_away_fractions() {
        let dep = deployment(4);
        let mut ctl = controller(&dep, GlobalConfig::dns(1));
        let victim = PopId(0);
        // Majority of reports missing from the start: the tier must never
        // initiate a move, however loudly the one delivered report screams.
        for e in 0..6 {
            let mut r = reports(&dep, victim, 1e9, e);
            for (j, slot) in r.iter_mut().enumerate() {
                if j != victim.0 as usize {
                    *slot = None;
                }
            }
            ctl.observe(&r);
            assert!(ctl.guard_snapshot().fail_static);
        }
        assert!(!ctl.is_active(), "fail-static initiated a move");
        assert_eq!(ctl.guard_snapshot().frozen_epochs, 6);
        // Once active, losing quorum freezes (not resets) the placement.
        for e in 6..12 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        let away = ctl.away_fraction(victim);
        assert!(away > 0.0);
        let dark: Vec<Option<PopReport>> = vec![None; dep.pops.len()];
        ctl.observe(&dark);
        assert!(ctl.guard_snapshot().fail_static);
        assert_eq!(ctl.away_fraction(victim), away, "away moved while dark");
    }

    #[test]
    fn crash_epochs_freeze_everything() {
        let dep = deployment(3);
        let mut ctl = controller(&dep, GlobalConfig::dns(1));
        let victim = PopId(0);
        for e in 0..6 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        let away = ctl.away_fraction(victim);
        let budgets = ctl.detour_budgets().to_vec();
        let epoch = ctl.epoch();
        for _ in 0..3 {
            ctl.crash_epoch();
        }
        assert_eq!(ctl.away_fraction(victim), away);
        assert_eq!(ctl.detour_budgets(), &budgets[..]);
        assert_eq!(ctl.epoch(), epoch + 3);
        let snap = ctl.guard_snapshot();
        assert!(snap.fail_static);
        assert_eq!(snap.frozen_epochs, 3);
        // Recovery: fresh reports bring the backend right back.
        ctl.observe(&reports(&dep, victim, 1e9, epoch + 3));
        assert!(!ctl.guard_snapshot().fail_static);
    }

    #[test]
    fn plausibility_clamp_bounds_lied_headroom() {
        let dep = deployment(3);
        let mut ctl = controller(&dep, GlobalConfig::dns(1));
        let victim = PopId(0);
        // An exporter claiming absurd headroom gets a budget no larger
        // than its own baseline demand (budget_plausibility = 1.0).
        ctl.observe(&reports(&dep, victim, 1e18, 0));
        for (j, budget) in ctl.detour_budgets().iter().enumerate() {
            if j == victim.0 as usize {
                continue;
            }
            let cap = ctl
                .population_map()
                .populations
                .iter()
                .map(|p| p.baseline_mbps.get(j).copied().unwrap_or(0.0))
                .sum::<f64>();
            assert!(*budget <= cap + 1e-9, "pop {j}: {budget} > cap {cap}");
            assert!(*budget > 0.0);
        }
    }

    #[test]
    fn blast_radius_caps_per_epoch_movement() {
        let dep = deployment(4);
        let mut cfg = GlobalConfig::dns(1);
        cfg.blast_radius_fraction = 0.02;
        let mut ctl = controller(&dep, cfg);
        let victim = PopId(0);
        for e in 0..12 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        let mut demands = demands_for(&dep);
        let before_total = total(&demands);
        ctl.place(0, &mut demands);
        assert!((total(&demands) - before_total).abs() < 1e-6);
        let moved: f64 = ctl.placements().iter().map(|p| p.moved_mbps).sum();
        assert!(moved > 0.0);
        assert!(
            moved <= 0.02 * before_total + 1e-6,
            "moved {moved} exceeds cap {}",
            0.02 * before_total
        );
        assert!(ctl.guard_snapshot().blast_capped);
    }

    #[test]
    fn hold_down_suppresses_restores_not_drains() {
        let dep = deployment(3);
        let mut cfg = GlobalConfig::dns(1);
        cfg.hold_down_epochs = 3;
        cfg.decay = 0.05;
        let mut ctl = controller(&dep, cfg);
        let victim = PopId(0);
        for e in 0..6 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        let peak = ctl.away_fraction(victim);
        assert!(peak > 0.0);
        // Healthy reports now: the backend wants to restore, but the first
        // three attempts per cell are held down.
        let healthy = |e: u64| reports(&dep, PopId(u16::MAX), 1e9, e);
        for (i, e) in (6..9u64).enumerate() {
            ctl.observe(&healthy(e));
            assert_eq!(
                ctl.away_fraction(victim),
                peak,
                "restore applied during hold-down epoch {i}"
            );
            assert!(ctl.guard_snapshot().suppressed_restores > 0);
        }
        ctl.observe(&healthy(9));
        assert!(
            ctl.away_fraction(victim) < peak,
            "hold-down never released the restore"
        );
    }

    #[test]
    fn guard_provenance_reaches_placement_records() {
        let dep = deployment(3);
        let (telemetry, sink) = TelemetryHandle::memory();
        let mut cfg = GlobalConfig::dns(1);
        cfg.blast_radius_fraction = 0.02;
        let mut ctl = GlobalController::new(&dep, cfg, telemetry).unwrap();
        let victim = PopId(0);
        for e in 0..12 {
            ctl.observe(&reports(&dep, victim, 1e9, e));
        }
        let mut demands = demands_for(&dep);
        ctl.place(0, &mut demands);
        let placements = sink.placements();
        assert!(!placements.is_empty());
        assert!(placements.iter().any(|(_, _, r)| r
            .guards
            .iter()
            .any(|g| matches!(g, ef_telemetry::PlacementGuard::BlastRadiusCapped { .. }))));
    }

    proptest! {
        /// Whatever subset of reports arrives, however stale their stamps:
        /// no PoP ever receives more than its budget, demand is conserved,
        /// and an epoch below the report quorum never initiates a move.
        #[test]
        fn prop_guards_bound_placement(
            seed_pops in 2u16..6,
            victim in 0u16..6,
            epochs in 1usize..12,
            headroom in 0.0f64..100_000.0,
            mask in proptest::collection::vec(any::<bool>(), 12),
            stale_by in 0u64..8,
        ) {
            let dep = deployment(seed_pops);
            let victim = PopId(victim % seed_pops);
            let mut ctl = controller(&dep, GlobalConfig::dns(2));
            for e in 0..epochs {
                let stamp = (e as u64).saturating_sub(stale_by);
                let mut r = reports(&dep, victim, headroom, stamp);
                for (j, slot) in r.iter_mut().enumerate() {
                    if !mask.get((e + j) % mask.len()).copied().unwrap_or(true) {
                        *slot = None;
                    }
                }
                let was_active = ctl.is_active();
                ctl.observe(&r);
                if ctl.guard_snapshot().fail_static && !was_active {
                    prop_assert!(!ctl.is_active(), "fail-static initiated a move");
                }
            }
            let budgets = ctl.detour_budgets().to_vec();
            let mut demands = demands_for(&dep);
            let before_total = total(&demands);
            let before: Vec<f64> =
                dep.pops.iter().map(|p| pop_total(&demands, p.id)).collect();
            ctl.place(0, &mut demands);
            prop_assert!((total(&demands) - before_total).abs() < 1e-6);
            for (idx, pop) in dep.pops.iter().enumerate() {
                let gained = pop_total(&demands, pop.id) - before[idx];
                prop_assert!(
                    gained <= budgets[idx] + 1e-6,
                    "pop {} gained {} over budget {}", idx, gained, budgets[idx]
                );
            }
        }
    }

    proptest! {
        /// DNS placement conserves total demand for any overload pattern,
        /// any headroom distribution, and any number of epochs.
        #[test]
        fn prop_dns_place_conserves_demand(
            seed_pops in 2u16..6,
            victim in 0u16..6,
            epochs in 1usize..12,
            headroom in 0.0f64..100_000.0,
        ) {
            let dep = deployment(seed_pops);
            let victim = PopId(victim % seed_pops);
            let mut ctl = controller(&dep, GlobalConfig::dns(2));
            for e in 0..epochs {
                ctl.observe(&reports(&dep, victim, headroom, e as u64));
            }
            let mut demands = demands_for(&dep);
            let before = total(&demands);
            ctl.place(0, &mut demands);
            prop_assert!((total(&demands) - before).abs() < 1e-6);
            // No demand point ever goes negative.
            for (_, pts) in &demands {
                for p in pts {
                    prop_assert!(p.mbps >= 0.0);
                }
            }
        }
    }
}
