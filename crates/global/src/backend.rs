//! Pluggable steering backends: how a placement decision becomes traffic.
//!
//! The controller decides *that* a population should leave a PoP; a
//! [`SteeringBackend`] models *how fast and how completely* that decision
//! takes effect. Two mechanisms bracket the space:
//!
//! * [`DnsBackend`] — fractional and gradual. The map can move any
//!   fraction of a population, but resolver caches mean an issued change
//!   only converges over a TTL horizon.
//! * [`AnycastBackend`] — atomic and delayed. Withdrawing an announcement
//!   moves the whole catchment at once, a BGP-convergence delay after the
//!   decision. There is never a fractional state.
//!
//! Both gate the *return* path on reported headroom: a population only
//! flows back once its former PoP has room for the population's whole
//! baseline again. Without that gate a blackout oscillates — drain
//! empties the PoP, the empty PoP looks healthy, traffic returns, the PoP
//! overloads, drain restarts.

/// Controller tunables a backend's update rule may use.
#[derive(Debug, Clone, Copy)]
pub struct ShiftTuning {
    /// Shift increment per overloaded epoch.
    pub step: f64,
    /// Ceiling on a fractional backend's away-fraction.
    pub max_shift: f64,
    /// Decay per healthy epoch.
    pub decay: f64,
}

/// One epoch's observation of a (population, PoP) cell.
///
/// The steering trigger is *actual drops*, not residual overload:
/// per-PoP Edge Fabric routinely reports transient residual overload it
/// then relieves itself, and a global tier that reacts to every such
/// blip sheds a little from everywhere — leaving no healthy PoPs to
/// receive anything. Users move only once the PoP is demonstrably
/// losing traffic, i.e. the layer below has already lost.
#[derive(Debug, Clone, Copy)]
pub struct CellObservation {
    /// Traffic the PoP dropped this epoch, Mbps.
    pub dropped_mbps: f64,
    /// Total demand offered to the PoP this epoch, Mbps.
    pub offered_mbps: f64,
    /// The PoP's reported spare egress capacity, Mbps.
    pub headroom_mbps: f64,
    /// This population's average demand at this PoP, Mbps.
    pub baseline_mbps: f64,
}

impl CellObservation {
    /// Fraction of the PoP's offered demand being dropped — the shed
    /// fraction that would have made this epoch loss-free.
    pub fn needed_shed(&self) -> f64 {
        if self.offered_mbps > 0.0 {
            (self.dropped_mbps / self.offered_mbps).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// A steering mechanism. `update` is called once per (population, PoP)
/// cell per epoch, in deterministic index order, and returns the cell's
/// new away-fraction in `[0, 1]`.
pub trait SteeringBackend: Send {
    /// Short mechanism name for telemetry and reports.
    fn name(&self) -> &'static str;
    /// Sizes internal state; called once before the first `update`.
    fn init(&mut self, populations: usize, pops: usize);
    /// Feeds one epoch's observation; returns the new away-fraction.
    fn update(
        &mut self,
        population: usize,
        pop: usize,
        obs: &CellObservation,
        tuning: &ShiftTuning,
    ) -> f64;
}

/// DNS-map steering: fractional targets, TTL-delayed convergence.
#[derive(Debug)]
pub struct DnsBackend {
    ttl_epochs: u64,
    /// Issued away-fraction per (population, pop) — what the map says.
    target: Vec<Vec<f64>>,
    /// Observed away-fraction — what resolvers have picked up so far.
    current: Vec<Vec<f64>>,
}

impl DnsBackend {
    /// A DNS backend whose issued changes converge over `ttl_epochs`.
    pub fn new(ttl_epochs: u64) -> Self {
        DnsBackend {
            ttl_epochs: ttl_epochs.max(1),
            target: Vec::new(),
            current: Vec::new(),
        }
    }
}

impl SteeringBackend for DnsBackend {
    fn name(&self) -> &'static str {
        "dns"
    }

    fn init(&mut self, populations: usize, pops: usize) {
        self.target = vec![vec![0.0; pops]; populations];
        self.current = vec![vec![0.0; pops]; populations];
    }

    fn update(
        &mut self,
        population: usize,
        pop: usize,
        obs: &CellObservation,
        tuning: &ShiftTuning,
    ) -> f64 {
        let Some(target) = self
            .target
            .get_mut(population)
            .and_then(|row| row.get_mut(pop))
        else {
            return 0.0;
        };
        let needed = obs.needed_shed();
        if needed > 0.0 {
            // Harm-proportional ramp: never issue more than `step` per
            // epoch, and never more than the loss actually calls for — a
            // 0.1% drop blip must not shed 10% of a healthy PoP.
            *target = (*target + needed.min(tuning.step)).min(tuning.max_shift);
        } else if *target > 0.0 && obs.headroom_mbps > obs.baseline_mbps {
            // Only walk the map back once the PoP could absorb this
            // population's whole baseline again.
            *target = (*target - tuning.decay).max(0.0);
        }
        let issued = *target;
        let Some(current) = self
            .current
            .get_mut(population)
            .and_then(|row| row.get_mut(pop))
        else {
            return 0.0;
        };
        // Resolver caches expire uniformly over the TTL horizon: each
        // epoch closes 1/ttl of the remaining gap.
        *current += (issued - *current) / self.ttl_epochs as f64;
        if (*current - issued).abs() < 1e-6 {
            *current = issued;
        }
        if issued == 0.0 && *current < 1e-3 {
            // The stragglers still on stale cache entries are <0.1% of
            // the population — call the withdrawal converged.
            *current = 0.0;
        }
        current.clamp(0.0, 1.0)
    }
}

/// Anycast withdraws from a PoP only when the PoP is dropping more than
/// this fraction of everything offered to it. Whole-population cutover
/// is a blunt instrument; firing it on transient blips (a receiver
/// absorbing a fresh cutover while its Edge Fabric re-detours) turns one
/// failure into a network-wide withdrawal cascade.
const ANYCAST_CUT_FRACTION: f64 = 0.25;

/// After a transition lands, the cell holds its state for this many
/// convergence periods before the opposite transition may be scheduled.
/// Without hold-down, a restored population overloads the PoP it
/// returns to and immediately withdraws again — route flapping, the
/// classic anycast failure mode.
const ANYCAST_HOLD_PERIODS: u64 = 3;

#[derive(Debug, Clone, Copy, Default)]
struct AnycastCell {
    /// The announcement toward this PoP is currently withdrawn.
    withdrawn: bool,
    /// An in-flight transition: (epochs until effect, end state).
    pending: Option<(u64, bool)>,
    /// Hold-down epochs left before another transition may be scheduled.
    hold: u64,
}

/// Anycast steering: whole-population cutover after a convergence delay.
#[derive(Debug)]
pub struct AnycastBackend {
    convergence_epochs: u64,
    cells: Vec<Vec<AnycastCell>>,
}

impl AnycastBackend {
    /// An anycast backend whose decisions take `convergence_epochs` to
    /// propagate.
    pub fn new(convergence_epochs: u64) -> Self {
        AnycastBackend {
            convergence_epochs: convergence_epochs.max(1),
            cells: Vec::new(),
        }
    }
}

impl SteeringBackend for AnycastBackend {
    fn name(&self) -> &'static str {
        "anycast"
    }

    fn init(&mut self, populations: usize, pops: usize) {
        self.cells = vec![vec![AnycastCell::default(); pops]; populations];
    }

    fn update(
        &mut self,
        population: usize,
        pop: usize,
        obs: &CellObservation,
        _tuning: &ShiftTuning,
    ) -> f64 {
        let Some(cell) = self
            .cells
            .get_mut(population)
            .and_then(|row| row.get_mut(pop))
        else {
            return 0.0;
        };
        // Tick an in-flight transition. Once issued, a BGP change
        // completes even if conditions flip mid-convergence — there is no
        // recalling an UPDATE already in the network.
        if let Some((left, end_state)) = cell.pending.take() {
            if left <= 1 {
                cell.withdrawn = end_state;
                cell.hold = ANYCAST_HOLD_PERIODS * self.convergence_epochs;
            } else {
                cell.pending = Some((left - 1, end_state));
            }
        }
        if cell.hold > 0 {
            cell.hold -= 1;
        } else if cell.pending.is_none() {
            let severe = obs.needed_shed() > ANYCAST_CUT_FRACTION;
            if severe && !cell.withdrawn {
                cell.pending = Some((self.convergence_epochs, true));
            } else if cell.withdrawn
                && obs.dropped_mbps <= 0.0
                && obs.headroom_mbps > obs.baseline_mbps
            {
                cell.pending = Some((self.convergence_epochs, false));
            }
        }
        if cell.withdrawn {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TUNING: ShiftTuning = ShiftTuning {
        step: 0.05,
        max_shift: 0.5,
        decay: 0.01,
    };

    /// Dropping half of what is offered: a needed shed far above `step`,
    /// so the ramp advances by the full step each epoch.
    fn overloaded() -> CellObservation {
        CellObservation {
            dropped_mbps: 500.0,
            offered_mbps: 1000.0,
            headroom_mbps: 0.0,
            baseline_mbps: 100.0,
        }
    }

    fn healthy(headroom: f64) -> CellObservation {
        CellObservation {
            dropped_mbps: 0.0,
            offered_mbps: 1000.0,
            headroom_mbps: headroom,
            baseline_mbps: 100.0,
        }
    }

    #[test]
    fn dns_converges_to_target_over_ttl() {
        let mut b = DnsBackend::new(4);
        b.init(1, 1);
        // One overloaded epoch issues target 0.05; observed fraction
        // closes 1/4 of the remaining gap each epoch.
        let f1 = b.update(0, 0, &overloaded(), &TUNING);
        assert!((f1 - 0.05 / 4.0).abs() < 1e-12);
        let mut last = f1;
        for _ in 0..60 {
            last = b.update(0, 0, &overloaded(), &TUNING);
        }
        // Long overload saturates at max_shift.
        assert!((last - TUNING.max_shift).abs() < 1e-6);
    }

    #[test]
    fn dns_ttl_1_applies_immediately() {
        let mut b = DnsBackend::new(1);
        b.init(1, 1);
        assert!((b.update(0, 0, &overloaded(), &TUNING) - 0.05).abs() < 1e-12);
        assert!((b.update(0, 0, &overloaded(), &TUNING) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn dns_decay_gated_on_headroom() {
        let mut b = DnsBackend::new(1);
        b.init(1, 1);
        for _ in 0..4 {
            b.update(0, 0, &overloaded(), &TUNING);
        }
        // Healthy but without room for the baseline: shift holds.
        let held = b.update(0, 0, &healthy(50.0), &TUNING);
        assert!((held - 0.20).abs() < 1e-12);
        // Healthy with room: decays, eventually to zero.
        let mut f = held;
        for _ in 0..200 {
            f = b.update(0, 0, &healthy(500.0), &TUNING);
        }
        assert_eq!(f, 0.0);
    }

    #[test]
    fn anycast_cuts_over_after_convergence_and_restores() {
        let mut b = AnycastBackend::new(2);
        b.init(1, 1);
        // Decision epoch: still announced.
        assert_eq!(b.update(0, 0, &overloaded(), &TUNING), 0.0);
        // One epoch of convergence left.
        assert_eq!(b.update(0, 0, &overloaded(), &TUNING), 0.0);
        // Converged: whole population gone. Hold-down starts (3 periods
        // of 2 epochs, one consumed by the applying update itself).
        assert_eq!(b.update(0, 0, &overloaded(), &TUNING), 1.0);
        // Healthy with room, but held: no restore may be scheduled yet.
        for _ in 0..5 {
            assert_eq!(b.update(0, 0, &healthy(500.0), &TUNING), 1.0);
        }
        // Hold expired: restore is scheduled, converges 2 epochs later.
        assert_eq!(b.update(0, 0, &healthy(500.0), &TUNING), 1.0);
        assert_eq!(b.update(0, 0, &healthy(500.0), &TUNING), 1.0);
        assert_eq!(b.update(0, 0, &healthy(500.0), &TUNING), 0.0);
        // Healthy but without room for the baseline: stays announced.
        assert_eq!(b.update(0, 0, &healthy(50.0), &TUNING), 0.0);
    }

    proptest! {
        /// Anycast never yields a fractional away-fraction: a population
        /// is either fully at a PoP or fully moved — no double counting.
        #[test]
        fn prop_anycast_is_always_all_or_nothing(
            convergence in 1u64..5,
            steps in proptest::collection::vec(
                (any::<bool>(), 0.0f64..1000.0), 1..200),
        ) {
            let mut b = AnycastBackend::new(convergence);
            b.init(1, 1);
            for (over, headroom) in steps {
                let obs = CellObservation {
                    dropped_mbps: if over { 500.0 } else { 0.0 },
                    offered_mbps: 1000.0,
                    headroom_mbps: headroom,
                    baseline_mbps: 100.0,
                };
                let f = b.update(0, 0, &obs, &TUNING);
                prop_assert!(f == 0.0 || f == 1.0);
            }
        }

        /// DNS away-fractions stay within [0, max_shift] for any
        /// observation sequence.
        #[test]
        fn prop_dns_fraction_bounded(
            ttl in 1u64..8,
            steps in proptest::collection::vec(
                (any::<bool>(), 0.0f64..1000.0), 1..200),
        ) {
            let mut b = DnsBackend::new(ttl);
            b.init(1, 1);
            for (over, headroom) in steps {
                let obs = CellObservation {
                    dropped_mbps: if over { 500.0 } else { 0.0 },
                    offered_mbps: 1000.0,
                    headroom_mbps: headroom,
                    baseline_mbps: 100.0,
                };
                let f = b.update(0, 0, &obs, &TUNING);
                prop_assert!((0.0..=TUNING.max_shift + 1e-9).contains(&f));
            }
        }
    }
}
