//! Global steering tier for the Edge Fabric reproduction.
//!
//! Edge Fabric (SIGCOMM 2017) is deliberately per-PoP: each PoP's
//! controller only moves traffic between that PoP's own egress
//! interfaces. The paper's §7 points a layer up — systems like
//! Facebook's Cartographer steer *users* between PoPs, deciding which
//! PoP serves which population before per-PoP egress control ever runs.
//! This crate reproduces that layer:
//!
//! * [`population`] — named user populations (by region or by origin AS)
//!   with per-PoP demand baselines derived from the serving footprint;
//! * [`config`] — [`GlobalConfig`]: grouping, steering backend, shift
//!   tunables, headroom safety margin, scheduled flash crowds;
//! * [`backend`] — the [`SteeringBackend`] trait and its two
//!   implementations: [`DnsBackend`] (fractional, TTL-delayed) and
//!   [`AnycastBackend`] (all-or-nothing, convergence-delayed);
//! * [`controller`] — [`GlobalController`], which shapes demand (flash
//!   crowds), places steered-away demand under per-PoP headroom budgets,
//!   and feeds per-PoP [`PopReport`]s to the backend each epoch. The
//!   controller degrades like the paper's §5 fail-safes: stale reports
//!   decay budgets toward zero, losing report quorum freezes placements
//!   (*fail-static*), per-epoch movement is blast-radius capped, and
//!   restores are held down so placements cannot thrash — stale or
//!   missing inputs shrink the tier's authority, never expand it
//!   ([`GuardSnapshot`] records each epoch's verdicts).
//!
//! **Determinism contract**: the controller is pure state machine — no
//! clocks, no randomness, Vec-indexed state, fixed iteration order — so
//! simulation results with the tier enabled are byte-identical across
//! reruns and unaffected by telemetry being on or off.

pub mod backend;
pub mod config;
pub mod controller;
pub mod population;

pub use backend::{AnycastBackend, CellObservation, DnsBackend, ShiftTuning, SteeringBackend};
#[allow(deprecated)]
pub use config::GlobalShifterConfig;
pub use config::{BackendKind, ConfigError, FlashCrowdSpec, GlobalConfig};
pub use controller::{GlobalController, GuardSnapshot, PlacementSummary, PopReport};
pub use population::{Population, PopulationGrouping, PopulationMap};
