//! Latent path-performance model.
//!
//! Substitutes for the real Internet paths the paper measured. Each
//! `(PoP, prefix, egress interface)` triple has a deterministic latent base
//! RTT drawn from an interconnect-kind-dependent distribution, and the
//! *experienced* RTT adds queueing inflation as the egress interface's
//! utilization approaches (or exceeds) capacity, plus per-sample jitter.
//!
//! Two properties from §6 are engineered in:
//!
//! * **Preferred isn't always best.** Peer paths are usually a little
//!   faster than transit (direct, shorter), but a configurable tail of
//!   prefixes has a transit (or other alternate) path that is 20 ms+
//!   faster — peering via a congested or circuitous peer happens in
//!   practice.
//! * **Congestion hurts.** Utilization above ~85 % adds queueing delay
//!   growing without bound as utilization → 1; demand beyond capacity
//!   turns into loss.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ef_bgp::peer::PeerKind;
use ef_bgp::route::EgressId;

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Seed for the latent RTT draws.
    pub seed: u64,
    /// Fraction of (prefix, PoP) pairs whose best alternate beats the
    /// typical peer path by ≥ 20 ms (the §6 tail). Default 0.05.
    pub fast_alternate_fraction: f64,
    /// Per-sample jitter standard deviation, ms.
    pub jitter_ms: f64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            seed: 99,
            fast_alternate_fraction: 0.05,
            jitter_ms: 2.0,
        }
    }
}

/// Deterministic latent performance model.
#[derive(Debug, Clone)]
pub struct PathPerfModel {
    cfg: PerfConfig,
}

impl PathPerfModel {
    /// Creates the model.
    pub fn new(cfg: PerfConfig) -> Self {
        PathPerfModel { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> PerfConfig {
        self.cfg
    }

    /// Latent base RTT (ms) for a path, deterministic in
    /// `(seed, pop, prefix, egress)`.
    ///
    /// `kind` shifts the distribution: private/public peer paths center
    /// near 25–32 ms, transit near 42 ms — except for the engineered
    /// fast-transit tail where a transit path undercuts peers by 20 ms+.
    pub fn base_rtt_ms(&self, pop: u16, prefix_idx: u32, egress: EgressId, kind: PeerKind) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            self.cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((pop as u64) << 48)
                ^ ((prefix_idx as u64) << 16)
                ^ egress.0 as u64,
        );
        // Is this (pop, prefix) in the fast-alternate tail? Derived from a
        // *path-independent* hash so the whole prefix agrees.
        let mut tail_rng = StdRng::seed_from_u64(
            self.cfg.seed ^ 0xABCD ^ ((pop as u64) << 32) ^ prefix_idx as u64,
        );
        let fast_alt_prefix = tail_rng.gen_bool(self.cfg.fast_alternate_fraction);

        let center = match kind {
            PeerKind::PrivatePeer => 25.0,
            PeerKind::PublicPeer => 30.0,
            PeerKind::RouteServer => 32.0,
            PeerKind::Transit => {
                if fast_alt_prefix {
                    // Circuitous peering: transit takes the short way.
                    12.0
                } else {
                    42.0
                }
            }
            PeerKind::Controller => 25.0,
        };
        // Lognormal-ish spread around the center.
        let spread: f64 = rng.gen_range(-0.35..0.55);
        (center * spread.exp()).max(2.0)
    }

    /// Queueing inflation (ms) at utilization `u` (= demand / capacity).
    ///
    /// Flat until 0.85, then a smooth knee; saturated interfaces (`u ≥ 1`)
    /// pay a large, still-finite penalty (buffers are finite; excess turns
    /// into loss instead).
    pub fn congestion_delay_ms(&self, utilization: f64) -> f64 {
        if utilization <= 0.85 {
            0.0
        } else if utilization < 1.0 {
            // M/M/1-flavored knee, capped by the loss regime.
            let u = utilization.min(0.995);
            2.0 * (u - 0.85) / (1.0 - u)
        } else {
            // Full buffers: ~60 ms standing queue.
            60.0
        }
    }

    /// Loss rate at utilization `u`: zero below capacity, and the excess
    /// fraction above it (fluid model: what doesn't fit is dropped).
    pub fn loss_rate(&self, utilization: f64) -> f64 {
        if utilization <= 1.0 {
            0.0
        } else {
            (utilization - 1.0) / utilization
        }
    }

    /// One experienced RTT sample: base + congestion + jitter.
    pub fn sample_rtt_ms(&self, base_ms: f64, utilization: f64, rng: &mut StdRng) -> f64 {
        let jitter = rng.gen_range(-1.0..1.0) * self.cfg.jitter_ms * 1.7;
        (base_ms + self.congestion_delay_ms(utilization) + jitter).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PathPerfModel {
        PathPerfModel::new(PerfConfig::default())
    }

    #[test]
    fn base_rtt_is_deterministic() {
        let m = model();
        let a = m.base_rtt_ms(1, 42, EgressId(7), PeerKind::PrivatePeer);
        let b = m.base_rtt_ms(1, 42, EgressId(7), PeerKind::PrivatePeer);
        assert_eq!(a, b);
        let c = m.base_rtt_ms(1, 43, EgressId(7), PeerKind::PrivatePeer);
        assert_ne!(a, c);
    }

    #[test]
    fn peers_usually_beat_transit() {
        let m = model();
        let mut peer_wins = 0;
        let n = 500;
        for prefix in 0..n {
            let peer = m.base_rtt_ms(0, prefix, EgressId(1), PeerKind::PrivatePeer);
            let transit = m.base_rtt_ms(0, prefix, EgressId(2), PeerKind::Transit);
            if peer < transit {
                peer_wins += 1;
            }
        }
        assert!(
            peer_wins as f64 / n as f64 > 0.7,
            "peer won only {peer_wins}/{n}"
        );
    }

    #[test]
    fn a_tail_of_prefixes_has_much_faster_transit() {
        let m = model();
        let n = 2000;
        let mut tail = 0;
        for prefix in 0..n {
            let peer = m.base_rtt_ms(0, prefix, EgressId(1), PeerKind::PrivatePeer);
            let transit = m.base_rtt_ms(0, prefix, EgressId(2), PeerKind::Transit);
            if peer - transit >= 20.0 {
                tail += 1;
            }
        }
        let frac = tail as f64 / n as f64;
        assert!(
            (0.01..0.12).contains(&frac),
            "fast-alternate tail is {frac:.3}, want ≈0.05"
        );
    }

    #[test]
    fn congestion_delay_shape() {
        let m = model();
        assert_eq!(m.congestion_delay_ms(0.2), 0.0);
        assert_eq!(m.congestion_delay_ms(0.85), 0.0);
        let at90 = m.congestion_delay_ms(0.90);
        let at97 = m.congestion_delay_ms(0.97);
        assert!(at90 > 0.0 && at97 > at90, "monotone knee: {at90} {at97}");
        assert_eq!(m.congestion_delay_ms(1.2), 60.0);
    }

    #[test]
    fn loss_only_above_capacity() {
        let m = model();
        assert_eq!(m.loss_rate(0.99), 0.0);
        assert_eq!(m.loss_rate(1.0), 0.0);
        let l = m.loss_rate(1.25);
        assert!((l - 0.2).abs() < 1e-12, "25% excess → 20% loss, got {l}");
    }

    #[test]
    fn samples_center_on_base_plus_congestion() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_rtt_ms(30.0, 0.5, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
        let congested: f64 = (0..n)
            .map(|_| m.sample_rtt_ms(30.0, 1.1, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(congested > 80.0, "congested mean {congested}");
    }

    #[test]
    fn samples_never_negative() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(m.sample_rtt_ms(2.0, 0.0, &mut rng) >= 1.0);
        }
    }
}
