//! Performance substrate for the Edge Fabric reproduction.
//!
//! Paper §6 extends the capacity-aware controller with *performance*
//! awareness: a sliver of production flows is DSCP-marked and policy-routed
//! onto each alternate path so servers can measure how the alternatives
//! would perform, without moving real user traffic wholesale. This crate
//! provides:
//!
//! * [`rtt`] — a latent per-(PoP, prefix, egress) RTT/loss model with
//!   congestion-coupled inflation, substituting for the real Internet;
//! * [`quantile`] — the P² streaming quantile estimator used to digest
//!   samples without storing them;
//! * [`measurement`] — the alternate-path measurement machinery: slice
//!   assignment, sample collection, per-path digests; and
//! * [`compare`] — preferred-vs-alternate comparisons that back the §6
//!   figures (how often is BGP's choice not the best-performing path?).

pub mod compare;
pub mod measurement;
pub mod quantile;
pub mod rtt;

pub use compare::{compare_paths, PathComparison};
pub use measurement::{AltPathMeasurer, MeasurerConfig, PathDigest, PathKey};
pub use quantile::P2Quantile;
pub use rtt::{PathPerfModel, PerfConfig};
