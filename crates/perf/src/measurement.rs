//! Alternate-path measurement (paper §6.1).
//!
//! Production Edge Fabric marks a random sliver of flows with DSCP values
//! that policy routing pins to each *alternate* route, so servers measure
//! every available path with live traffic while >99 % of users stay on the
//! BGP-selected path. The simulator reproduces the pipeline: per epoch,
//! each `(prefix, route)` pair receives a number of measurement samples
//! proportional to the sliced traffic, each sample drawn from the latent
//! [`rtt::PathPerfModel`](crate::rtt::PathPerfModel) — sampled at the *alternate path's*
//! current utilization, digested by a P² median estimator.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ef_bgp::peer::PeerKind;
use ef_bgp::route::EgressId;

use crate::quantile::P2Quantile;
use crate::rtt::PathPerfModel;

/// Identifies one measured path: a prefix via an egress interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathKey {
    /// Destination prefix index.
    pub prefix_idx: u32,
    /// Egress interface.
    pub egress: EgressId,
}

/// Measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeasurerConfig {
    /// Fraction of a prefix's flows sliced onto *each* alternate path.
    /// Paper uses ~0.5 %; the sliver must stay small enough not to shift
    /// load noticeably.
    pub slice_fraction: f64,
    /// Measurement samples generated per sliced Mbps per epoch (flows are
    /// the sampling unit in production; this scales sample volume).
    pub samples_per_mbps: f64,
    /// Cap on samples per path per epoch (collector budget).
    pub max_samples_per_path: usize,
    /// RNG seed for sample draws.
    pub seed: u64,
}

impl Default for MeasurerConfig {
    fn default() -> Self {
        MeasurerConfig {
            slice_fraction: 0.005,
            samples_per_mbps: 0.5,
            max_samples_per_path: 64,
            seed: 77,
        }
    }
}

/// Accumulated digest for one path.
#[derive(Debug, Clone)]
pub struct PathDigest {
    /// Path identity.
    pub key: PathKey,
    /// Interconnect kind of the egress.
    pub kind: PeerKind,
    /// Streaming median of experienced RTT.
    median: P2Quantile,
}

impl PathDigest {
    /// Median RTT estimate (ms), if any samples arrived.
    pub fn median_rtt_ms(&self) -> Option<f64> {
        self.median.estimate()
    }

    /// Number of samples digested.
    pub fn samples(&self) -> usize {
        self.median.count()
    }
}

/// One candidate path for measurement, as presented by the controller.
#[derive(Debug, Clone, Copy)]
pub struct CandidatePath {
    /// Egress interface of this route.
    pub egress: EgressId,
    /// Interconnect kind.
    pub kind: PeerKind,
}

/// The per-PoP alternate-path measurement subsystem.
#[derive(Debug)]
pub struct AltPathMeasurer {
    cfg: MeasurerConfig,
    pop: u16,
    digests: HashMap<PathKey, PathDigest>,
    rng: StdRng,
}

impl AltPathMeasurer {
    /// Creates a measurer for one PoP.
    pub fn new(pop: u16, cfg: MeasurerConfig) -> Self {
        AltPathMeasurer {
            rng: StdRng::seed_from_u64(cfg.seed ^ ((pop as u64) << 32)),
            cfg,
            pop,
            digests: HashMap::new(),
        }
    }

    /// The PoP this measurer serves.
    pub fn pop(&self) -> u16 {
        self.pop
    }

    /// Runs one epoch of measurement.
    ///
    /// `entries` lists, per prefix: its current demand and every candidate
    /// route (preferred first is conventional but not required — every
    /// listed path is measured). `utilization` maps egress interfaces to
    /// their current load factor so congestion shows up in the samples.
    pub fn collect_epoch(
        &mut self,
        model: &PathPerfModel,
        entries: &[(u32, f64, Vec<CandidatePath>)],
        utilization: &HashMap<EgressId, f64>,
    ) {
        for (prefix_idx, demand_mbps, paths) in entries {
            let sliced = demand_mbps * self.cfg.slice_fraction;
            let n = ((sliced * self.cfg.samples_per_mbps).ceil() as usize)
                .clamp(1, self.cfg.max_samples_per_path);
            for path in paths {
                let key = PathKey {
                    prefix_idx: *prefix_idx,
                    egress: path.egress,
                };
                let base = model.base_rtt_ms(self.pop, *prefix_idx, path.egress, path.kind);
                let util = utilization.get(&path.egress).copied().unwrap_or(0.0);
                let digest = self.digests.entry(key).or_insert_with(|| PathDigest {
                    key,
                    kind: path.kind,
                    median: P2Quantile::median(),
                });
                for _ in 0..n {
                    let rtt = model.sample_rtt_ms(base, util, &mut self.rng);
                    digest.median.observe(rtt);
                }
            }
        }
    }

    /// The digest for one path.
    pub fn digest(&self, key: &PathKey) -> Option<&PathDigest> {
        self.digests.get(key)
    }

    /// All digests for one prefix.
    pub fn digests_for(&self, prefix_idx: u32) -> Vec<&PathDigest> {
        let mut v: Vec<&PathDigest> = self
            .digests
            .values()
            .filter(|d| d.key.prefix_idx == prefix_idx)
            .collect();
        v.sort_by_key(|d| d.key.egress);
        v
    }

    /// Every digest, sorted by `(prefix, egress)` for deterministic output.
    pub fn report(&self) -> Vec<&PathDigest> {
        let mut v: Vec<&PathDigest> = self.digests.values().collect();
        v.sort_by_key(|d| (d.key.prefix_idx, d.key.egress));
        v
    }

    /// Drops all state (e.g. at a day boundary).
    pub fn reset(&mut self) {
        self.digests.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::PerfConfig;

    fn model() -> PathPerfModel {
        PathPerfModel::new(PerfConfig::default())
    }

    fn paths() -> Vec<CandidatePath> {
        vec![
            CandidatePath {
                egress: EgressId(1),
                kind: PeerKind::PrivatePeer,
            },
            CandidatePath {
                egress: EgressId(2),
                kind: PeerKind::Transit,
            },
        ]
    }

    #[test]
    fn every_candidate_path_gets_measured() {
        let mut m = AltPathMeasurer::new(0, MeasurerConfig::default());
        let entries = vec![(7u32, 1000.0, paths())];
        m.collect_epoch(&model(), &entries, &HashMap::new());
        assert_eq!(m.digests_for(7).len(), 2);
        assert!(m
            .digest(&PathKey {
                prefix_idx: 7,
                egress: EgressId(1)
            })
            .is_some());
    }

    #[test]
    fn medians_converge_to_latent_base() {
        let mdl = model();
        let mut m = AltPathMeasurer::new(0, MeasurerConfig::default());
        let entries = vec![(7u32, 1000.0, paths())];
        for _ in 0..50 {
            m.collect_epoch(&mdl, &entries, &HashMap::new());
        }
        let d = m
            .digest(&PathKey {
                prefix_idx: 7,
                egress: EgressId(1),
            })
            .unwrap();
        let base = mdl.base_rtt_ms(0, 7, EgressId(1), PeerKind::PrivatePeer);
        let med = d.median_rtt_ms().unwrap();
        assert!(
            (med - base).abs() < 3.0,
            "median {med} should track base {base}"
        );
        assert!(d.samples() >= 50);
    }

    #[test]
    fn congested_paths_measure_slower() {
        let mdl = model();
        let mut m = AltPathMeasurer::new(0, MeasurerConfig::default());
        let entries = vec![(7u32, 1000.0, paths())];
        let mut util = HashMap::new();
        util.insert(EgressId(1), 1.2); // preferred path overloaded
        for _ in 0..30 {
            m.collect_epoch(&mdl, &entries, &util);
        }
        let hot = m
            .digest(&PathKey {
                prefix_idx: 7,
                egress: EgressId(1),
            })
            .unwrap()
            .median_rtt_ms()
            .unwrap();
        let base = mdl.base_rtt_ms(0, 7, EgressId(1), PeerKind::PrivatePeer);
        assert!(
            hot > base + 40.0,
            "congestion visible: {hot} vs base {base}"
        );
    }

    #[test]
    fn sample_budget_scales_with_demand_but_is_capped() {
        let mdl = model();
        let cfg = MeasurerConfig::default();
        let mut small = AltPathMeasurer::new(0, cfg);
        small.collect_epoch(&mdl, &[(1u32, 1.0, paths())], &HashMap::new());
        let small_n = small.digests_for(1)[0].samples();

        let mut big = AltPathMeasurer::new(0, cfg);
        big.collect_epoch(&mdl, &[(1u32, 100_000.0, paths())], &HashMap::new());
        let big_n = big.digests_for(1)[0].samples();

        assert!(small_n >= 1);
        assert!(big_n > small_n);
        assert!(big_n <= cfg.max_samples_per_path);
    }

    #[test]
    fn report_is_sorted_and_reset_clears() {
        let mdl = model();
        let mut m = AltPathMeasurer::new(0, MeasurerConfig::default());
        let entries = vec![(9u32, 10.0, paths()), (3u32, 10.0, paths())];
        m.collect_epoch(&mdl, &entries, &HashMap::new());
        let keys: Vec<(u32, u32)> = m
            .report()
            .iter()
            .map(|d| (d.key.prefix_idx, d.key.egress.0))
            .collect();
        assert_eq!(keys, vec![(3, 1), (3, 2), (9, 1), (9, 2)]);
        m.reset();
        assert!(m.report().is_empty());
    }
}
