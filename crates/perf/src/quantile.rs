//! The P² (Piecewise-Parabolic) streaming quantile estimator
//! (Jain & Chlamtac, 1985).
//!
//! Measurement collectors digest millions of RTT samples per PoP; storing
//! them is out of the question. P² maintains five markers and estimates any
//! single quantile in O(1) memory with no allocation per sample — the same
//! trade production telemetry pipelines make.

/// Streaming estimator for one quantile `p` (e.g. 0.5 for the median).
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates at the marker positions).
    q: [f64; 5],
    /// Marker positions (1-based sample ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    /// First five samples before the estimator initializes.
    boot: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for quantile `p ∈ (0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile {p} out of (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            boot: [0.0; 5],
        }
    }

    /// Convenience: a median estimator.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Number of samples observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one sample.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.boot[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.boot.sort_by(|a, b| a.total_cmp(b));
                self.q = self.boot;
            }
            return;
        }
        self.count += 1;

        // Find the cell k containing x, adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate of the quantile. For fewer than five samples,
    /// returns the exact empirical quantile of what has been seen (or
    /// `None` for zero samples).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                let mut v = self.boot[..c].to_vec();
                v.sort_by(|a, b| a.total_cmp(b));
                let idx = ((c as f64 - 1.0) * self.p).round() as usize;
                Some(v[idx])
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(mut v: Vec<f64>, p: f64) -> f64 {
        v.sort_by(|a, b| a.total_cmp(b));
        v[((v.len() as f64 - 1.0) * p).round() as usize]
    }

    #[test]
    fn empty_has_no_estimate() {
        assert_eq!(P2Quantile::median().estimate(), None);
    }

    #[test]
    fn small_samples_are_exact() {
        let mut q = P2Quantile::median();
        for x in [3.0, 1.0, 2.0] {
            q.observe(x);
        }
        assert_eq!(q.estimate(), Some(2.0));
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut q = P2Quantile::median();
        for _ in 0..50_000 {
            q.observe(rng.gen_range(0.0..100.0));
        }
        let est = q.estimate().unwrap();
        assert!((est - 50.0).abs() < 2.0, "median estimate {est}");
    }

    #[test]
    fn p90_of_exponential_converges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut q = P2Quantile::new(0.9);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x: f64 = -rng.gen::<f64>().ln() * 10.0;
            q.observe(x);
            all.push(x);
        }
        let est = q.estimate().unwrap();
        let exact = exact_quantile(all, 0.9);
        assert!(
            (est - exact).abs() / exact < 0.05,
            "p90 {est} vs exact {exact}"
        );
    }

    #[test]
    fn bimodal_distribution_median() {
        // RTT-like: a 20 ms mode and a 70 ms mode, 70/30 split.
        let mut rng = StdRng::seed_from_u64(3);
        let mut q = P2Quantile::median();
        for _ in 0..30_000 {
            let x = if rng.gen_bool(0.7) {
                20.0 + rng.gen_range(-3.0..3.0)
            } else {
                70.0 + rng.gen_range(-5.0..5.0)
            };
            q.observe(x);
        }
        let est = q.estimate().unwrap();
        assert!(
            (15.0..30.0).contains(&est),
            "median in the heavy mode: {est}"
        );
    }

    #[test]
    fn constant_stream() {
        let mut q = P2Quantile::median();
        for _ in 0..100 {
            q.observe(42.0);
        }
        assert_eq!(q.estimate(), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn quantile_must_be_interior() {
        P2Quantile::new(1.0);
    }

    proptest! {
        /// The estimate always lies within the observed range.
        #[test]
        fn prop_estimate_within_range(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..400),
            p in 0.05f64..0.95,
        ) {
            let mut q = P2Quantile::new(p);
            for x in &xs {
                q.observe(*x);
            }
            let est = q.estimate().unwrap();
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9);
        }

        /// On large uniform streams the error stays small.
        #[test]
        fn prop_uniform_accuracy(seed in 0u64..1000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut q = P2Quantile::median();
            for _ in 0..5_000 {
                q.observe(rng.gen_range(0.0..1.0));
            }
            let est = q.estimate().unwrap();
            prop_assert!((est - 0.5).abs() < 0.08, "median {est}");
        }
    }
}
