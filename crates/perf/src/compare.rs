//! Preferred-vs-alternate path comparison (backs the §6 evaluation).
//!
//! Given the measurement digests and the BGP-preferred egress per prefix,
//! computes how much better (or worse) the best alternate path is than the
//! path BGP chose — the distribution the paper uses to argue that a
//! capacity-only controller leaves performance on the table for a small but
//! real tail of prefixes.

use std::collections::HashMap;

use serde::Serialize;

use ef_bgp::route::EgressId;

use crate::measurement::AltPathMeasurer;

/// Comparison result for one prefix at one PoP.
#[derive(Debug, Clone, Serialize)]
pub struct PathComparison {
    /// Destination prefix index.
    pub prefix_idx: u32,
    /// The BGP-preferred egress.
    pub preferred_egress: u32,
    /// Median RTT on the preferred path, ms.
    pub preferred_median_ms: f64,
    /// The best-performing alternate egress.
    pub best_alt_egress: u32,
    /// Median RTT on that alternate, ms.
    pub best_alt_median_ms: f64,
    /// `preferred − best_alt` (positive ⇒ an alternate is faster).
    pub improvement_ms: f64,
    /// Number of alternates measured.
    pub alternates: usize,
}

/// Compares every measured prefix against its preferred path.
///
/// `preferred` maps prefix index → the egress BGP chose. Prefixes with no
/// measured alternate (single-path) are skipped.
pub fn compare_paths(
    measurer: &AltPathMeasurer,
    preferred: &HashMap<u32, EgressId>,
) -> Vec<PathComparison> {
    let mut by_prefix: HashMap<u32, Vec<(&crate::measurement::PathDigest, f64)>> = HashMap::new();
    for d in measurer.report() {
        if let Some(m) = d.median_rtt_ms() {
            by_prefix.entry(d.key.prefix_idx).or_default().push((d, m));
        }
    }

    let mut out = Vec::new();
    for (prefix_idx, digests) in by_prefix {
        let Some(&pref_egress) = preferred.get(&prefix_idx) else {
            continue;
        };
        let Some(&(_, pref_median)) = digests.iter().find(|(d, _)| d.key.egress == pref_egress)
        else {
            continue;
        };
        let alts: Vec<&(&crate::measurement::PathDigest, f64)> = digests
            .iter()
            .filter(|(d, _)| d.key.egress != pref_egress)
            .collect();
        if alts.is_empty() {
            continue;
        }
        let (best, best_median) = alts
            .iter()
            .map(|(d, m)| (*d, *m))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        out.push(PathComparison {
            prefix_idx,
            preferred_egress: pref_egress.0,
            preferred_median_ms: pref_median,
            best_alt_egress: best.key.egress.0,
            best_alt_median_ms: best_median,
            improvement_ms: pref_median - best_median,
            alternates: alts.len(),
        });
    }
    out.sort_by_key(|c| c.prefix_idx);
    out
}

/// Summary statistics over a comparison set, for experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonSummary {
    /// Number of prefixes compared.
    pub prefixes: usize,
    /// Fraction whose preferred path is within 3 ms of the best alternate
    /// (the "BGP is fine" mass).
    pub frac_equivalent: f64,
    /// Fraction where some alternate is ≥ 20 ms faster (the §6 tail).
    pub frac_alt_wins_20ms: f64,
    /// Fraction where the preferred path is ≥ 20 ms faster (alternates are
    /// much worse — detours would hurt).
    pub frac_pref_wins_20ms: f64,
    /// Median improvement across prefixes, ms.
    pub median_improvement_ms: f64,
}

/// Builds the summary.
pub fn summarize(comparisons: &[PathComparison]) -> ComparisonSummary {
    let n = comparisons.len();
    if n == 0 {
        return ComparisonSummary {
            prefixes: 0,
            frac_equivalent: 0.0,
            frac_alt_wins_20ms: 0.0,
            frac_pref_wins_20ms: 0.0,
            median_improvement_ms: 0.0,
        };
    }
    let mut diffs: Vec<f64> = comparisons.iter().map(|c| c.improvement_ms).collect();
    diffs.sort_by(|a, b| a.total_cmp(b));
    ComparisonSummary {
        prefixes: n,
        frac_equivalent: comparisons
            .iter()
            .filter(|c| c.improvement_ms.abs() <= 3.0)
            .count() as f64
            / n as f64,
        frac_alt_wins_20ms: comparisons
            .iter()
            .filter(|c| c.improvement_ms >= 20.0)
            .count() as f64
            / n as f64,
        frac_pref_wins_20ms: comparisons
            .iter()
            .filter(|c| c.improvement_ms <= -20.0)
            .count() as f64
            / n as f64,
        median_improvement_ms: diffs[n / 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::{AltPathMeasurer, CandidatePath, MeasurerConfig};
    use crate::rtt::{PathPerfModel, PerfConfig};
    use ef_bgp::peer::PeerKind;

    fn run_measurement(prefixes: u32) -> (AltPathMeasurer, HashMap<u32, EgressId>) {
        let model = PathPerfModel::new(PerfConfig::default());
        let mut m = AltPathMeasurer::new(0, MeasurerConfig::default());
        let entries: Vec<(u32, f64, Vec<CandidatePath>)> = (0..prefixes)
            .map(|p| {
                (
                    p,
                    500.0,
                    vec![
                        CandidatePath {
                            egress: EgressId(1),
                            kind: PeerKind::PrivatePeer,
                        },
                        CandidatePath {
                            egress: EgressId(2),
                            kind: PeerKind::Transit,
                        },
                    ],
                )
            })
            .collect();
        for _ in 0..20 {
            m.collect_epoch(&model, &entries, &HashMap::new());
        }
        let preferred: HashMap<u32, EgressId> = (0..prefixes).map(|p| (p, EgressId(1))).collect();
        (m, preferred)
    }

    #[test]
    fn comparisons_cover_measured_prefixes() {
        let (m, preferred) = run_measurement(50);
        let cmp = compare_paths(&m, &preferred);
        assert_eq!(cmp.len(), 50);
        for c in &cmp {
            assert_eq!(c.preferred_egress, 1);
            assert_eq!(c.best_alt_egress, 2);
            assert_eq!(c.alternates, 1);
            assert!(
                (c.improvement_ms - (c.preferred_median_ms - c.best_alt_median_ms)).abs() < 1e-9
            );
        }
    }

    #[test]
    fn most_prefixes_prefer_bgp_choice_but_a_tail_does_not() {
        let (m, preferred) = run_measurement(800);
        let cmp = compare_paths(&m, &preferred);
        let summary = summarize(&cmp);
        // The peer path usually wins (median improvement negative), but the
        // engineered ~5% fast-transit tail shows up.
        assert!(summary.median_improvement_ms < 0.0);
        assert!(
            (0.01..0.15).contains(&summary.frac_alt_wins_20ms),
            "tail fraction {}",
            summary.frac_alt_wins_20ms
        );
    }

    #[test]
    fn unmeasured_preferred_path_is_skipped() {
        let (m, _) = run_measurement(5);
        // Claim a preferred egress that was never measured.
        let preferred: HashMap<u32, EgressId> = (0..5).map(|p| (p, EgressId(99))).collect();
        assert!(compare_paths(&m, &preferred).is_empty());
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.prefixes, 0);
        assert_eq!(s.median_improvement_ms, 0.0);
    }
}
