//! Structured telemetry for the Edge Fabric reproduction.
//!
//! The paper's controller is operable because every decision it takes is
//! observable (§4–§5): each projection/allocation cycle is logged, every
//! detour carries a "why", and injected overrides are continuously audited
//! against the routers' actual BGP decision. This crate is the hand-rolled
//! equivalent for the reproduction — the build is offline, so it depends
//! only on the vendored `serde`/`serde_json` stand-ins, not on `tracing`.
//!
//! Four pieces, one per module:
//!
//! * [`event`] — a structured [`Event`](event::Event) with flat typed
//!   fields, plus the [`TelemetryRecord`](event::TelemetryRecord) envelope
//!   a sink receives (events, decision provenance, metric snapshots) —
//!   JSON-lines on disk, one record per line;
//! * [`explain`] — decision provenance: one
//!   [`ExplainRecord`](explain::ExplainRecord) per override decision,
//!   naming the overloaded interface, the chosen alternate, and every
//!   rejected alternative with its rejection reason;
//! * [`placement`] — the global steering tier's provenance: one
//!   [`PlacementRecord`](placement::PlacementRecord) per population-level
//!   steering action, naming the backend, the drained PoP, each target
//!   with its granted volume, and every rejected candidate;
//! * [`registry`] — counters / gauges / histograms, snapshotted into the
//!   event stream once per controller epoch;
//! * [`audit`] — the override auditor: re-runs the BGP decision process
//!   after an epoch and reports overrides that failed to install or leaked
//!   past their withdrawal.
//!
//! Everything hangs off a cheap, cloneable [`TelemetryHandle`]: a disabled
//! handle (the default) makes every call a no-op, so instrumented code
//! pays nothing in ordinary runs. **Determinism contract**: telemetry only
//! ever writes to its own sink. Wall-clock readings never feed back into
//! control decisions or simulation results — `tests/determinism.rs` proves
//! a run's `results/` output is byte-identical with the sink on or off.

pub mod audit;
pub mod event;
pub mod explain;
pub mod handle;
pub mod placement;
pub mod registry;
pub mod sink;

pub use audit::{audit_overrides, AuditFinding, AuditOutcome};
pub use event::{Event, FieldValue, TelemetryRecord};
pub use explain::{ExplainRecord, ExplainVerdict, RejectReason, RejectedAlternative};
pub use handle::{PhaseTimer, TelemetryHandle};
pub use placement::{
    PlacementGuard, PlacementRecord, PlacementRejectReason, PlacementTarget, PlacementVerdict,
    RejectedTarget,
};
pub use registry::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use sink::{JsonLinesSink, MemorySink, Sink};
