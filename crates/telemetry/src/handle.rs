//! The cheap, cloneable entry point instrumented code holds.
//!
//! A [`TelemetryHandle`] is either disabled (the default — every call is a
//! no-op and costs a null check) or wraps a shared sink + registry. Clones
//! share the same sink, so the simulator hands one handle to every PoP
//! thread. Wall-clock readings ([`TelemetryHandle::timer`]) are only ever
//! written to the sink; nothing downstream of a timer may influence
//! control decisions, which keeps simulation results bit-identical with
//! telemetry on or off.

use std::sync::Arc;
use std::time::Instant;

use crate::event::{Event, FieldValue, TelemetryRecord};
use crate::explain::ExplainRecord;
use crate::placement::PlacementRecord;
use crate::registry::{MetricsRegistry, MetricsSnapshot};
use crate::sink::{JsonLinesSink, MemorySink, Sink};

struct Telemetry {
    sink: Box<dyn Sink>,
    registry: MetricsRegistry,
    origin: Instant,
}

/// Handle to a telemetry pipeline; `Default` is disabled.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Telemetry>>,
}

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TelemetryHandle({})",
            if self.inner.is_some() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

/// Started by [`TelemetryHandle::timer`]; reads 0 when telemetry is off,
/// so phase timings exist only in the sink's view of the world.
pub struct PhaseTimer(Option<Instant>);

impl PhaseTimer {
    /// Microseconds since the timer started (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        self.0
            .map(|start| start.elapsed().as_micros() as u64)
            .unwrap_or(0)
    }
}

impl TelemetryHandle {
    /// A handle that drops everything (every call is a no-op).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Wraps an arbitrary sink.
    pub fn with_sink(sink: Box<dyn Sink>) -> Self {
        TelemetryHandle {
            inner: Some(Arc::new(Telemetry {
                sink,
                registry: MetricsRegistry::new(),
                origin: Instant::now(),
            })),
        }
    }

    /// An in-memory pipeline; returns the sink for inspection.
    pub fn memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let handle = TelemetryHandle {
            inner: Some(Arc::new(Telemetry {
                sink: Box::new(SharedSink(sink.clone())),
                registry: MetricsRegistry::new(),
                origin: Instant::now(),
            })),
        };
        (handle, sink)
    }

    /// A JSON-lines pipeline writing to `path` (truncated).
    pub fn to_file(path: &str) -> std::io::Result<Self> {
        Ok(Self::with_sink(Box::new(JsonLinesSink::create(path)?)))
    }

    /// True when records actually go somewhere.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits a structured event.
    pub fn emit(&self, pop: u16, now_ms: u64, name: &str, fields: &[(&str, FieldValue)]) {
        let Some(t) = self.inner.as_deref() else {
            return;
        };
        t.sink.write(&TelemetryRecord::Event(Event {
            name: name.to_string(),
            pop,
            now_ms,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            wall_us: Some(t.origin.elapsed().as_micros() as u64),
        }));
    }

    /// Emits a decision-provenance record.
    pub fn explain(&self, pop: u16, now_ms: u64, record: &ExplainRecord) {
        let Some(t) = self.inner.as_deref() else {
            return;
        };
        t.sink.write(&TelemetryRecord::Explain {
            pop,
            now_ms,
            record: record.clone(),
        });
    }

    /// Emits a placement-provenance record from the global steering tier.
    /// `pop` is the source PoP being drained.
    pub fn placement(&self, pop: u16, now_ms: u64, record: &PlacementRecord) {
        let Some(t) = self.inner.as_deref() else {
            return;
        };
        t.sink.write(&TelemetryRecord::Placement {
            pop,
            now_ms,
            record: record.clone(),
        });
    }

    /// Starts a wall-clock phase timer (inert when disabled).
    pub fn timer(&self) -> PhaseTimer {
        PhaseTimer(self.inner.as_ref().map(|_| Instant::now()))
    }

    /// Adds to a counter.
    pub fn counter(&self, name: &str, by: u64) {
        if let Some(t) = self.inner.as_deref() {
            t.registry.inc(name, by);
        }
    }

    /// Sets a gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(t) = self.inner.as_deref() {
            t.registry.set_gauge(name, value);
        }
    }

    /// Records a histogram observation (microsecond-duration bounds).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(t) = self.inner.as_deref() {
            t.registry.observe(name, value);
        }
    }

    /// The shared registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|t| &t.registry)
    }

    /// Snapshots the registry into the event stream.
    pub fn snapshot_metrics(&self, pop: u16, now_ms: u64) {
        let Some(t) = self.inner.as_deref() else {
            return;
        };
        t.sink.write(&TelemetryRecord::Metrics {
            pop,
            now_ms,
            snapshot: t.registry.snapshot(),
        });
    }

    /// A snapshot of the registry without emitting it (None when disabled).
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.inner.as_deref().map(|t| t.registry.snapshot())
    }
}

/// Adapter so a shared `Arc<MemorySink>` can serve as the boxed sink while
/// the caller keeps a reading handle.
struct SharedSink(Arc<MemorySink>);

impl Sink for SharedSink {
    fn write(&self, record: &TelemetryRecord) {
        self.0.write(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TelemetryHandle::disabled();
        assert!(!h.enabled());
        h.emit(0, 0, "x", &[("a", 1u64.into())]);
        h.counter("c", 5);
        h.gauge("g", 1.0);
        h.observe("h", 2.0);
        h.snapshot_metrics(0, 0);
        assert!(h.registry().is_none());
        assert!(h.metrics().is_none());
        assert_eq!(h.timer().elapsed_us(), 0);
        assert_eq!(format!("{h:?}"), "TelemetryHandle(disabled)");
    }

    #[test]
    fn memory_pipeline_captures_everything() {
        let (h, sink) = TelemetryHandle::memory();
        assert!(h.enabled());
        h.emit(3, 30_000, "fault.start", &[("kind", "bmp_stall".into())]);
        h.counter("overrides.announced", 2);
        h.gauge("pop3.detoured_mbps", 42.0);
        h.snapshot_metrics(3, 30_000);

        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "fault.start");
        assert_eq!(events[0].pop, 3);
        assert_eq!(events[0].str_field("kind"), Some("bmp_stall"));
        assert!(events[0].wall_us.is_some());

        let snaps = sink.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].2.counters["overrides.announced"], 2);
        assert_eq!(snaps[0].2.gauges["pop3.detoured_mbps"], 42.0);
    }

    #[test]
    fn clones_share_the_sink() {
        let (h, sink) = TelemetryHandle::memory();
        let h2 = h.clone();
        h.emit(0, 0, "a", &[]);
        h2.emit(1, 0, "b", &[]);
        assert_eq!(sink.events().len(), 2);
    }
}
