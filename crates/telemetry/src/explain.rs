//! Decision provenance: why each override was (or was not) emitted.
//!
//! The allocator produces one [`ExplainRecord`] per steering decision it
//! considered: the overloaded interface and its projected utilization, the
//! alternate it chose, and — crucially for debugging — every alternative
//! it rejected with the reason ([`RejectReason`]). The controller then
//! amends the verdict when a guard (blast-radius cap, stale-input
//! hold-or-shrink, fail-open horizon) drops a decision the allocator made.
//!
//! Records use plain serializable types (`String` prefixes, raw egress
//! ids) so the whole provenance chain survives a JSON round trip and can
//! be rendered by `efctl explain` without the core crates loaded.

use serde::{Deserialize, Serialize};

/// Why one alternative (or the whole decision) was rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The prefix has no alternate route at all.
    NoRoute,
    /// The alternate exists but taking the demand would push it over its
    /// utilization limit.
    NoSpareCapacity {
        /// Load the alternate would carry with this detour, Mbps.
        projected_mbps: f64,
        /// The alternate's allowed load, Mbps.
        limit_mbps: f64,
    },
    /// Moving this prefix would exceed the PoP-wide detour-volume budget.
    DetourBudget,
    /// The override-count safety cap was reached.
    OverrideCountCap,
    /// The per-epoch blast-radius cap refused the new shift.
    BlastRadiusCap,
    /// Inputs were stale: degraded mode refuses to grow the override set.
    StaleInput,
    /// Inputs were past the fail-open horizon: everything is withdrawn.
    FailOpen,
    /// The alternate was feasible and equally preferred by BGP, but a
    /// cheaper same-band alternate was chosen instead (cost-aware
    /// steering only; never crosses a preference band).
    CostlierAlternate {
        /// Marginal cost of this alternate, USD per billable Mbps·month.
        usd_per_mbps: f64,
        /// Marginal cost of the alternate chosen instead.
        chosen_usd_per_mbps: f64,
    },
}

impl RejectReason {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::NoRoute => "no route",
            RejectReason::NoSpareCapacity { .. } => "no spare capacity",
            RejectReason::DetourBudget => "detour budget",
            RejectReason::OverrideCountCap => "override count cap",
            RejectReason::BlastRadiusCap => "blast-radius cap",
            RejectReason::StaleInput => "stale input",
            RejectReason::FailOpen => "fail-open",
            RejectReason::CostlierAlternate { .. } => "costlier alternate",
        }
    }
}

/// One alternative the allocator considered and rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectedAlternative {
    /// The alternate egress interface (absent for [`RejectReason::NoRoute`]).
    pub egress: Option<u32>,
    /// Interconnect kind of the alternate, when known.
    pub kind: Option<String>,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// The final fate of one steering decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExplainVerdict {
    /// The override was emitted toward the router.
    Emitted,
    /// Every alternative was rejected; the demand stayed put (possibly
    /// retried at half-prefix granularity, which gets its own records).
    NoFeasibleAlternate,
    /// Dropped by the detour-volume budget before alternatives were tried.
    DroppedDetourBudget,
    /// Dropped because the override-count cap was already reached.
    DroppedOverrideCap,
    /// Allocator chose an alternate, but the per-epoch blast-radius cap
    /// refused the new shift.
    DroppedBlastRadius,
    /// Allocator chose an alternate, but stale inputs put the controller
    /// in hold-or-shrink mode and this override was not already announced.
    DroppedStaleInput,
    /// Allocator chose an alternate, but inputs were past the fail-open
    /// horizon and the whole override set was withdrawn.
    DroppedFailOpen,
}

impl ExplainVerdict {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            ExplainVerdict::Emitted => "emitted",
            ExplainVerdict::NoFeasibleAlternate => "no feasible alternate",
            ExplainVerdict::DroppedDetourBudget => "dropped: detour budget",
            ExplainVerdict::DroppedOverrideCap => "dropped: override count cap",
            ExplainVerdict::DroppedBlastRadius => "dropped: blast-radius cap",
            ExplainVerdict::DroppedStaleInput => "dropped: stale input",
            ExplainVerdict::DroppedFailOpen => "dropped: fail-open",
        }
    }
}

/// Provenance for one override decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainRecord {
    /// The steered prefix (possibly a split half of a routed parent).
    pub prefix: String,
    /// What triggered the decision: `capacity`, `performance`, or
    /// `hysteresis`.
    pub trigger: String,
    /// The overloaded interface being relieved (absent for performance
    /// overrides, which relieve nothing).
    pub hot_egress: Option<u32>,
    /// Projected utilization of the hot interface when this decision was
    /// attempted (post any detours already made this epoch).
    pub hot_util: f64,
    /// Demand this decision would move, Mbps.
    pub demand_mbps: f64,
    /// The chosen alternate egress, when one was found.
    pub chosen_egress: Option<u32>,
    /// Interconnect kind of the chosen alternate.
    pub chosen_kind: Option<String>,
    /// Marginal cost of the chosen alternate, USD per billable Mbps·month
    /// (zero for settlement-free / PNI / route-server targets). Absent in
    /// records written before cost-aware steering existed.
    #[serde(default)]
    pub chosen_usd_per_mbps: Option<f64>,
    /// Alternatives considered and rejected, in preference order.
    pub rejected: Vec<RejectedAlternative>,
    /// What ultimately happened.
    pub verdict: ExplainVerdict,
}

impl ExplainRecord {
    /// True when the decision produced an override toward the router.
    pub fn emitted(&self) -> bool {
        self.verdict == ExplainVerdict::Emitted
    }

    /// One-paragraph human rendering of the provenance chain.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        write!(out, "{} [{}] ", self.prefix, self.trigger).unwrap();
        if let Some(hot) = self.hot_egress {
            write!(
                out,
                "hot egress {hot} at {:.1}% util, {:.1} Mbps to move: ",
                self.hot_util * 100.0,
                self.demand_mbps
            )
            .unwrap();
        } else {
            write!(out, "{:.1} Mbps: ", self.demand_mbps).unwrap();
        }
        match self.chosen_egress {
            Some(chosen) => {
                let kind = self.chosen_kind.as_deref().unwrap_or("?");
                write!(out, "chose egress {chosen} ({kind})").unwrap();
                if let Some(cost) = self.chosen_usd_per_mbps {
                    if cost > 0.0 {
                        write!(out, " at ${cost:.2}/Mbps").unwrap();
                    } else {
                        out.push_str(" at $0/Mbps");
                    }
                }
            }
            None => out.push_str("no alternate chosen"),
        }
        write!(out, " — {}", self.verdict.label()).unwrap();
        for alt in &self.rejected {
            match (alt.egress, &alt.reason) {
                (
                    Some(e),
                    RejectReason::NoSpareCapacity {
                        projected_mbps,
                        limit_mbps,
                    },
                ) => {
                    write!(
                        out,
                        "\n  rejected egress {e}: no spare capacity ({projected_mbps:.1}/{limit_mbps:.1} Mbps)"
                    )
                    .unwrap();
                }
                (
                    Some(e),
                    RejectReason::CostlierAlternate {
                        usd_per_mbps,
                        chosen_usd_per_mbps,
                    },
                ) => {
                    write!(
                        out,
                        "\n  rejected egress {e}: costlier alternate (${usd_per_mbps:.2}/Mbps vs ${chosen_usd_per_mbps:.2}/Mbps chosen, saves ${:.2}/Mbps)",
                        usd_per_mbps - chosen_usd_per_mbps
                    )
                    .unwrap();
                }
                (Some(e), reason) => {
                    write!(out, "\n  rejected egress {e}: {}", reason.label()).unwrap();
                }
                (None, reason) => {
                    write!(out, "\n  rejected: {}", reason.label()).unwrap();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExplainRecord {
        ExplainRecord {
            prefix: "1.2.3.0/24".into(),
            trigger: "capacity".into(),
            hot_egress: Some(1),
            hot_util: 1.07,
            demand_mbps: 80.0,
            chosen_egress: Some(3),
            chosen_kind: Some("transit".into()),
            chosen_usd_per_mbps: None,
            rejected: vec![RejectedAlternative {
                egress: Some(2),
                kind: Some("public".into()),
                reason: RejectReason::NoSpareCapacity {
                    projected_mbps: 98.2,
                    limit_mbps: 95.0,
                },
            }],
            verdict: ExplainVerdict::Emitted,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let rec = record();
        let json = serde_json::to_string(&rec).unwrap();
        let back: ExplainRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn render_names_the_whole_chain() {
        let text = record().render();
        assert!(text.contains("1.2.3.0/24"));
        assert!(text.contains("hot egress 1"));
        assert!(text.contains("chose egress 3 (transit)"));
        assert!(text.contains("rejected egress 2: no spare capacity (98.2/95.0 Mbps)"));
        assert!(text.contains("emitted"));
    }

    #[test]
    fn render_handles_no_route() {
        let rec = ExplainRecord {
            chosen_egress: None,
            chosen_kind: None,
            rejected: vec![RejectedAlternative {
                egress: None,
                kind: None,
                reason: RejectReason::NoRoute,
            }],
            verdict: ExplainVerdict::NoFeasibleAlternate,
            ..record()
        };
        let text = rec.render();
        assert!(text.contains("no alternate chosen"));
        assert!(text.contains("rejected: no route"));
    }

    #[test]
    fn render_shows_cost_provenance() {
        let rec = ExplainRecord {
            chosen_usd_per_mbps: Some(0.5),
            rejected: vec![RejectedAlternative {
                egress: Some(5),
                kind: Some("transit".into()),
                reason: RejectReason::CostlierAlternate {
                    usd_per_mbps: 3.0,
                    chosen_usd_per_mbps: 0.5,
                },
            }],
            ..record()
        };
        let text = rec.render();
        assert!(text.contains("chose egress 3 (transit) at $0.50/Mbps"));
        assert!(text.contains(
            "rejected egress 5: costlier alternate ($3.00/Mbps vs $0.50/Mbps chosen, saves $2.50/Mbps)"
        ));
        // Pre-cost records render unchanged.
        assert!(!record().render().contains("$"));
        // Free targets are labeled explicitly.
        let free = ExplainRecord {
            chosen_usd_per_mbps: Some(0.0),
            ..record()
        };
        assert!(free.render().contains("at $0/Mbps"));
    }

    #[test]
    fn old_records_without_cost_fields_still_parse() {
        let json = r#"{"prefix":"1.2.3.0/24","trigger":"capacity","hot_egress":1,
            "hot_util":1.0,"demand_mbps":10.0,"chosen_egress":3,
            "chosen_kind":"transit","rejected":[],"verdict":"Emitted"}"#;
        let rec: ExplainRecord = serde_json::from_str(json).unwrap();
        assert_eq!(rec.chosen_usd_per_mbps, None);
    }

    #[test]
    fn verdict_labels_are_distinct() {
        let verdicts = [
            ExplainVerdict::Emitted,
            ExplainVerdict::NoFeasibleAlternate,
            ExplainVerdict::DroppedDetourBudget,
            ExplainVerdict::DroppedOverrideCap,
            ExplainVerdict::DroppedBlastRadius,
            ExplainVerdict::DroppedStaleInput,
            ExplainVerdict::DroppedFailOpen,
        ];
        let labels: std::collections::HashSet<&str> = verdicts.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), verdicts.len());
    }
}
