//! Sinks: where telemetry records go.
//!
//! A [`Sink`] receives every [`TelemetryRecord`] in arrival order. Two
//! implementations cover the workspace's needs: [`MemorySink`] (tests,
//! `efctl trace` / `efctl explain`) and [`JsonLinesSink`] (one JSON record
//! per line to any writer; the experiment binaries point it at a file via
//! the `EF_TELEMETRY` environment variable).
//!
//! Sinks are `Send + Sync` because the simulator steps PoPs on parallel
//! threads sharing one handle. Records from different PoPs may therefore
//! interleave in nondeterministic order between runs — that is acceptable
//! for a debugging stream and is exactly why telemetry output is kept out
//! of the byte-compared `results/` files.

use std::io::Write;
use std::sync::Mutex;

use crate::event::{Event, TelemetryRecord};
use crate::explain::ExplainRecord;
use crate::placement::PlacementRecord;
use crate::registry::MetricsSnapshot;

/// A destination for telemetry records.
pub trait Sink: Send + Sync {
    /// Receives one record. Implementations must not panic on I/O trouble:
    /// telemetry failure must never take down the run it observes.
    fn write(&self, record: &TelemetryRecord);
}

/// Buffers records in memory, for tests and the CLI trace/explain views.
#[derive(Default)]
pub struct MemorySink {
    records: Mutex<Vec<TelemetryRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Everything received so far, in arrival order.
    pub fn records(&self) -> Vec<TelemetryRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Just the events.
    pub fn events(&self) -> Vec<Event> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter_map(|r| r.as_event().cloned())
            .collect()
    }

    /// Events with the given name.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }

    /// Just the explain records, as `(pop, now_ms, record)`.
    pub fn explains(&self) -> Vec<(u16, u64, ExplainRecord)> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter_map(|r| r.as_explain().map(|(p, t, e)| (p, t, e.clone())))
            .collect()
    }

    /// Just the placement records, as `(pop, now_ms, record)`.
    pub fn placements(&self) -> Vec<(u16, u64, PlacementRecord)> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter_map(|r| r.as_placement().map(|(p, t, rec)| (p, t, rec.clone())))
            .collect()
    }

    /// Just the metric snapshots, as `(pop, now_ms, snapshot)`.
    pub fn snapshots(&self) -> Vec<(u16, u64, MetricsSnapshot)> {
        self.records
            .lock()
            .unwrap()
            .iter()
            .filter_map(|r| match r {
                TelemetryRecord::Metrics {
                    pop,
                    now_ms,
                    snapshot,
                } => Some((*pop, *now_ms, snapshot.clone())),
                _ => None,
            })
            .collect()
    }

    /// Number of records received.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when nothing was received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything received so far.
    pub fn clear(&self) {
        self.records.lock().unwrap().clear();
    }
}

impl Sink for MemorySink {
    fn write(&self, record: &TelemetryRecord) {
        self.records.lock().unwrap().push(record.clone());
    }
}

/// Writes one JSON record per line to any writer.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps a writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) a file sink.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }
}

impl Sink for JsonLinesSink {
    fn write(&self, record: &TelemetryRecord) {
        if let Ok(json) = serde_json::to_string(record) {
            let mut out = self.out.lock().unwrap();
            // Telemetry failure must never fail the run: drop on error.
            let _ = writeln!(out, "{json}");
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn event(name: &str) -> TelemetryRecord {
        TelemetryRecord::Event(Event {
            name: name.into(),
            pop: 1,
            now_ms: 30_000,
            fields: BTreeMap::new(),
            wall_us: None,
        })
    }

    #[test]
    fn memory_sink_preserves_order_and_filters() {
        let sink = MemorySink::new();
        sink.write(&event("a"));
        sink.write(&TelemetryRecord::Metrics {
            pop: 1,
            now_ms: 30_000,
            snapshot: MetricsSnapshot::default(),
        });
        sink.write(&event("b"));
        assert_eq!(sink.len(), 3);
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(sink.events_named("a").len(), 1);
        assert_eq!(sink.snapshots().len(), 1);
        assert!(sink.explains().is_empty());
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(SharedWriter(shared.clone())));
        sink.write(&event("x"));
        sink.write(&event("y"));
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let rec: TelemetryRecord = serde_json::from_str(line).unwrap();
            assert!(rec.as_event().is_some());
        }
    }
}
