//! The metrics registry: counters, gauges, and histograms.
//!
//! Names are dotted strings (`overrides.announced`, `pop3.detoured_mbps`).
//! The registry is `Sync` (a single mutex over three sorted maps) so
//! per-PoP controller threads can share one handle; contention is trivial
//! because instrumented code touches it a handful of times per epoch.
//!
//! [`MetricsRegistry::snapshot`] clones the current state into a
//! serializable [`MetricsSnapshot`]; the controller emits one per epoch
//! into the event stream.

use std::collections::BTreeMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Default histogram bounds for microsecond durations: powers of ten from
/// 10 µs to 10 s. Values land in the first bucket whose bound they do not
/// exceed; beyond the last bound they land in the overflow bucket.
pub const DURATION_US_BOUNDS: [f64; 7] = [
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
    10_000_000.0,
];

/// A fixed-bound histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Upper bounds of each bucket, ascending.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket, plus one overflow bucket at the end
    /// (`counts.len() == bounds.len() + 1`).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`) assuming
    /// observations are uniform within their bucket, interpolating between
    /// the bucket's bounds. Deterministic: depends only on the recorded
    /// counts. Returns 0 when empty; overflow-bucket ranks clamp to the
    /// last finite bound (the histogram has no upper edge past it).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = (q * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = seen + n;
            if rank <= next as f64 {
                let last = self.bounds.len() - 1;
                if idx > last {
                    // Overflow bucket: no upper edge to interpolate toward.
                    return self.bounds[last];
                }
                let lo = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let hi = self.bounds[idx];
                let into = (rank - seen as f64) / n as f64;
                return lo + (hi - lo) * into;
            }
            seen = next;
        }
        self.bounds[self.bounds.len() - 1]
    }
}

/// A point-in-time copy of the registry, serializable for the event stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Shared counters / gauges / histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter (creating it at zero).
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records a histogram observation with [`DURATION_US_BOUNDS`].
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, &DURATION_US_BOUNDS, value);
    }

    /// Records a histogram observation, creating the histogram with the
    /// given bounds on first use (later calls keep the original bounds).
    pub fn observe_with(&self, name: &str, bounds: &[f64], value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Copies the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Reads a single counter (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Reads a single gauge, when set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_replace() {
        let reg = MetricsRegistry::new();
        reg.inc("overrides.announced", 2);
        reg.inc("overrides.announced", 3);
        reg.set_gauge("pop0.detoured_mbps", 10.0);
        reg.set_gauge("pop0.detoured_mbps", 4.5);
        assert_eq!(reg.counter_value("overrides.announced"), 5);
        assert_eq!(reg.gauge_value("pop0.detoured_mbps"), Some(4.5));
        assert_eq!(reg.counter_value("missing"), 0);
        assert_eq!(reg.gauge_value("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 5000.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 1, 1, 2]);
        assert_eq!(h.count, 5);
        assert!((h.mean() - 5555.5 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_one_bucket() {
        let mut h = Histogram::new(&[10.0, 100.0]);
        for _ in 0..4 {
            h.observe(50.0); // all land in the (10, 100] bucket
        }
        // Ranks interpolate uniformly across the bucket's width.
        assert!((h.quantile(0.25) - 32.5).abs() < 1e-9);
        assert!((h.quantile(0.5) - 55.0).abs() < 1e-9);
        assert!((h.quantile(1.0) - 100.0).abs() < 1e-9);
        // q clamps rather than panics.
        assert!((h.quantile(-1.0) - h.quantile(0.0)).abs() < 1e-9);
        assert!((h.quantile(2.0) - h.quantile(1.0)).abs() < 1e-9);
    }

    #[test]
    fn quantile_clamps_overflow_to_last_bound() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5000.0);
        h.observe(9000.0);
        // p99 lands in the overflow bucket: clamp to the last bound.
        assert_eq!(h.quantile(0.99), 10.0);
        // The low tail still interpolates inside its finite bucket.
        assert!(h.quantile(0.01) <= 1.0);
        // Repeated calls are deterministic.
        assert_eq!(h.quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn snapshot_is_a_deterministic_copy() {
        let reg = MetricsRegistry::new();
        reg.inc("b", 1);
        reg.inc("a", 1);
        reg.observe("epoch_us", 42.0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters.keys().collect::<Vec<_>>(),
            vec!["a", "b"],
            "sorted keys"
        );
        assert_eq!(snap.histograms["epoch_us"].count, 1);
        // Snapshots serialize identically across repeated calls.
        let a = serde_json::to_string(&snap).unwrap();
        let b = serde_json::to_string(&reg.snapshot()).unwrap();
        assert_eq!(a, b);
        let back: MetricsSnapshot = serde_json::from_str(&a).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let reg = reg.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        reg.inc("ticks", 1);
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("ticks"), 400);
    }
}
