//! Placement provenance: why the global steering tier moved (or declined
//! to move) a user population between PoPs.
//!
//! The global tier's analogue of [`ExplainRecord`](crate::explain): one
//! [`PlacementRecord`] per population-level steering action, naming the
//! backend that carried it (DNS or anycast), the source PoP being drained,
//! every target PoP with the volume granted to it, and every candidate
//! that was rejected with the reason ([`PlacementRejectReason`]) — no
//! serving footprint, or an exhausted headroom budget from the epoch's
//! cross-PoP negotiation.
//!
//! Like explain records, placements use plain serializable types so the
//! provenance chain survives a JSON round trip and renders without the
//! control crates loaded.

use serde::{Deserialize, Serialize};

/// Why a candidate target PoP was not given (more) demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementRejectReason {
    /// The PoP serves none of this population's prefixes; users cannot be
    /// mapped to a PoP with no serving footprint.
    NoFootprint,
    /// The PoP's negotiated headroom budget for this epoch was exhausted
    /// before this population's demand was placed.
    NoHeadroom {
        /// Budget the PoP had left when this placement was attempted, Mbps.
        budget_mbps: f64,
    },
    /// The PoP is itself shifted away from (a drain source cannot also be
    /// a target).
    SourceShifted,
}

impl PlacementRejectReason {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementRejectReason::NoFootprint => "no footprint",
            PlacementRejectReason::NoHeadroom { .. } => "no headroom",
            PlacementRejectReason::SourceShifted => "source shifted",
        }
    }
}

/// One candidate PoP the placement pass rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectedTarget {
    /// The candidate PoP.
    pub pop: u16,
    /// Why it received nothing.
    pub reason: PlacementRejectReason,
}

/// One PoP that received part of the moved demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementTarget {
    /// The receiving PoP.
    pub pop: u16,
    /// Demand granted to it this epoch, Mbps.
    pub granted_mbps: f64,
}

/// The outcome of one population placement this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementVerdict {
    /// Demand moved to at least one target PoP.
    Applied,
    /// The backend holds an active shift but nothing moved this epoch
    /// (e.g. an anycast cutover still waiting out BGP convergence).
    Pending,
    /// Every candidate was rejected; the demand stayed at the source.
    NoFeasibleTarget,
}

impl PlacementVerdict {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementVerdict::Applied => "applied",
            PlacementVerdict::Pending => "pending",
            PlacementVerdict::NoFeasibleTarget => "no feasible target",
        }
    }
}

/// Provenance for one population-level steering action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRecord {
    /// The user population being steered (e.g. a region label).
    pub population: String,
    /// The steering backend that carried the move: `dns` or `anycast`.
    pub backend: String,
    /// What drove the action: `overload` (the source PoP reported
    /// unresolved overload) or `drain` (an earlier shift still active).
    pub trigger: String,
    /// The PoP demand is moving away from.
    pub from_pop: u16,
    /// Fraction of the population's demand at the source currently mapped
    /// away, after this epoch's backend update.
    pub away_fraction: f64,
    /// Demand moved away from the source this epoch, Mbps.
    pub moved_mbps: f64,
    /// Targets that received demand, in PoP order.
    pub targets: Vec<PlacementTarget>,
    /// Candidates rejected, in PoP order.
    pub rejected: Vec<RejectedTarget>,
    /// What ultimately happened.
    pub verdict: PlacementVerdict,
}

impl PlacementRecord {
    /// True when demand actually moved this epoch.
    pub fn applied(&self) -> bool {
        self.verdict == PlacementVerdict::Applied
    }

    /// One-paragraph human rendering of the placement chain.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} [{}/{}] pop{}: {:.0}% away, {:.1} Mbps moved",
            self.population,
            self.backend,
            self.trigger,
            self.from_pop,
            self.away_fraction * 100.0,
            self.moved_mbps
        ));
        out.push_str(&format!(" — {}", self.verdict.label()));
        for t in &self.targets {
            out.push_str(&format!("\n  -> pop{}: {:.1} Mbps", t.pop, t.granted_mbps));
        }
        for r in &self.rejected {
            match &r.reason {
                PlacementRejectReason::NoHeadroom { budget_mbps } => {
                    out.push_str(&format!(
                        "\n  rejected pop{}: no headroom ({budget_mbps:.1} Mbps budget left)",
                        r.pop
                    ));
                }
                reason => {
                    out.push_str(&format!("\n  rejected pop{}: {}", r.pop, reason.label()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PlacementRecord {
        PlacementRecord {
            population: "EU".into(),
            backend: "dns".into(),
            trigger: "overload".into(),
            from_pop: 1,
            away_fraction: 0.35,
            moved_mbps: 1234.5,
            targets: vec![
                PlacementTarget {
                    pop: 0,
                    granted_mbps: 800.0,
                },
                PlacementTarget {
                    pop: 2,
                    granted_mbps: 434.5,
                },
            ],
            rejected: vec![
                RejectedTarget {
                    pop: 3,
                    reason: PlacementRejectReason::NoHeadroom { budget_mbps: 0.0 },
                },
                RejectedTarget {
                    pop: 4,
                    reason: PlacementRejectReason::NoFootprint,
                },
            ],
            verdict: PlacementVerdict::Applied,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let rec = record();
        let json = serde_json::to_string(&rec).unwrap();
        let back: PlacementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn render_names_the_whole_chain() {
        let text = record().render();
        assert!(text.contains("EU [dns/overload] pop1"));
        assert!(text.contains("35% away"));
        assert!(text.contains("-> pop0: 800.0 Mbps"));
        assert!(text.contains("rejected pop3: no headroom (0.0 Mbps budget left)"));
        assert!(text.contains("rejected pop4: no footprint"));
        assert!(text.contains("applied"));
    }

    #[test]
    fn verdict_and_reason_labels_are_distinct() {
        let verdicts = [
            PlacementVerdict::Applied,
            PlacementVerdict::Pending,
            PlacementVerdict::NoFeasibleTarget,
        ];
        let labels: std::collections::HashSet<&str> = verdicts.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), verdicts.len());
        let reasons = [
            PlacementRejectReason::NoFootprint,
            PlacementRejectReason::NoHeadroom { budget_mbps: 1.0 },
            PlacementRejectReason::SourceShifted,
        ];
        let labels: std::collections::HashSet<&str> = reasons.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), reasons.len());
    }

    #[test]
    fn applied_tracks_verdict() {
        assert!(record().applied());
        let pending = PlacementRecord {
            verdict: PlacementVerdict::Pending,
            ..record()
        };
        assert!(!pending.applied());
    }
}
