//! Placement provenance: why the global steering tier moved (or declined
//! to move) a user population between PoPs.
//!
//! The global tier's analogue of [`ExplainRecord`](crate::explain): one
//! [`PlacementRecord`] per population-level steering action, naming the
//! backend that carried it (DNS or anycast), the source PoP being drained,
//! every target PoP with the volume granted to it, and every candidate
//! that was rejected with the reason ([`PlacementRejectReason`]) — no
//! serving footprint, or an exhausted headroom budget from the epoch's
//! cross-PoP negotiation.
//!
//! Like explain records, placements use plain serializable types so the
//! provenance chain survives a JSON round trip and renders without the
//! control crates loaded.

use serde::{Deserialize, Serialize};

/// Why a candidate target PoP was not given (more) demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementRejectReason {
    /// The PoP serves none of this population's prefixes; users cannot be
    /// mapped to a PoP with no serving footprint.
    NoFootprint,
    /// The PoP's negotiated headroom budget for this epoch was exhausted
    /// before this population's demand was placed.
    NoHeadroom {
        /// Budget the PoP had left when this placement was attempted, Mbps.
        budget_mbps: f64,
    },
    /// The PoP is itself shifted away from (a drain source cannot also be
    /// a target).
    SourceShifted,
    /// The PoP's last report is too old to trust: the freshness guard
    /// decayed its usable budget to zero rather than steer users toward a
    /// headroom number that may be fiction.
    StaleReport {
        /// Age of the PoP's last report, controller epochs.
        age_epochs: u64,
    },
}

impl PlacementRejectReason {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementRejectReason::NoFootprint => "no footprint",
            PlacementRejectReason::NoHeadroom { .. } => "no headroom",
            PlacementRejectReason::SourceShifted => "source shifted",
            PlacementRejectReason::StaleReport { .. } => "stale report",
        }
    }
}

/// A degradation guard that shaped (suppressed or bounded) a placement.
/// Carried on [`PlacementRecord`] so `efctl explain --global` can answer
/// *why* a move was held back, not just that it was.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementGuard {
    /// A majority of PoP reports were missing this epoch: the tier froze
    /// every away-fraction and initiated no new moves (fail-static).
    FailStatic,
    /// The global controller itself was down; placements applied frozen.
    ControllerFrozen,
    /// The per-epoch global blast-radius cap bound total moved demand.
    BlastRadiusCapped {
        /// The cap in force this epoch, Mbps.
        cap_mbps: f64,
    },
    /// A restore (traffic returning to this source) was suppressed by the
    /// move-hysteresis hold-down window.
    HoldDown {
        /// Epochs left before the hold-down expires.
        epochs_left: u64,
    },
}

impl PlacementGuard {
    /// Short label for rendering and metrics tagging.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementGuard::FailStatic => "fail_static",
            PlacementGuard::ControllerFrozen => "controller_frozen",
            PlacementGuard::BlastRadiusCapped { .. } => "blast_radius_capped",
            PlacementGuard::HoldDown { .. } => "hold_down",
        }
    }
}

/// One candidate PoP the placement pass rejected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectedTarget {
    /// The candidate PoP.
    pub pop: u16,
    /// Why it received nothing.
    pub reason: PlacementRejectReason,
}

/// One PoP that received part of the moved demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementTarget {
    /// The receiving PoP.
    pub pop: u16,
    /// Demand granted to it this epoch, Mbps.
    pub granted_mbps: f64,
}

/// The outcome of one population placement this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementVerdict {
    /// Demand moved to at least one target PoP.
    Applied,
    /// The backend holds an active shift but nothing moved this epoch
    /// (e.g. an anycast cutover still waiting out BGP convergence).
    Pending,
    /// Every candidate was rejected; the demand stayed at the source.
    NoFeasibleTarget,
}

impl PlacementVerdict {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementVerdict::Applied => "applied",
            PlacementVerdict::Pending => "pending",
            PlacementVerdict::NoFeasibleTarget => "no feasible target",
        }
    }
}

/// Provenance for one population-level steering action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRecord {
    /// The user population being steered (e.g. a region label).
    pub population: String,
    /// The steering backend that carried the move: `dns` or `anycast`.
    pub backend: String,
    /// What drove the action: `overload` (the source PoP reported
    /// unresolved overload) or `drain` (an earlier shift still active).
    pub trigger: String,
    /// The PoP demand is moving away from.
    pub from_pop: u16,
    /// Fraction of the population's demand at the source currently mapped
    /// away, after this epoch's backend update.
    pub away_fraction: f64,
    /// Demand moved away from the source this epoch, Mbps.
    pub moved_mbps: f64,
    /// Targets that received demand, in PoP order.
    pub targets: Vec<PlacementTarget>,
    /// Candidates rejected, in PoP order.
    pub rejected: Vec<RejectedTarget>,
    /// What ultimately happened.
    pub verdict: PlacementVerdict,
    /// Degradation guards that shaped this placement, in evaluation order.
    /// Empty on a fully unguarded epoch; defaults to empty when parsing
    /// JSON written before the guard layer existed.
    #[serde(default)]
    pub guards: Vec<PlacementGuard>,
}

impl PlacementRecord {
    /// True when demand actually moved this epoch.
    pub fn applied(&self) -> bool {
        self.verdict == PlacementVerdict::Applied
    }

    /// One-paragraph human rendering of the placement chain.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} [{}/{}] pop{}: {:.0}% away, {:.1} Mbps moved",
            self.population,
            self.backend,
            self.trigger,
            self.from_pop,
            self.away_fraction * 100.0,
            self.moved_mbps
        ));
        out.push_str(&format!(" — {}", self.verdict.label()));
        for g in &self.guards {
            match g {
                PlacementGuard::BlastRadiusCapped { cap_mbps } => {
                    out.push_str(&format!(
                        "\n  guard: blast-radius cap bound ({cap_mbps:.1} Mbps/epoch)"
                    ));
                }
                PlacementGuard::HoldDown { epochs_left } => {
                    out.push_str(&format!(
                        "\n  guard: restore held down ({epochs_left} epoch(s) left)"
                    ));
                }
                PlacementGuard::FailStatic => {
                    out.push_str("\n  guard: fail-static (majority of reports missing)");
                }
                PlacementGuard::ControllerFrozen => {
                    out.push_str("\n  guard: controller frozen (tier down)");
                }
            }
        }
        for t in &self.targets {
            out.push_str(&format!("\n  -> pop{}: {:.1} Mbps", t.pop, t.granted_mbps));
        }
        for r in &self.rejected {
            match &r.reason {
                PlacementRejectReason::NoHeadroom { budget_mbps } => {
                    out.push_str(&format!(
                        "\n  rejected pop{}: no headroom ({budget_mbps:.1} Mbps budget left)",
                        r.pop
                    ));
                }
                PlacementRejectReason::StaleReport { age_epochs } => {
                    out.push_str(&format!(
                        "\n  rejected pop{}: stale report ({age_epochs} epoch(s) old)",
                        r.pop
                    ));
                }
                reason => {
                    out.push_str(&format!("\n  rejected pop{}: {}", r.pop, reason.label()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PlacementRecord {
        PlacementRecord {
            population: "EU".into(),
            backend: "dns".into(),
            trigger: "overload".into(),
            from_pop: 1,
            away_fraction: 0.35,
            moved_mbps: 1234.5,
            targets: vec![
                PlacementTarget {
                    pop: 0,
                    granted_mbps: 800.0,
                },
                PlacementTarget {
                    pop: 2,
                    granted_mbps: 434.5,
                },
            ],
            rejected: vec![
                RejectedTarget {
                    pop: 3,
                    reason: PlacementRejectReason::NoHeadroom { budget_mbps: 0.0 },
                },
                RejectedTarget {
                    pop: 4,
                    reason: PlacementRejectReason::NoFootprint,
                },
            ],
            verdict: PlacementVerdict::Applied,
            guards: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let rec = record();
        let json = serde_json::to_string(&rec).unwrap();
        let back: PlacementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        let guarded = PlacementRecord {
            guards: vec![
                PlacementGuard::FailStatic,
                PlacementGuard::BlastRadiusCapped { cap_mbps: 500.0 },
                PlacementGuard::HoldDown { epochs_left: 2 },
            ],
            ..record()
        };
        let json = serde_json::to_string(&guarded).unwrap();
        let back: PlacementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, guarded);
    }

    #[test]
    fn pre_guard_records_still_parse() {
        // JSON written before the guard layer existed has no `guards` key.
        let json = serde_json::to_string(&record()).unwrap();
        let stripped = json
            .replace(",\"guards\":[]", "")
            .replace("\"guards\":[],", "");
        assert!(!stripped.contains("guards"));
        let back: PlacementRecord = serde_json::from_str(&stripped).unwrap();
        assert!(back.guards.is_empty());
        assert_eq!(back, record());
    }

    #[test]
    fn guard_render_names_the_suppression() {
        let guarded = PlacementRecord {
            guards: vec![
                PlacementGuard::FailStatic,
                PlacementGuard::ControllerFrozen,
                PlacementGuard::BlastRadiusCapped { cap_mbps: 512.5 },
                PlacementGuard::HoldDown { epochs_left: 3 },
            ],
            rejected: vec![RejectedTarget {
                pop: 5,
                reason: PlacementRejectReason::StaleReport { age_epochs: 4 },
            }],
            ..record()
        };
        let text = guarded.render();
        assert!(text.contains("guard: fail-static"));
        assert!(text.contains("guard: controller frozen"));
        assert!(text.contains("blast-radius cap bound (512.5 Mbps/epoch)"));
        assert!(text.contains("restore held down (3 epoch(s) left)"));
        assert!(text.contains("rejected pop5: stale report (4 epoch(s) old)"));
        let labels: std::collections::HashSet<&str> =
            guarded.guards.iter().map(|g| g.label()).collect();
        assert_eq!(labels.len(), guarded.guards.len());
    }

    #[test]
    fn render_names_the_whole_chain() {
        let text = record().render();
        assert!(text.contains("EU [dns/overload] pop1"));
        assert!(text.contains("35% away"));
        assert!(text.contains("-> pop0: 800.0 Mbps"));
        assert!(text.contains("rejected pop3: no headroom (0.0 Mbps budget left)"));
        assert!(text.contains("rejected pop4: no footprint"));
        assert!(text.contains("applied"));
    }

    #[test]
    fn verdict_and_reason_labels_are_distinct() {
        let verdicts = [
            PlacementVerdict::Applied,
            PlacementVerdict::Pending,
            PlacementVerdict::NoFeasibleTarget,
        ];
        let labels: std::collections::HashSet<&str> = verdicts.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), verdicts.len());
        let reasons = [
            PlacementRejectReason::NoFootprint,
            PlacementRejectReason::NoHeadroom { budget_mbps: 1.0 },
            PlacementRejectReason::SourceShifted,
        ];
        let labels: std::collections::HashSet<&str> = reasons.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), reasons.len());
    }

    #[test]
    fn applied_tracks_verdict() {
        assert!(record().applied());
        let pending = PlacementRecord {
            verdict: PlacementVerdict::Pending,
            ..record()
        };
        assert!(!pending.applied());
    }
}
