//! Structured events and the record envelope sinks receive.
//!
//! An [`Event`] is one named occurrence with flat, typed fields — the
//! JSON-lines analogue of a log line. Events, decision provenance, and
//! per-epoch metric snapshots all travel to a sink wrapped in a
//! [`TelemetryRecord`], so a single stream (file or memory) holds the
//! whole story of a run in arrival order.

use std::collections::BTreeMap;

use serde::{Deserialize, Error, Serialize, Value};

use crate::explain::ExplainRecord;
use crate::placement::PlacementRecord;
use crate::registry::MetricsSnapshot;

/// A scalar field value. Serialized untagged (as the bare JSON scalar), so
/// event lines read naturally: `{"util": 1.07, "egress": 3}`.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl Serialize for FieldValue {
    fn to_value(&self) -> Value {
        match self {
            FieldValue::Bool(b) => Value::Bool(*b),
            FieldValue::U64(n) => Value::U64(*n),
            FieldValue::I64(n) => Value::I64(*n),
            FieldValue::F64(f) => Value::F64(*f),
            FieldValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl Deserialize for FieldValue {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(FieldValue::Bool(*b)),
            Value::U64(n) => Ok(FieldValue::U64(*n)),
            Value::I64(n) => Ok(FieldValue::I64(*n)),
            Value::F64(f) => Ok(FieldValue::F64(*f)),
            Value::Str(s) => Ok(FieldValue::Str(s.clone())),
            other => Err(Error::expected("scalar field value", other)),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from!(
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured occurrence: a dotted name (`controller.fail_open.enter`,
/// `audit.override_leaked`, `fault.start`, …) plus flat typed fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Dotted event name.
    pub name: String,
    /// PoP the event happened at.
    pub pop: u16,
    /// Simulated time, ms.
    pub now_ms: u64,
    /// Flat typed payload (BTreeMap so serialization is deterministic).
    #[serde(default)]
    pub fields: BTreeMap<String, FieldValue>,
    /// Wall-clock microseconds since the sink was created. Only ever
    /// consumed by humans reading the log — never by control decisions, so
    /// its nondeterminism cannot leak into results.
    #[serde(default)]
    pub wall_us: Option<u64>,
}

impl Event {
    /// Convenience accessor for a field.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.get(name)
    }

    /// A field as a string, if it is one.
    pub fn str_field(&self, name: &str) -> Option<&str> {
        match self.fields.get(name) {
            Some(FieldValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// The envelope a [`Sink`](crate::sink::Sink) receives: every kind of
/// telemetry output in one stream, preserving arrival order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryRecord {
    /// A structured event.
    Event(Event),
    /// Decision provenance for one override decision.
    Explain {
        pop: u16,
        now_ms: u64,
        record: ExplainRecord,
    },
    /// A per-epoch snapshot of the metrics registry.
    Metrics {
        pop: u16,
        now_ms: u64,
        snapshot: MetricsSnapshot,
    },
    /// Placement provenance for one global-tier steering action. `pop` is
    /// the source PoP being drained (the global controller itself is not a
    /// PoP).
    Placement {
        pop: u16,
        now_ms: u64,
        record: PlacementRecord,
    },
}

impl TelemetryRecord {
    /// The event inside, if this record is one.
    pub fn as_event(&self) -> Option<&Event> {
        match self {
            TelemetryRecord::Event(e) => Some(e),
            _ => None,
        }
    }

    /// The explain record inside, if this record is one.
    pub fn as_explain(&self) -> Option<(u16, u64, &ExplainRecord)> {
        match self {
            TelemetryRecord::Explain {
                pop,
                now_ms,
                record,
            } => Some((*pop, *now_ms, record)),
            _ => None,
        }
    }

    /// The placement record inside, if this record is one.
    pub fn as_placement(&self) -> Option<(u16, u64, &PlacementRecord)> {
        match self {
            TelemetryRecord::Placement {
                pop,
                now_ms,
                record,
            } => Some((*pop, *now_ms, record)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_values_serialize_untagged() {
        let json = serde_json::to_string(&FieldValue::F64(1.5)).unwrap();
        assert_eq!(json, "1.5");
        let json = serde_json::to_string(&FieldValue::Str("x".into())).unwrap();
        assert_eq!(json, "\"x\"");
        let back: FieldValue = serde_json::from_str("42").unwrap();
        assert!(matches!(back, FieldValue::U64(42) | FieldValue::I64(42)));
    }

    #[test]
    fn event_round_trips() {
        let mut fields = BTreeMap::new();
        fields.insert("egress".to_string(), FieldValue::U64(3));
        fields.insert("util".to_string(), FieldValue::F64(1.07));
        let event = Event {
            name: "controller.degraded.enter".into(),
            pop: 4,
            now_ms: 120_000,
            fields,
            wall_us: Some(17),
        };
        let json = serde_json::to_string(&TelemetryRecord::Event(event.clone())).unwrap();
        let back: TelemetryRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.as_event(), Some(&event));
    }

    #[test]
    fn missing_optional_fields_default() {
        let minimal = r#"{"Event":{"name":"x","pop":0,"now_ms":5}}"#;
        let rec: TelemetryRecord = serde_json::from_str(minimal).unwrap();
        let event = rec.as_event().unwrap();
        assert!(event.fields.is_empty());
        assert_eq!(event.wall_us, None);
    }
}
