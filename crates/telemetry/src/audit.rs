//! The override auditor.
//!
//! The paper's controller does not assume its BGP announcements took
//! effect — it verifies them (§5). After each epoch, the auditor re-runs
//! the peering routers' decision process over the live Loc-RIB and checks
//! two invariants:
//!
//! * **installed** — every override the controller believes is announced
//!   actually wins the decision process for its prefix *and* sits in the
//!   FIB pointing at the intended egress;
//! * **no leaks** — no controller-sourced route exists for a prefix the
//!   controller does not currently claim (withdrawn overrides must be
//!   gone).
//!
//! Violations become `audit.override_not_installed` /
//! `audit.override_leaked` events plus `audit.*` counters via
//! [`AuditOutcome::emit`]. The audit itself is read-only and
//! deterministic, and the controller runs it after every non-dry-run
//! epoch regardless of whether telemetry is attached: its findings feed
//! the post-epoch reconciliation pass (re-announce what is missing,
//! force-withdraw what leaked), while `emit` is the only part gated on a
//! telemetry sink.

use std::collections::HashSet;

use ef_bgp::decision;
use ef_bgp::route::EgressId;
use ef_bgp::router::BgpRouter;
use ef_net_types::Prefix;

use crate::handle::TelemetryHandle;

/// One audit violation.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// The prefix whose override state is wrong.
    pub prefix: String,
    /// The egress the controller intended (None for leak findings).
    pub expected_egress: Option<u32>,
    /// The egress actually observed (None when no route/FIB entry exists).
    pub found_egress: Option<u32>,
    /// What exactly went wrong.
    pub detail: String,
}

/// Result of one audit pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditOutcome {
    /// Overrides checked (the currently-announced set).
    pub checked: usize,
    /// Announced overrides that did not win the decision process or are
    /// not in the FIB at the intended egress.
    pub not_installed: Vec<AuditFinding>,
    /// Controller-sourced routes present for prefixes the controller does
    /// not claim (withdrawals that failed to take effect, or strays).
    pub leaked: Vec<AuditFinding>,
}

impl AuditOutcome {
    /// True when the epoch's override state verified completely.
    pub fn clean(&self) -> bool {
        self.not_installed.is_empty() && self.leaked.is_empty()
    }

    /// Total violations.
    pub fn failures(&self) -> usize {
        self.not_installed.len() + self.leaked.len()
    }

    /// Emits the findings as events and bumps the `audit.*` counters.
    pub fn emit(&self, telemetry: &TelemetryHandle, pop: u16, now_ms: u64) {
        if !telemetry.enabled() {
            return;
        }
        for f in &self.not_installed {
            telemetry.emit(
                pop,
                now_ms,
                "audit.override_not_installed",
                &[
                    ("prefix", f.prefix.as_str().into()),
                    ("expected_egress", f.expected_egress.unwrap_or(0).into()),
                    (
                        "found_egress",
                        f.found_egress.map(u64::from).unwrap_or(0).into(),
                    ),
                    ("detail", f.detail.as_str().into()),
                ],
            );
        }
        for f in &self.leaked {
            telemetry.emit(
                pop,
                now_ms,
                "audit.override_leaked",
                &[
                    ("prefix", f.prefix.as_str().into()),
                    (
                        "found_egress",
                        f.found_egress.map(u64::from).unwrap_or(0).into(),
                    ),
                    ("detail", f.detail.as_str().into()),
                ],
            );
        }
        telemetry.counter("audit.checked", self.checked as u64);
        telemetry.counter("audit.failures", self.failures() as u64);
        telemetry.gauge("audit.failures_last_epoch", self.failures() as f64);
    }
}

/// Audits the router's override state against what the controller believes
/// it has announced (`expected`, at most one entry per prefix) and what it
/// withdrew this epoch (`withdrawn`, re-checked explicitly even though the
/// full leak scan subsumes it — a withdrawal that left a FIB entry behind
/// is the likeliest bug).
pub fn audit_overrides(
    router: &BgpRouter,
    expected: &[(Prefix, EgressId)],
    withdrawn: &[Prefix],
) -> AuditOutcome {
    let mut outcome = AuditOutcome {
        checked: expected.len(),
        ..Default::default()
    };

    // Installed check: each announced override must win the decision
    // process and own the FIB entry.
    for (prefix, target) in expected {
        let best = decision::best_rec(router.candidates(prefix));
        let fib = router.fib_entry(prefix);
        let detail = match (best, fib) {
            (None, _) => Some("no route at all for announced override".to_string()),
            (Some(b), _) if !b.is_override() => Some(format!(
                "organic route via egress {} wins over the override",
                b.egress.0
            )),
            (Some(b), _) if b.egress != *target => Some(format!(
                "override installed toward egress {} instead of {}",
                b.egress.0, target.0
            )),
            (Some(_), None) => Some("decision winner missing from the FIB".to_string()),
            (Some(_), Some(f)) if !f.is_override || f.egress != *target => Some(format!(
                "FIB entry disagrees (egress {}, override={})",
                f.egress.0, f.is_override
            )),
            _ => None,
        };
        if let Some(detail) = detail {
            outcome.not_installed.push(AuditFinding {
                prefix: prefix.to_string(),
                expected_egress: Some(target.0),
                found_egress: best.map(|b| b.egress.0).or(fib.map(|f| f.egress.0)),
                detail,
            });
        }
    }

    // Leak scan: any controller-sourced route for an unclaimed prefix.
    let claimed: HashSet<Prefix> = expected.iter().map(|(p, _)| *p).collect();
    for (prefix, candidates) in router.iter_candidates() {
        if claimed.contains(prefix) {
            continue;
        }
        if let Some(route) = candidates.iter().find(|r| r.is_override()) {
            outcome.leaked.push(AuditFinding {
                prefix: prefix.to_string(),
                expected_egress: None,
                found_egress: Some(route.egress.0),
                detail: "controller route present for unclaimed prefix".to_string(),
            });
        }
    }
    // Withdrawn-this-epoch FIB check (catches a FIB that kept a dead route).
    for prefix in withdrawn {
        if claimed.contains(prefix) {
            continue;
        }
        let has_rib_leak = outcome
            .leaked
            .iter()
            .any(|f| f.prefix == prefix.to_string());
        if let Some(f) = router.fib_entry(prefix) {
            if f.is_override && !has_rib_leak {
                outcome.leaked.push(AuditFinding {
                    prefix: prefix.to_string(),
                    expected_egress: None,
                    found_egress: Some(f.egress.0),
                    detail: "withdrawn override still in the FIB".to_string(),
                });
            }
        }
    }

    // Deterministic report order regardless of RIB iteration order.
    outcome
        .not_installed
        .sort_by(|a, b| a.prefix.cmp(&b.prefix));
    outcome.leaked.sort_by(|a, b| a.prefix.cmp(&b.prefix));
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::peer::{PeerId, PeerKind};
    use ef_bgp::policy::Policy;
    use ef_bgp::router::{PeerAttachment, PeerStub, RouterConfig};
    use ef_net_types::{Asn, Community};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// A router with one private peer (egress 1) and one transit
    /// (egress 2) announcing `prefixes`, plus an established controller
    /// pseudo-peer whose marker community lifts injected routes.
    fn world(prefixes: &[&str]) -> (BgpRouter, PeerStub, Community) {
        let marker = Community::new(32934, 999);
        let mut router = BgpRouter::new(RouterConfig {
            name: "pr".into(),
            asn: Asn::LOCAL,
            router_id: "10.0.0.1".parse().unwrap(),
        });
        for (id, asn, kind, egress) in [
            (1u64, 65001u32, PeerKind::PrivatePeer, 1u32),
            (2, 65010, PeerKind::Transit, 2),
        ] {
            router.add_peer(PeerAttachment {
                peer: PeerId(id),
                peer_asn: Asn(asn),
                kind,
                egress: EgressId(egress),
                policy: Policy::default_import(Asn::LOCAL, kind),
                max_prefixes: 0,
            });
        }
        router.add_peer(PeerAttachment {
            peer: PeerId(1000),
            peer_asn: Asn::LOCAL,
            kind: PeerKind::Controller,
            egress: EgressId(0),
            policy: Policy::controller_import(marker),
            max_prefixes: 0,
        });
        let mut peer = PeerStub::new(PeerId(1), Asn(65001), "10.9.0.1".parse().unwrap());
        let mut transit = PeerStub::new(PeerId(2), Asn(65010), "10.9.0.2".parse().unwrap());
        let mut ctl = PeerStub::new(PeerId(1000), Asn::LOCAL, "10.200.0.1".parse().unwrap());
        peer.pump(&mut router, 0);
        transit.pump(&mut router, 0);
        ctl.pump(&mut router, 0);
        for prefix in prefixes {
            peer.announce(
                &mut router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65001)]),
                    ..Default::default()
                },
                0,
            );
            transit.announce(
                &mut router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65010)]),
                    ..Default::default()
                },
                0,
            );
        }
        (router, ctl, marker)
    }

    fn inject(router: &mut BgpRouter, ctl: &mut PeerStub, marker: Community, prefix: &str) {
        let mut attrs = PathAttributes {
            origin: ef_bgp::attrs::Origin::Igp,
            next_hop: Some(EgressId(2).to_next_hop().unwrap()),
            ..Default::default()
        };
        attrs.add_community(marker);
        ctl.send_update(
            router,
            ef_bgp::message::UpdateMessage::announce(p(prefix), attrs),
            10,
        );
    }

    #[test]
    fn clean_when_state_matches() {
        let (mut router, mut ctl, marker) = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        inject(&mut router, &mut ctl, marker, "1.0.0.0/24");
        let outcome = audit_overrides(&router, &[(p("1.0.0.0/24"), EgressId(2))], &[]);
        assert!(outcome.clean(), "{outcome:?}");
        assert_eq!(outcome.checked, 1);
    }

    #[test]
    fn missing_injection_is_not_installed() {
        let (router, _ctl, _marker) = world(&["1.0.0.0/24"]);
        // Claim an override that was never injected.
        let outcome = audit_overrides(&router, &[(p("1.0.0.0/24"), EgressId(2))], &[]);
        assert_eq!(outcome.not_installed.len(), 1);
        assert!(outcome.not_installed[0].detail.contains("organic route"));
        assert!(outcome.leaked.is_empty());
    }

    #[test]
    fn wrong_target_is_not_installed() {
        let (mut router, mut ctl, marker) = world(&["1.0.0.0/24"]);
        inject(&mut router, &mut ctl, marker, "1.0.0.0/24"); // toward egress 2
        let outcome = audit_overrides(&router, &[(p("1.0.0.0/24"), EgressId(1))], &[]);
        assert_eq!(outcome.not_installed.len(), 1);
        assert!(outcome.not_installed[0].detail.contains("instead of"));
    }

    #[test]
    fn unclaimed_injection_is_a_leak() {
        let (mut router, mut ctl, marker) = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        inject(&mut router, &mut ctl, marker, "2.0.0.0/24");
        let outcome = audit_overrides(&router, &[], &[p("2.0.0.0/24")]);
        assert_eq!(outcome.leaked.len(), 1);
        assert_eq!(outcome.leaked[0].prefix, "2.0.0.0/24");
        assert_eq!(outcome.leaked[0].found_egress, Some(2));
    }

    #[test]
    fn proper_withdrawal_audits_clean() {
        let (mut router, mut ctl, marker) = world(&["1.0.0.0/24"]);
        inject(&mut router, &mut ctl, marker, "1.0.0.0/24");
        ctl.send_update(
            &mut router,
            ef_bgp::message::UpdateMessage::withdraw([p("1.0.0.0/24")]),
            20,
        );
        let outcome = audit_overrides(&router, &[], &[p("1.0.0.0/24")]);
        assert!(outcome.clean(), "{outcome:?}");
    }
}
