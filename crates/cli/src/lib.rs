//! Library backing `efctl`: argument parsing and command implementations,
//! kept out of `main.rs` so they are unit-testable.
//!
//! `efctl` is the operator's front door to the reproduction:
//!
//! ```text
//! efctl gen        [--seed N] [--pops N] [--prefixes N] [--out FILE]
//! efctl table1     [--seed N] [--pops N]
//! efctl diversity  [--seed N] [--pops N]
//! efctl run        [--seed N] [--hours H] [--baseline] [--hysteresis X]
//!                  [--epoch SECS] [--out FILE]
//! efctl chaos      [--seed N] [--hours H] [--schedule FILE]
//!                  [--chaos-seed N] [--events N] [--baseline] [--out FILE]
//! efctl trace      [--seed N] [--hours H] [--epoch SECS] [--limit N]
//! efctl explain PREFIX [--seed N] [--hours H] [--epoch SECS]
//! efctl global     [--seed N] [--hours H] [--backend dns|anycast]
//!                  [--cripple POP] [--epoch SECS] [--out FILE]
//! efctl help
//! ```
//!
//! Every command keeps its stdout machine-parseable (JSON, or JSON lines
//! for `trace`); human-readable tables and progress notes go to stderr so
//! `efctl ... | jq` always works. `--quiet` silences the stderr half.

use std::fmt::Write as _;

use ef_net_types::Prefix;
use ef_telemetry::{ExplainRecord, TelemetryHandle, TelemetryRecord};
use ef_topology::stats::{pop_summaries, route_diversity};
use ef_topology::{generate, GenConfig};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a deployment and dump it as JSON.
    Gen(CommonArgs),
    /// Print the Table-1-style PoP summary.
    Table1(CommonArgs),
    /// Print traffic-weighted route diversity.
    Diversity(CommonArgs),
    /// Run a simulation scenario and print/dump a report.
    Run(RunArgs),
    /// Run a scenario under a fault schedule (from file or generated).
    Chaos(ChaosArgs),
    /// Run a scenario with telemetry captured and dump the record stream.
    Trace(TraceArgs),
    /// Run a scenario and show decision provenance for one prefix.
    Explain(ExplainArgs),
    /// Run a scenario with the global steering tier and dump placements.
    Global(GlobalArgs),
    /// Judge a captured telemetry file: SLO table, percentiles, alerts.
    Report(ReportArgs),
    /// Tail a telemetry file as one-line health/alert/fault views.
    Watch(WatchArgs),
    /// Show usage.
    Help,
}

/// Options shared by deployment-shaped commands.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Generator seed.
    pub seed: u64,
    /// Number of PoPs.
    pub pops: usize,
    /// Number of prefixes.
    pub prefixes: usize,
    /// Optional output path for JSON.
    pub out: Option<String>,
    /// Suppress the human-readable stderr stream.
    pub quiet: bool,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            seed: 7,
            pops: 20,
            prefixes: 3000,
            out: None,
            quiet: false,
        }
    }
}

/// Options for `efctl run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Deployment options.
    pub common: CommonArgs,
    /// Simulated duration in hours.
    pub hours: f64,
    /// Run without the controller (baseline BGP).
    pub baseline: bool,
    /// Withdraw hysteresis (0 = paper-stateless).
    pub hysteresis: f64,
    /// Enable prefix splitting (§7 future work).
    pub split: bool,
    /// Enable the global demand shifter (future-work layer).
    pub global: bool,
    /// Controller epoch seconds.
    pub epoch_secs: u64,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            common: CommonArgs::default(),
            hours: 3.0,
            baseline: false,
            hysteresis: 0.0,
            split: false,
            global: false,
            epoch_secs: 30,
        }
    }
}

/// Options for `efctl chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosArgs {
    /// Deployment options.
    pub common: CommonArgs,
    /// Simulated duration in hours.
    pub hours: f64,
    /// Run without the controller (fault exposure of plain BGP).
    pub baseline: bool,
    /// Controller epoch seconds.
    pub epoch_secs: u64,
    /// JSON fault schedule to run (see `ef_chaos::FaultSchedule`); when
    /// absent, a schedule is generated from `chaos_seed`/`events`.
    pub schedule: Option<String>,
    /// Seed for the generated schedule.
    pub chaos_seed: u64,
    /// Number of generated fault events.
    pub events: usize,
    /// Named kind filter for generated schedules. `adversarial` samples
    /// only the hostile-ingest kinds (update corruption, session flap
    /// storms, partial injection loss); absent means every kind.
    pub profile: Option<String>,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        ChaosArgs {
            common: CommonArgs::default(),
            hours: 1.0,
            baseline: false,
            epoch_secs: 30,
            schedule: None,
            chaos_seed: 1,
            events: 8,
            profile: None,
        }
    }
}

/// Options for `efctl trace`: a scenario run with a memory sink attached,
/// dumped as JSON lines.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// Deployment options (`--out` redirects the JSON lines to a file).
    pub common: CommonArgs,
    /// Simulated duration in hours.
    pub hours: f64,
    /// Controller epoch seconds.
    pub epoch_secs: u64,
    /// Cap on the number of records printed (0 = everything).
    pub limit: usize,
    /// Only records from this PoP.
    pub pop: Option<u16>,
    /// Only records from this epoch index (`t_secs / epoch_secs`).
    pub epoch: Option<u64>,
    /// Only records of this kind: an event name (`epoch`,
    /// `health.sample`, ...) or a record category (`event`, `metrics`,
    /// `explain`, `placement`).
    pub kind: Option<String>,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            common: CommonArgs::default(),
            hours: 0.5,
            epoch_secs: 30,
            limit: 0,
            pop: None,
            epoch: None,
            kind: None,
        }
    }
}

/// Options for `efctl explain PREFIX`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainArgs {
    /// Deployment options.
    pub common: CommonArgs,
    /// Simulated duration in hours.
    pub hours: f64,
    /// Controller epoch seconds.
    pub epoch_secs: u64,
    /// The prefix to explain. A covering or covered prefix also matches,
    /// so `efctl explain 10.0.0.0/8` shows every decision inside that /8.
    pub prefix: String,
    /// Also run the global steering tier and render its placement
    /// provenance alongside the per-prefix decisions.
    pub global: bool,
}

impl Default for ExplainArgs {
    fn default() -> Self {
        ExplainArgs {
            common: CommonArgs::default(),
            hours: 0.5,
            epoch_secs: 30,
            prefix: String::new(),
            global: false,
        }
    }
}

/// Options for `efctl report FILE`: judge a captured JSON-lines
/// telemetry stream offline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// The telemetry JSON-lines file to judge.
    pub file: String,
    /// Exit with an error when any alert fired during the run.
    pub fail_on_alerts: bool,
    /// Suppress the human-readable stderr stream.
    pub quiet: bool,
}

/// Options for `efctl watch FILE`: tail a telemetry stream as one-line
/// health views. With `--once` the file is read to EOF and the command
/// exits; without it, `efctl` follows the file live.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchArgs {
    /// The telemetry JSON-lines file to tail.
    pub file: String,
    /// Read to EOF and exit instead of following.
    pub once: bool,
    /// Suppress the human-readable stderr stream.
    pub quiet: bool,
}

/// Options for `efctl global`: a scenario run with the user→PoP steering
/// tier enabled, reporting per-population placement state.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalArgs {
    /// Deployment options (`--out` redirects the JSON to a file).
    pub common: CommonArgs,
    /// Simulated duration in hours.
    pub hours: f64,
    /// Controller epoch seconds.
    pub epoch_secs: u64,
    /// Steering backend: `dns` or `anycast`.
    pub backend: String,
    /// Cripple this PoP's capacity to 1.2× its average demand before the
    /// run, so the evening peak forces the tier to steer.
    pub cripple: Option<usize>,
}

impl Default for GlobalArgs {
    fn default() -> Self {
        GlobalArgs {
            common: CommonArgs::default(),
            hours: 2.0,
            epoch_secs: 60,
            backend: "dns".into(),
            cripple: None,
        }
    }
}

/// What a command produced: machine-readable stdout (JSON / JSON lines)
/// and human-readable stderr (tables, notes). `main` prints each half to
/// its stream; tests assert on them separately.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Output {
    /// Machine-parseable result, printed to stdout.
    pub stdout: String,
    /// Human-readable rendering and notes, printed to stderr.
    pub stderr: String,
}

/// Usage text.
pub const USAGE: &str = "\
efctl — Edge Fabric reproduction CLI

Machine-readable JSON goes to stdout; human tables and notes go to
stderr (silence them with --quiet).

USAGE:
  efctl gen        [--seed N] [--pops N] [--prefixes N] [--out FILE]
  efctl table1     [--seed N] [--pops N] [--prefixes N]
  efctl diversity  [--seed N] [--pops N] [--prefixes N]
  efctl run        [--seed N] [--pops N] [--prefixes N] [--hours H]
                   [--baseline] [--hysteresis X] [--split] [--global]
                   [--epoch SECS] [--out FILE]
  efctl chaos      [--seed N] [--pops N] [--prefixes N] [--hours H]
                   [--schedule FILE] [--chaos-seed N] [--events N]
                   [--profile adversarial|global-partition] [--baseline]
                   [--epoch SECS] [--out FILE]

Chaos fault kinds: peer_failure, link_capacity_loss, bmp_stall,
sflow_loss, controller_crash, injector_loss, flash_crowd,
update_corruption (mangled UPDATEs, handled per RFC 7606),
session_flap_storm (flaps governed by backoff + damping), and
injector_partial_loss (dropped injections, retried + reconciled).
--profile adversarial samples only the last three.
--profile global-partition enables the global steering tier and
samples only the faults that break it: report_partition,
report_staleness, global_controller_crash, headroom_lie.
  efctl trace      [--seed N] [--pops N] [--prefixes N] [--hours H]
                   [--epoch SECS] [--limit N] [--pop N] [--at-epoch N]
                   [--kind NAME] [--out FILE]
  efctl explain PREFIX [--seed N] [--pops N] [--prefixes N]
                   [--hours H] [--epoch SECS] [--global]
  efctl global     [--seed N] [--pops N] [--prefixes N] [--hours H]
                   [--backend dns|anycast] [--cripple POP]
                   [--epoch SECS] [--out FILE]
  efctl report FILE [--fail-on-alerts]
  efctl watch  FILE [--once]
  efctl help

`global` runs with the user->PoP steering tier above per-PoP Edge
Fabric and prints each population's placement (away-fractions per PoP,
demand moved). --cripple caps one PoP's capacity below its peak demand
so the tier has something to do.

`trace` runs with the health tier attached, so the stream includes
health.sample and alert.* events. --pop / --at-epoch / --kind narrow
the dump (--kind takes an event name like epoch or health.sample, or a
record category: event, metrics, explain, placement).

`report` replays a captured JSON-lines telemetry file through the
health tier: SLO pass/fail table, per-PoP percentiles, and the alert
timeline (JSON on stdout, tables on stderr). --fail-on-alerts exits
nonzero when any alert fired — CI's calm-run gate. `watch` renders the
same file as a one-line-per-event live view; --once stops at EOF.

All commands accept --quiet.
";

/// Parsing failure with a human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Parses `argv[1..]` into a [`Command`].
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "gen" => Ok(Command::Gen(parse_common(rest)?)),
        "table1" => Ok(Command::Table1(parse_common(rest)?)),
        "diversity" => Ok(Command::Diversity(parse_common(rest)?)),
        "run" => Ok(Command::Run(parse_run(rest)?)),
        "chaos" => Ok(Command::Chaos(parse_chaos(rest)?)),
        "trace" => Ok(Command::Trace(parse_trace(rest)?)),
        "explain" => Ok(Command::Explain(parse_explain(rest)?)),
        "global" => Ok(Command::Global(parse_global(rest)?)),
        "report" => Ok(Command::Report(parse_report(rest)?)),
        "watch" => Ok(Command::Watch(parse_watch(rest)?)),
        other => Err(ParseError(format!(
            "unknown command {other:?}; try 'efctl help'"
        ))),
    }
}

fn take_value<'a>(
    flag: &str,
    iter: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str, ParseError> {
    iter.next()
        .map(|s| s.as_str())
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| ParseError(format!("{flag}: cannot parse {value:?}")))
}

fn parse_common(args: &[String]) -> Result<CommonArgs, ParseError> {
    let mut out = CommonArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.out = Some(take_value(flag, &mut iter)?.to_string()),
            "--quiet" => out.quiet = true,
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_run(args: &[String]) -> Result<RunArgs, ParseError> {
    let mut out = RunArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.common.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.common.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.common.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.common.out = Some(take_value(flag, &mut iter)?.to_string()),
            "--quiet" => out.common.quiet = true,
            "--hours" => out.hours = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--baseline" => out.baseline = true,
            "--split" => out.split = true,
            "--global" => out.global = true,
            "--hysteresis" => out.hysteresis = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--epoch" => out.epoch_secs = parse_num(flag, take_value(flag, &mut iter)?)?,
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    if out.hours <= 0.0 {
        return Err(ParseError("--hours must be positive".into()));
    }
    Ok(out)
}

fn parse_chaos(args: &[String]) -> Result<ChaosArgs, ParseError> {
    let mut out = ChaosArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.common.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.common.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.common.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.common.out = Some(take_value(flag, &mut iter)?.to_string()),
            "--quiet" => out.common.quiet = true,
            "--hours" => out.hours = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--baseline" => out.baseline = true,
            "--epoch" => out.epoch_secs = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--schedule" => out.schedule = Some(take_value(flag, &mut iter)?.to_string()),
            "--chaos-seed" => out.chaos_seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--events" => out.events = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--profile" => out.profile = Some(take_value(flag, &mut iter)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    if out.hours <= 0.0 {
        return Err(ParseError("--hours must be positive".into()));
    }
    if out.events == 0 && out.schedule.is_none() {
        return Err(ParseError(
            "--events must be positive (or pass --schedule)".into(),
        ));
    }
    if let Some(profile) = &out.profile {
        if profile != "adversarial" && profile != "global-partition" {
            return Err(ParseError(format!(
                "unknown profile {profile:?}; known profiles: adversarial, global-partition"
            )));
        }
        if out.schedule.is_some() {
            return Err(ParseError(
                "--profile only applies to generated schedules; drop --schedule".into(),
            ));
        }
    }
    Ok(out)
}

fn parse_trace(args: &[String]) -> Result<TraceArgs, ParseError> {
    let mut out = TraceArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.common.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.common.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.common.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.common.out = Some(take_value(flag, &mut iter)?.to_string()),
            "--quiet" => out.common.quiet = true,
            "--hours" => out.hours = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--epoch" => out.epoch_secs = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--limit" => out.limit = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pop" => out.pop = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
            "--at-epoch" => out.epoch = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
            "--kind" => out.kind = Some(take_value(flag, &mut iter)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    if out.hours <= 0.0 {
        return Err(ParseError("--hours must be positive".into()));
    }
    Ok(out)
}

fn parse_report(args: &[String]) -> Result<ReportArgs, ParseError> {
    let mut file = None;
    let mut fail_on_alerts = false;
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--fail-on-alerts" => fail_on_alerts = true,
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => {
                return Err(ParseError(format!("unknown flag {flag:?}")))
            }
            positional => {
                if file.is_some() {
                    return Err(ParseError(format!(
                        "report takes one file, got a second: {positional:?}"
                    )));
                }
                file = Some(positional.to_string());
            }
        }
    }
    let file = file.ok_or_else(|| {
        ParseError("report needs a telemetry file, e.g. 'efctl report run.jsonl'".into())
    })?;
    Ok(ReportArgs {
        file,
        fail_on_alerts,
        quiet,
    })
}

fn parse_watch(args: &[String]) -> Result<WatchArgs, ParseError> {
    let mut file = None;
    let mut once = false;
    let mut quiet = false;
    for arg in args {
        match arg.as_str() {
            "--once" => once = true,
            "--quiet" => quiet = true,
            flag if flag.starts_with("--") => {
                return Err(ParseError(format!("unknown flag {flag:?}")))
            }
            positional => {
                if file.is_some() {
                    return Err(ParseError(format!(
                        "watch takes one file, got a second: {positional:?}"
                    )));
                }
                file = Some(positional.to_string());
            }
        }
    }
    let file = file.ok_or_else(|| {
        ParseError("watch needs a telemetry file, e.g. 'efctl watch run.jsonl'".into())
    })?;
    Ok(WatchArgs { file, once, quiet })
}

fn parse_global(args: &[String]) -> Result<GlobalArgs, ParseError> {
    let mut out = GlobalArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.common.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.common.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.common.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.common.out = Some(take_value(flag, &mut iter)?.to_string()),
            "--quiet" => out.common.quiet = true,
            "--hours" => out.hours = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--epoch" => out.epoch_secs = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--backend" => out.backend = take_value(flag, &mut iter)?.to_string(),
            "--cripple" => out.cripple = Some(parse_num(flag, take_value(flag, &mut iter)?)?),
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    if out.hours <= 0.0 {
        return Err(ParseError("--hours must be positive".into()));
    }
    if out.backend != "dns" && out.backend != "anycast" {
        return Err(ParseError(format!(
            "--backend must be dns or anycast, got {:?}",
            out.backend
        )));
    }
    if out.cripple.is_some_and(|p| p >= out.common.pops) {
        return Err(ParseError(format!(
            "--cripple {} is out of range for {} PoPs",
            out.cripple.unwrap_or(0),
            out.common.pops
        )));
    }
    Ok(out)
}

fn parse_explain(args: &[String]) -> Result<ExplainArgs, ParseError> {
    let mut out = ExplainArgs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => out.common.seed = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--pops" => out.common.pops = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--prefixes" => out.common.prefixes = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--quiet" => out.common.quiet = true,
            "--hours" => out.hours = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--epoch" => out.epoch_secs = parse_num(arg, take_value(arg, &mut iter)?)?,
            "--global" => out.global = true,
            flag if flag.starts_with("--") => {
                return Err(ParseError(format!("unknown flag {flag:?}")))
            }
            positional => {
                if !out.prefix.is_empty() {
                    return Err(ParseError(format!(
                        "explain takes one prefix, got {:?} and {positional:?}",
                        out.prefix
                    )));
                }
                out.prefix = positional.to_string();
            }
        }
    }
    if out.prefix.is_empty() {
        return Err(ParseError(
            "explain needs a prefix, e.g. 'efctl explain 10.0.0.0/24'".into(),
        ));
    }
    if out.prefix.parse::<Prefix>().is_err() {
        return Err(ParseError(format!(
            "cannot parse prefix {:?} (expected a.b.c.d/len)",
            out.prefix
        )));
    }
    if out.hours <= 0.0 {
        return Err(ParseError("--hours must be positive".into()));
    }
    Ok(out)
}

fn gen_config(common: &CommonArgs) -> GenConfig {
    GenConfig {
        seed: common.seed,
        n_pops: common.pops,
        n_prefixes: common.prefixes,
        // Scale companion parameters with size so small worlds stay sane.
        n_ases: (common.prefixes / 8).clamp(8, 400),
        total_avg_gbps: 400.0 * common.pops as f64,
        ..GenConfig::default()
    }
}

/// Sort key for telemetry records: simulated time, then PoP. Records from
/// different PoPs arrive in thread-scheduling order; sorting restores a
/// stable reading order for the dumped stream.
fn record_key(r: &TelemetryRecord) -> (u64, u16) {
    match r {
        TelemetryRecord::Event(e) => (e.now_ms, e.pop),
        TelemetryRecord::Explain { pop, now_ms, .. } => (*now_ms, *pop),
        TelemetryRecord::Metrics { pop, now_ms, .. } => (*now_ms, *pop),
        TelemetryRecord::Placement { pop, now_ms, .. } => (*now_ms, *pop),
    }
}

/// Runs a telemetry-captured scenario and returns the collected records
/// in `(now_ms, pop)` order. The health tier rides along so the stream
/// carries `health.sample` / `alert.*` events; `global` adds the user→PoP
/// steering tier (and its placement provenance) on top.
fn traced_run(
    common: &CommonArgs,
    hours: f64,
    epoch_secs: u64,
    global: bool,
) -> Result<Vec<TelemetryRecord>, String> {
    let (handle, sink) = TelemetryHandle::memory();
    let mut builder = ef_sim::scenario()
        .topology(gen_config(common))
        .duration_secs((hours * 3600.0) as u64)
        .epoch_secs(epoch_secs)
        .health(ef_health::HealthConfig::default())
        .telemetry(handle);
    if global {
        builder = builder.global(ef_global::GlobalConfig::default());
    }
    let mut engine = builder.engine();
    engine.run();
    let mut records = sink.records();
    records.sort_by_key(record_key);
    Ok(records)
}

/// True when a record matches a `--kind` filter: an event's name, or a
/// record-category label.
fn record_matches_kind(r: &TelemetryRecord, kind: &str) -> bool {
    match r {
        TelemetryRecord::Event(e) => kind == "event" || e.name == kind,
        TelemetryRecord::Explain { .. } => kind == "explain",
        TelemetryRecord::Metrics { .. } => kind == "metrics",
        TelemetryRecord::Placement { .. } => kind == "placement",
    }
}

/// Reads a JSON-lines telemetry file, skipping lines that do not parse
/// (a live writer may leave a torn final line). Returns the records and
/// the number of skipped lines.
fn load_records(path: &str) -> Result<(Vec<TelemetryRecord>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TelemetryRecord>(line) {
            Ok(r) => records.push(r),
            Err(_) => skipped += 1,
        }
    }
    Ok((records, skipped))
}

/// Follows a telemetry JSON-lines file live, rendering watchable events
/// as they are appended (the no-`--once` arm of `efctl watch`). Polls
/// every `poll_ms`; runs until the process is killed. Lines are written
/// straight to stdout because the tail never "finishes" into an
/// [`Output`].
pub fn watch_follow(path: &str, poll_ms: u64) -> Result<(), String> {
    use std::io::{BufRead as _, Seek as _, Write as _};
    let mut offset = 0u64;
    loop {
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => return Err(format!("cannot read {path}: {e}")),
        };
        let len = file.metadata().map_err(|e| e.to_string())?.len();
        if len < offset {
            // Truncated/rotated: start over.
            offset = 0;
        }
        if len > offset {
            file.seek(std::io::SeekFrom::Start(offset))
                .map_err(|e| e.to_string())?;
            let mut reader = std::io::BufReader::new(file);
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
                if n == 0 || !line.ends_with('\n') {
                    // EOF or a torn line the writer is still appending:
                    // leave it for the next poll.
                    break;
                }
                offset += n as u64;
                if let Ok(record) = serde_json::from_str::<TelemetryRecord>(line.trim_end()) {
                    if let Some(rendered) = ef_health::render_watch_line(&record) {
                        println!("{rendered}");
                    }
                }
            }
            let _ = std::io::stdout().flush();
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms));
    }
}

/// Executes a command, returning its stdout/stderr halves.
pub fn execute(cmd: Command) -> Result<Output, String> {
    let quiet = match &cmd {
        Command::Gen(c) | Command::Table1(c) | Command::Diversity(c) => c.quiet,
        Command::Run(a) => a.common.quiet,
        Command::Chaos(a) => a.common.quiet,
        Command::Trace(a) => a.common.quiet,
        Command::Explain(a) => a.common.quiet,
        Command::Global(a) => a.common.quiet,
        Command::Report(a) => a.quiet,
        Command::Watch(a) => a.quiet,
        Command::Help => false,
    };
    let mut out = execute_inner(cmd)?;
    if quiet {
        out.stderr.clear();
    }
    Ok(out)
}

fn execute_inner(cmd: Command) -> Result<Output, String> {
    let mut out = Output::default();
    match cmd {
        Command::Help => {
            out.stdout = USAGE.to_string();
        }
        Command::Gen(common) => {
            let dep = generate(&gen_config(&common));
            let errors = dep.validate();
            if !errors.is_empty() {
                return Err(format!(
                    "generated deployment failed validation: {errors:?}"
                ));
            }
            let json = serde_json::to_string_pretty(&dep).map_err(|e| e.to_string())?;
            if let Some(path) = &common.out {
                std::fs::write(path, &json).map_err(|e| e.to_string())?;
                writeln!(
                    out.stderr,
                    "wrote deployment (seed {}, {} PoPs, {} prefixes) to {path}",
                    common.seed, common.pops, common.prefixes
                )
                .unwrap();
            } else {
                out.stdout = json;
                out.stdout.push('\n');
            }
        }
        Command::Table1(common) => {
            let dep = generate(&gen_config(&common));
            let rows = pop_summaries(&dep);
            out.stdout = serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?;
            out.stdout.push('\n');
            writeln!(
                out.stderr,
                "{:<12} {:>3} {:>4} {:>8} {:>8} {:>7} {:>6} {:>10} {:>10}",
                "pop", "reg", "PRs", "transit", "private", "public", "rs", "cap(Gbps)", "avg(Gbps)"
            )
            .unwrap();
            for r in &rows {
                writeln!(
                    out.stderr,
                    "{:<12} {:>3} {:>4} {:>8} {:>8} {:>7} {:>6} {:>10.0} {:>10.1}",
                    r.name,
                    r.region,
                    r.routers,
                    r.transit_peers,
                    r.private_peers,
                    r.public_peers,
                    r.route_server_peers,
                    r.capacity_gbps,
                    r.avg_demand_gbps
                )
                .unwrap();
            }
        }
        Command::Diversity(common) => {
            let dep = generate(&gen_config(&common));
            let rows = route_diversity(&dep);
            out.stdout = serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?;
            out.stdout.push('\n');
            writeln!(
                out.stderr,
                "{:<12} {:>8} {:>8} {:>8} {:>8}",
                "pop", ">=1", ">=2", ">=3", ">=4"
            )
            .unwrap();
            for d in &rows {
                writeln!(
                    out.stderr,
                    "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                    d.name,
                    d.frac_traffic_ge[0] * 100.0,
                    d.frac_traffic_ge[1] * 100.0,
                    d.frac_traffic_ge[2] * 100.0,
                    d.frac_traffic_ge[3] * 100.0
                )
                .unwrap();
            }
        }
        Command::Run(args) => {
            let mut builder = ef_sim::scenario()
                .topology(gen_config(&args.common))
                .duration_secs((args.hours * 3600.0) as u64)
                .epoch_secs(args.epoch_secs)
                .controller_enabled(!args.baseline)
                .tune_controller(|c| {
                    c.withdraw_hysteresis = args.hysteresis;
                    if args.split {
                        c.split_depth = 1;
                    }
                });
            if args.global {
                builder = builder.global(ef_global::GlobalConfig::default());
            }
            let mut engine = builder.engine();
            engine.run();
            let metrics = engine.take_metrics();
            let report = ef_sim::RunReport::from_metrics(&metrics);
            let arm = if args.baseline {
                "baseline BGP"
            } else {
                "edge fabric"
            };

            #[derive(serde::Serialize)]
            struct Summary<'a> {
                arm: &'a str,
                report: &'a ef_sim::RunReport,
            }
            out.stdout = serde_json::to_string_pretty(&Summary {
                arm,
                report: &report,
            })
            .map_err(|e| e.to_string())?;
            out.stdout.push('\n');

            writeln!(out.stderr, "arm: {arm}").unwrap();
            out.stderr.push_str(&report.render());

            if let Some(path) = &args.common.out {
                // Dump the distilled epoch records for downstream analysis.
                #[derive(serde::Serialize)]
                struct Dump<'a> {
                    pop_epochs: &'a [ef_sim::PopEpochRecord],
                    episodes: &'a [ef_sim::DetourEpisode],
                }
                let json = serde_json::to_string_pretty(&Dump {
                    pop_epochs: &metrics.pop_epochs,
                    episodes: &metrics.episodes,
                })
                .map_err(|e| e.to_string())?;
                std::fs::write(path, json).map_err(|e| e.to_string())?;
                writeln!(out.stderr, "[wrote {path}]").unwrap();
            }
        }
        Command::Chaos(args) => {
            let cfg = ef_sim::scenario()
                .topology(gen_config(&args.common))
                .duration_secs((args.hours * 3600.0) as u64)
                .epoch_secs(args.epoch_secs)
                .controller_enabled(!args.baseline)
                .build();
            let deployment = generate(&cfg.gen);
            let schedule = match &args.schedule {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    ef_chaos::FaultSchedule::from_json(&text)?
                }
                None => {
                    // `adversarial` narrows sampling to the hostile-ingest
                    // kinds the RFC 7606 / recovery hardening defends
                    // against; `global-partition` samples only the
                    // global-tier kinds (report partitions, stale replays,
                    // controller crashes, headroom lies); the default
                    // samples every per-PoP kind.
                    let kinds = match args.profile.as_deref() {
                        Some("adversarial") => vec![
                            "update_corruption".to_string(),
                            "session_flap_storm".to_string(),
                            "injector_partial_loss".to_string(),
                        ],
                        Some("global-partition") => ef_chaos::FaultKind::GLOBAL_LABELS
                            .iter()
                            .map(|s| s.to_string())
                            .collect(),
                        _ => Vec::new(),
                    };
                    let profile = ef_chaos::ChaosProfile {
                        duration_secs: cfg.duration_secs,
                        warmup_secs: cfg.duration_secs / 6,
                        events: args.events,
                        min_fault_secs: (2 * cfg.epoch_secs).max(60),
                        max_fault_secs: (cfg.duration_secs / 4).max((2 * cfg.epoch_secs).max(60)),
                        kinds,
                    };
                    ef_chaos::generate(
                        &profile,
                        &ef_sim::chaos_surface(&deployment),
                        args.chaos_seed,
                    )?
                }
            };
            if schedule.horizon_secs() > cfg.duration_secs {
                return Err(format!(
                    "schedule runs to t={}s but the scenario ends at {}s",
                    schedule.horizon_secs(),
                    cfg.duration_secs
                ));
            }

            let arm = if args.baseline {
                "baseline BGP"
            } else {
                "edge fabric"
            };
            writeln!(out.stderr, "arm: {arm} under {} fault(s)", schedule.len()).unwrap();
            writeln!(
                out.stderr,
                "{:>20} {:>6} {:>8} {:>8}",
                "fault", "pop", "start", "secs"
            )
            .unwrap();
            for e in &schedule.events {
                writeln!(
                    out.stderr,
                    "{:>20} {:>6} {:>8} {:>8}",
                    e.kind.label(),
                    match e.target.pop() {
                        Some(p) => p.to_string(),
                        None => match e.target.global_pop() {
                            Some(p) => format!("g:{p}"),
                            None => "global".to_string(),
                        },
                    },
                    e.t_start_secs,
                    e.duration_secs
                )
                .unwrap();
            }

            let n_faults = schedule.len();
            let mut builder = ef_sim::ScenarioBuilder::from_config(cfg).chaos(schedule);
            if args.profile.as_deref() == Some("global-partition") {
                // Global-tier faults are no-ops without the tier they break.
                builder = builder.global(ef_global::GlobalConfig::default());
            }
            let mut engine = builder.engine_with(deployment);
            engine.run();
            let metrics = engine.take_metrics();

            let faulted = metrics
                .pop_epochs
                .iter()
                .filter(|r| !r.active_faults.is_empty())
                .count();
            let degraded = metrics.pop_epochs.iter().filter(|r| r.degraded).count();
            let fail_open = metrics.pop_epochs.iter().filter(|r| r.fail_open).count();
            let report = ef_sim::RunReport::from_metrics(&metrics);

            #[derive(serde::Serialize)]
            struct Summary<'a> {
                arm: &'a str,
                faults: usize,
                fault_epochs: usize,
                degraded_epochs: usize,
                fail_open_epochs: usize,
                report: &'a ef_sim::RunReport,
            }
            out.stdout = serde_json::to_string_pretty(&Summary {
                arm,
                faults: n_faults,
                fault_epochs: faulted,
                degraded_epochs: degraded,
                fail_open_epochs: fail_open,
                report: &report,
            })
            .map_err(|e| e.to_string())?;
            out.stdout.push('\n');

            out.stderr.push_str(&report.render());
            writeln!(
                out.stderr,
                "fault epochs: {faulted} ({degraded} degraded, {fail_open} fail-open)"
            )
            .unwrap();

            if let Some(path) = &args.common.out {
                #[derive(serde::Serialize)]
                struct Dump<'a> {
                    pop_epochs: &'a [ef_sim::PopEpochRecord],
                    episodes: &'a [ef_sim::DetourEpisode],
                }
                let json = serde_json::to_string_pretty(&Dump {
                    pop_epochs: &metrics.pop_epochs,
                    episodes: &metrics.episodes,
                })
                .map_err(|e| e.to_string())?;
                std::fs::write(path, json).map_err(|e| e.to_string())?;
                writeln!(out.stderr, "[wrote {path}]").unwrap();
            }
        }
        Command::Trace(args) => {
            let all = traced_run(&args.common, args.hours, args.epoch_secs, false)?;
            let total = all.len();
            let records: Vec<&TelemetryRecord> = all
                .iter()
                .filter(|r| {
                    let (now_ms, pop) = record_key(r);
                    args.pop.is_none_or(|p| p == pop)
                        && args
                            .epoch
                            .is_none_or(|e| (now_ms / 1000) / args.epoch_secs == e)
                        && args
                            .kind
                            .as_deref()
                            .is_none_or(|k| record_matches_kind(r, k))
                })
                .collect();
            let matched = records.len();
            let shown = if args.limit > 0 {
                args.limit.min(matched)
            } else {
                matched
            };
            let mut lines = String::new();
            for r in records.iter().take(shown) {
                lines.push_str(&serde_json::to_string(r).map_err(|e| e.to_string())?);
                lines.push('\n');
            }
            let events = records.iter().filter(|r| r.as_event().is_some()).count();
            let explains = records.iter().filter(|r| r.as_explain().is_some()).count();
            let placements = records
                .iter()
                .filter(|r| r.as_placement().is_some())
                .count();
            let snapshots = matched - events - explains - placements;
            if let Some(path) = &args.common.out {
                std::fs::write(path, &lines).map_err(|e| e.to_string())?;
                writeln!(out.stderr, "[wrote {shown} records to {path}]").unwrap();
            } else {
                out.stdout = lines;
            }
            writeln!(
                out.stderr,
                "{matched} of {total} telemetry records ({events} events, {explains} explains, \
                 {placements} placements, {snapshots} metric snapshots); showing {shown}"
            )
            .unwrap();
        }
        Command::Report(args) => {
            let (records, skipped) = load_records(&args.file)?;
            if skipped > 0 {
                writeln!(out.stderr, "[skipped {skipped} unparseable line(s)]").unwrap();
            }
            let cfg = ef_health::HealthConfig::default();
            let report = ef_health::analyze(&records, &cfg);
            out.stdout = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
            out.stdout.push('\n');
            out.stderr.push_str(&ef_health::render_report(&report));
            if args.fail_on_alerts && !report.clean() {
                let names: Vec<String> = report
                    .alerts
                    .iter()
                    .map(|a| format!("{}@pop{}", a.rule, a.pop))
                    .collect();
                return Err(format!(
                    "{} alert(s) fired during the run: {}",
                    report.alerts.len(),
                    names.join(", ")
                ));
            }
        }
        Command::Watch(args) => {
            // `--once` reads to EOF here; live following happens in main,
            // which re-renders appended lines with the same helper.
            let (records, skipped) = load_records(&args.file)?;
            let mut shown = 0usize;
            for r in &records {
                if let Some(line) = ef_health::render_watch_line(r) {
                    out.stdout.push_str(&line);
                    out.stdout.push('\n');
                    shown += 1;
                }
            }
            if skipped > 0 {
                writeln!(out.stderr, "[skipped {skipped} unparseable line(s)]").unwrap();
            }
            writeln!(
                out.stderr,
                "{shown} watchable event(s) in {} record(s)",
                records.len()
            )
            .unwrap();
        }
        Command::Global(args) => {
            let cfg = match args.backend.as_str() {
                "anycast" => ef_global::GlobalConfig::anycast(2),
                _ => ef_global::GlobalConfig::dns(2),
            };
            let sim = ef_sim::scenario()
                .topology(gen_config(&args.common))
                .duration_secs((args.hours * 3600.0) as u64)
                .epoch_secs(args.epoch_secs)
                .global(cfg)
                .build();
            let mut deployment = generate(&sim.gen);
            if let Some(victim) = args.cripple {
                // Peak demand runs ~1.8x average, so 1.2x average cannot
                // carry the evening peak — the tier must move users.
                let applied =
                    deployment.cap_pop_capacity_to_demand(ef_topology::PopId(victim as u16), 1.2);
                writeln!(
                    out.stderr,
                    "crippled pop{victim}: capacity scaled by {applied:.2}"
                )
                .unwrap();
            }
            let mut engine = ef_sim::ScenarioBuilder::from_config(sim).engine_with(deployment);
            engine.run();
            let (backend, placements) = match engine.global.as_ref() {
                Some(g) => (g.backend_name(), g.placements()),
                None => ("shape_only", Vec::new()),
            };
            let metrics = engine.take_metrics();
            let dropped: f64 = metrics.pop_epochs.iter().map(|r| r.dropped_mbps).sum();

            #[derive(serde::Serialize)]
            struct Summary<'a> {
                backend: &'a str,
                dropped_mbps_epochs: f64,
                placements: &'a [ef_global::PlacementSummary],
            }
            let json = serde_json::to_string_pretty(&Summary {
                backend,
                dropped_mbps_epochs: dropped,
                placements: &placements,
            })
            .map_err(|e| e.to_string())?;

            writeln!(out.stderr, "backend: {backend}").unwrap();
            writeln!(
                out.stderr,
                "{:<10} {:>14} {:>12} {:>10}",
                "population", "baseline(Mbps)", "moved(Mbps)", "max away"
            )
            .unwrap();
            for p in &placements {
                let away_max = p.away.iter().fold(0.0f64, |a, f| a.max(*f));
                writeln!(
                    out.stderr,
                    "{:<10} {:>14.0} {:>12.0} {:>9.0}%",
                    p.population,
                    p.baseline_mbps.iter().sum::<f64>(),
                    p.moved_mbps,
                    away_max * 100.0
                )
                .unwrap();
            }
            writeln!(out.stderr, "total dropped: {dropped:.0} Mbps-epochs").unwrap();

            if let Some(path) = &args.common.out {
                std::fs::write(path, &json).map_err(|e| e.to_string())?;
                writeln!(out.stderr, "[wrote {path}]").unwrap();
            } else {
                out.stdout = json;
                out.stdout.push('\n');
            }
        }
        Command::Explain(args) => {
            let query: Prefix = args
                .prefix
                .parse()
                .map_err(|_| format!("cannot parse prefix {:?}", args.prefix))?;
            let records = traced_run(&args.common, args.hours, args.epoch_secs, args.global)?;

            #[derive(serde::Serialize)]
            struct Row<'a> {
                pop: u16,
                now_ms: u64,
                explain: &'a ExplainRecord,
            }
            let mut rows: Vec<(u16, u64, &ExplainRecord)> = Vec::new();
            for r in &records {
                if let Some((pop, now_ms, rec)) = r.as_explain() {
                    let matches = rec
                        .prefix
                        .parse::<Prefix>()
                        .map(|p| query.contains(&p) || p.contains(&query))
                        .unwrap_or(false);
                    if matches {
                        rows.push((pop, now_ms, rec));
                    }
                }
            }
            let json_rows = rows
                .iter()
                .map(|(pop, now_ms, explain)| Row {
                    pop: *pop,
                    now_ms: *now_ms,
                    explain,
                })
                .collect::<Vec<_>>();
            if args.global {
                // With the global tier on, pair the per-prefix decisions
                // with the tier's population-level placement provenance.
                #[derive(serde::Serialize)]
                struct PlacementRow<'a> {
                    pop: u16,
                    now_ms: u64,
                    placement: &'a ef_telemetry::PlacementRecord,
                }
                #[derive(serde::Serialize)]
                struct WithPlacements<'a> {
                    explains: Vec<Row<'a>>,
                    placements: Vec<PlacementRow<'a>>,
                }
                let placements: Vec<PlacementRow> = records
                    .iter()
                    .filter_map(|r| r.as_placement())
                    .map(|(pop, now_ms, placement)| PlacementRow {
                        pop,
                        now_ms,
                        placement,
                    })
                    .collect();
                writeln!(out.stderr, "{} placement action(s):", placements.len()).unwrap();
                for p in &placements {
                    writeln!(
                        out.stderr,
                        "t={}s {}",
                        p.now_ms / 1000,
                        p.placement.render()
                    )
                    .unwrap();
                }
                out.stdout = serde_json::to_string_pretty(&WithPlacements {
                    explains: json_rows,
                    placements,
                })
                .map_err(|e| e.to_string())?;
            } else {
                out.stdout = serde_json::to_string_pretty(&json_rows).map_err(|e| e.to_string())?;
            }
            out.stdout.push('\n');

            if rows.is_empty() {
                writeln!(
                    out.stderr,
                    "no steering decisions touched {} in this scenario",
                    args.prefix
                )
                .unwrap();
            } else {
                writeln!(
                    out.stderr,
                    "{} decision(s) touching {}:",
                    rows.len(),
                    args.prefix
                )
                .unwrap();
                for (pop, now_ms, rec) in &rows {
                    writeln!(
                        out.stderr,
                        "t={}s pop{}: {}",
                        now_ms / 1000,
                        pop,
                        rec.render()
                    )
                    .unwrap();
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse_args(&argv("frobnicate")).is_err());
    }

    #[test]
    fn gen_defaults_and_flags() {
        match parse_args(&argv("gen")).unwrap() {
            Command::Gen(c) => assert_eq!(c, CommonArgs::default()),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("gen --seed 11 --pops 4 --prefixes 100 --out d.json")).unwrap() {
            Command::Gen(c) => {
                assert_eq!(c.seed, 11);
                assert_eq!(c.pops, 4);
                assert_eq!(c.prefixes, 100);
                assert_eq!(c.out.as_deref(), Some("d.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_flags() {
        match parse_args(&argv(
            "run --hours 2 --baseline --hysteresis 0.03 --split --global --epoch 60",
        ))
        .unwrap()
        {
            Command::Run(r) => {
                assert_eq!(r.hours, 2.0);
                assert!(r.baseline);
                assert_eq!(r.hysteresis, 0.03);
                assert!(r.split);
                assert!(r.global);
                assert_eq!(r.epoch_secs, 60);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("run")).unwrap() {
            Command::Run(r) => {
                assert!(!r.split);
                assert!(!r.global);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quiet_parses_everywhere() {
        for cmd in [
            "gen --quiet",
            "table1 --quiet",
            "run --quiet",
            "chaos --quiet",
            "trace --quiet",
            "explain 1.0.0.0/24 --quiet",
            "global --quiet",
            "report run.jsonl --quiet",
            "watch run.jsonl --quiet",
        ] {
            let parsed = parse_args(&argv(cmd)).unwrap();
            let quiet = match parsed {
                Command::Gen(c) | Command::Table1(c) | Command::Diversity(c) => c.quiet,
                Command::Run(a) => a.common.quiet,
                Command::Chaos(a) => a.common.quiet,
                Command::Trace(a) => a.common.quiet,
                Command::Explain(a) => a.common.quiet,
                Command::Global(a) => a.common.quiet,
                Command::Report(a) => a.quiet,
                Command::Watch(a) => a.quiet,
                Command::Help => false,
            };
            assert!(quiet, "{cmd}");
        }
    }

    #[test]
    fn global_flags() {
        match parse_args(&argv(
            "global --seed 3 --pops 6 --hours 1.5 --backend anycast --cripple 2 --epoch 30",
        ))
        .unwrap()
        {
            Command::Global(g) => {
                assert_eq!(g.common.seed, 3);
                assert_eq!(g.common.pops, 6);
                assert_eq!(g.hours, 1.5);
                assert_eq!(g.backend, "anycast");
                assert_eq!(g.cripple, Some(2));
                assert_eq!(g.epoch_secs, 30);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("global")).unwrap() {
            Command::Global(g) => {
                assert_eq!(g.backend, "dns");
                assert_eq!(g.cripple, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("global --backend carrier-pigeon")).is_err());
        assert!(parse_args(&argv("global --pops 4 --cripple 4")).is_err());
        assert!(parse_args(&argv("global --hours 0")).is_err());
    }

    #[test]
    fn global_small_scenario_end_to_end() {
        let mut args = GlobalArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 1.0;
        args.epoch_secs = 60;
        args.cripple = Some(0);
        let out = execute(Command::Global(args)).unwrap();
        assert!(out.stderr.contains("backend: dns"));
        assert!(out.stderr.contains("crippled pop0"));
        let summary = serde_json::parse_value(&out.stdout).unwrap();
        assert!(matches!(
            summary.get("backend"),
            Some(serde_json::Value::Str(s)) if s == "dns"
        ));
        // One placement row per population (regions present in a 4-PoP world).
        assert!(summary
            .get("placements")
            .and_then(|p| p.as_array())
            .is_some_and(|a| !a.is_empty()));
    }

    #[test]
    fn trace_and_explain_flags() {
        match parse_args(&argv("trace --seed 3 --hours 0.5 --epoch 60 --limit 10")).unwrap() {
            Command::Trace(t) => {
                assert_eq!(t.common.seed, 3);
                assert_eq!(t.hours, 0.5);
                assert_eq!(t.epoch_secs, 60);
                assert_eq!(t.limit, 10);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("explain 10.0.0.0/24 --seed 3 --hours 0.5")).unwrap() {
            Command::Explain(e) => {
                assert_eq!(e.prefix, "10.0.0.0/24");
                assert_eq!(e.common.seed, 3);
                assert_eq!(e.hours, 0.5);
            }
            other => panic!("{other:?}"),
        }
        // Missing, malformed, or duplicate prefixes are rejected.
        assert!(parse_args(&argv("explain")).is_err());
        assert!(parse_args(&argv("explain banana")).is_err());
        assert!(parse_args(&argv("explain 1.0.0.0/24 2.0.0.0/24")).is_err());
    }

    #[test]
    fn report_and_watch_flags() {
        match parse_args(&argv("report run.jsonl --fail-on-alerts --quiet")).unwrap() {
            Command::Report(r) => {
                assert_eq!(r.file, "run.jsonl");
                assert!(r.fail_on_alerts);
                assert!(r.quiet);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("watch run.jsonl --once")).unwrap() {
            Command::Watch(w) => {
                assert_eq!(w.file, "run.jsonl");
                assert!(w.once);
                assert!(!w.quiet);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("report")).is_err());
        assert!(parse_args(&argv("report a.jsonl b.jsonl")).is_err());
        assert!(parse_args(&argv("watch")).is_err());
        assert!(parse_args(&argv("watch a.jsonl --frob")).is_err());
    }

    #[test]
    fn trace_filter_flags() {
        match parse_args(&argv("trace --pop 2 --at-epoch 5 --kind health.sample")).unwrap() {
            Command::Trace(t) => {
                assert_eq!(t.pop, Some(2));
                assert_eq!(t.epoch, Some(5));
                assert_eq!(t.kind.as_deref(), Some("health.sample"));
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("trace")).unwrap() {
            Command::Trace(t) => {
                assert_eq!(t.pop, None);
                assert_eq!(t.epoch, None);
                assert_eq!(t.kind, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("explain 1.0.0.0/24 --global")).is_ok());
    }

    #[test]
    fn trace_filters_narrow_the_stream() {
        let mut args = TraceArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.25;
        args.epoch_secs = 60;
        args.pop = Some(1);
        args.kind = Some("health.sample".into());
        let out = execute(Command::Trace(args.clone())).unwrap();
        assert!(!out.stdout.is_empty(), "health tier rides along on traces");
        for line in out.stdout.lines() {
            let rec: TelemetryRecord = serde_json::from_str(line).unwrap();
            let e = rec.as_event().expect("only events pass the kind filter");
            assert_eq!(e.name, "health.sample");
            assert_eq!(e.pop, 1);
        }
        // One sample per epoch for this PoP: 15 epochs in 0.25 h at 60 s.
        assert_eq!(out.stdout.lines().count(), 15);

        // The epoch filter pins one epoch across all kinds.
        args.kind = None;
        args.pop = None;
        args.epoch = Some(3);
        let out = execute(Command::Trace(args)).unwrap();
        assert!(!out.stdout.is_empty());
        for line in out.stdout.lines() {
            let rec: TelemetryRecord = serde_json::from_str(line).unwrap();
            let (now_ms, _) = match &rec {
                TelemetryRecord::Event(e) => (e.now_ms, e.pop),
                TelemetryRecord::Explain { pop, now_ms, .. } => (*now_ms, *pop),
                TelemetryRecord::Metrics { pop, now_ms, .. } => (*now_ms, *pop),
                TelemetryRecord::Placement { pop, now_ms, .. } => (*now_ms, *pop),
            };
            assert_eq!((now_ms / 1000) / 60, 3);
        }
    }

    #[test]
    fn report_and_watch_judge_a_captured_file() {
        // Capture a small traced run to a file, then judge it offline.
        let mut args = TraceArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.25;
        args.epoch_secs = 60;
        let traced = execute(Command::Trace(args)).unwrap();
        let dir = std::env::temp_dir().join("efctl-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.jsonl");
        std::fs::write(&path, &traced.stdout).unwrap();

        let report = execute(Command::Report(ReportArgs {
            file: path.to_string_lossy().into_owned(),
            fail_on_alerts: false,
            quiet: false,
        }))
        .unwrap();
        assert!(report.stderr.contains("SLO"));
        assert!(report.stderr.contains("drop_rate_ceiling"));
        let parsed = serde_json::parse_value(&report.stdout).unwrap();
        assert!(parsed.get("slo").and_then(|v| v.as_array()).is_some());
        assert!(matches!(
            parsed.get("samples"),
            Some(serde_json::Value::U64(n)) if *n > 0
        ));

        let watch = execute(Command::Watch(WatchArgs {
            file: path.to_string_lossy().into_owned(),
            once: true,
            quiet: false,
        }))
        .unwrap();
        assert!(watch.stdout.contains("drop_rate="));
        assert!(watch.stderr.contains("watchable event(s)"));

        // A missing file errors cleanly for both.
        assert!(execute(Command::Report(ReportArgs {
            file: "/nonexistent/run.jsonl".into(),
            fail_on_alerts: false,
            quiet: false,
        }))
        .is_err());
        assert!(execute(Command::Watch(WatchArgs {
            file: "/nonexistent/run.jsonl".into(),
            once: true,
            quiet: false,
        }))
        .is_err());
    }

    #[test]
    fn report_fail_on_alerts_gates_a_dirty_stream() {
        // Hand-build a stream with a firing alert via the health monitor.
        let (handle, sink) = ef_telemetry::TelemetryHandle::memory();
        let mut mon = ef_health::HealthMonitor::new(ef_health::HealthConfig::default(), handle);
        // Two calm warmup epochs, then a sustained breach.
        for (t, dropped) in [(30, 0.0), (60, 0.0), (90, 100.0), (120, 100.0)] {
            let s = ef_health::EpochSignals {
                t_secs: t,
                pop: 0,
                offered_mbps: 1000.0,
                dropped_mbps: dropped,
                ..Default::default()
            };
            mon.observe_epoch(&s, None);
        }
        let mut lines = String::new();
        for r in sink.records() {
            lines.push_str(&serde_json::to_string(&r).unwrap());
            lines.push('\n');
        }
        let dir = std::env::temp_dir().join("efctl-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.jsonl");
        std::fs::write(&path, &lines).unwrap();

        let err = execute(Command::Report(ReportArgs {
            file: path.to_string_lossy().into_owned(),
            fail_on_alerts: true,
            quiet: false,
        }))
        .unwrap_err();
        assert!(err.contains("drop_rate_ceiling"));
        // Without the gate the same stream reports fine.
        let ok = execute(Command::Report(ReportArgs {
            file: path.to_string_lossy().into_owned(),
            fail_on_alerts: false,
            quiet: false,
        }))
        .unwrap();
        assert!(ok.stderr.contains("FAIL"));
    }

    #[test]
    fn bad_values_error_cleanly() {
        assert!(parse_args(&argv("run --hours banana")).is_err());
        assert!(parse_args(&argv("run --hours -1")).is_err());
        assert!(parse_args(&argv("gen --seed")).is_err());
        assert!(parse_args(&argv("gen --frob 1")).is_err());
        assert!(parse_args(&argv("trace --hours 0")).is_err());
    }

    #[test]
    fn table1_and_diversity_render() {
        let common = CommonArgs {
            seed: 3,
            pops: 4,
            prefixes: 200,
            out: None,
            quiet: false,
        };
        let t = execute(Command::Table1(common.clone())).unwrap();
        assert!(t.stderr.contains("pop0"));
        assert!(t.stderr.lines().count() >= 5);
        let rows = serde_json::parse_value(&t.stdout).unwrap();
        assert!(rows.as_array().is_some_and(|a| a.len() == 4));
        let d = execute(Command::Diversity(common)).unwrap();
        assert!(d.stderr.contains('%'));
        serde_json::parse_value(&d.stdout).unwrap();
    }

    #[test]
    fn quiet_clears_stderr_but_keeps_stdout() {
        let common = CommonArgs {
            seed: 3,
            pops: 4,
            prefixes: 200,
            out: None,
            quiet: true,
        };
        let t = execute(Command::Table1(common)).unwrap();
        assert!(t.stderr.is_empty());
        assert!(!t.stdout.is_empty());
    }

    #[test]
    fn run_small_scenario_end_to_end() {
        let mut args = RunArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.25;
        args.epoch_secs = 60;
        let out = execute(Command::Run(args)).unwrap();
        assert!(out.stderr.contains("edge fabric"));
        assert!(out.stderr.contains("dropped:"));
        let summary = serde_json::parse_value(&out.stdout).unwrap();
        assert!(matches!(
            summary.get("arm"),
            Some(serde_json::Value::Str(s)) if s == "edge fabric"
        ));
        assert!(summary.get("report").is_some());
    }

    #[test]
    fn help_text_lists_commands() {
        let help = execute(Command::Help).unwrap();
        for cmd in [
            "gen",
            "table1",
            "diversity",
            "run",
            "chaos",
            "trace",
            "explain",
        ] {
            assert!(help.stdout.contains(cmd));
        }
    }

    #[test]
    fn chaos_flags() {
        match parse_args(&argv(
            "chaos --seed 3 --hours 0.5 --chaos-seed 9 --events 4 --baseline --epoch 60",
        ))
        .unwrap()
        {
            Command::Chaos(c) => {
                assert_eq!(c.common.seed, 3);
                assert_eq!(c.hours, 0.5);
                assert_eq!(c.chaos_seed, 9);
                assert_eq!(c.events, 4);
                assert!(c.baseline);
                assert_eq!(c.epoch_secs, 60);
                assert!(c.schedule.is_none());
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("chaos --schedule faults.json")).unwrap() {
            Command::Chaos(c) => assert_eq!(c.schedule.as_deref(), Some("faults.json")),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("chaos --events 0")).is_err());
        assert!(parse_args(&argv("chaos --hours 0")).is_err());
    }

    #[test]
    fn chaos_profile_flag() {
        match parse_args(&argv("chaos --profile adversarial")).unwrap() {
            Command::Chaos(c) => assert_eq!(c.profile.as_deref(), Some("adversarial")),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("chaos --profile global-partition")).unwrap() {
            Command::Chaos(c) => assert_eq!(c.profile.as_deref(), Some("global-partition")),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("chaos --profile meteor")).is_err());
        assert!(parse_args(&argv("chaos --profile adversarial --schedule f.json")).is_err());
    }

    #[test]
    fn chaos_adversarial_profile_end_to_end() {
        let mut args = ChaosArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.5;
        args.epoch_secs = 60;
        args.events = 4;
        args.profile = Some("adversarial".into());
        let out = execute(Command::Chaos(args)).unwrap();
        assert!(out.stderr.contains("under 4 fault(s)"));
        // Only the hostile-ingest kinds are sampled.
        for line in out.stderr.lines().filter(|l| {
            l.contains("update_corruption")
                || l.contains("session_flap_storm")
                || l.contains("injector_partial_loss")
        }) {
            assert!(!line.is_empty());
        }
        for kind in [
            "peer_failure",
            "link_capacity_loss",
            "bmp_stall",
            "sflow_loss",
            "controller_crash",
            "injector_loss",
            "flash_crowd",
        ] {
            assert!(
                !out.stderr.contains(kind),
                "adversarial profile sampled {kind}"
            );
        }
    }

    #[test]
    fn chaos_global_partition_profile_end_to_end() {
        let mut args = ChaosArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.5;
        args.epoch_secs = 60;
        args.events = 4;
        args.profile = Some("global-partition".into());
        let out = execute(Command::Chaos(args)).unwrap();
        assert!(out.stderr.contains("under 4 fault(s)"));
        // Only the global-tier kinds are sampled...
        let sampled = out
            .stderr
            .lines()
            .filter(|l| {
                ef_chaos::FaultKind::GLOBAL_LABELS
                    .iter()
                    .any(|k| l.trim_start().starts_with(k))
            })
            .count();
        assert_eq!(
            sampled, 4,
            "all faults are global-tier kinds:\n{}",
            out.stderr
        );
        // ...and none of the per-PoP kinds appear.
        for kind in ["peer_failure", "link_capacity_loss", "flash_crowd"] {
            assert!(
                !out.stderr.contains(kind),
                "global-partition profile sampled {kind}"
            );
        }
    }

    #[test]
    fn chaos_missing_schedule_file_errors() {
        let args = ChaosArgs {
            schedule: Some("/nonexistent/faults.json".into()),
            ..Default::default()
        };
        let err = execute(Command::Chaos(args)).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn chaos_small_scenario_end_to_end() {
        let mut args = ChaosArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.5;
        args.epoch_secs = 60;
        args.events = 4;
        let out = execute(Command::Chaos(args)).unwrap();
        assert!(out.stderr.contains("under 4 fault(s)"));
        assert!(out.stderr.contains("fault epochs:"));
        let summary = serde_json::parse_value(&out.stdout).unwrap();
        assert!(matches!(
            summary.get("faults"),
            Some(serde_json::Value::U64(4))
        ));
        assert!(summary.get("report").is_some());
    }

    #[test]
    fn chaos_schedule_file_end_to_end() {
        use ef_chaos::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
        let schedule = FaultSchedule::new(vec![FaultEvent {
            t_start_secs: 300,
            duration_secs: 300,
            target: FaultTarget::Pop { pop: 0 },
            kind: FaultKind::BmpStall,
        }])
        .unwrap();
        let dir = std::env::temp_dir().join("efctl-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.json");
        std::fs::write(&path, schedule.to_json()).unwrap();
        let mut args = ChaosArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.5;
        args.epoch_secs = 60;
        args.schedule = Some(path.to_string_lossy().into_owned());
        let out = execute(Command::Chaos(args)).unwrap();
        assert!(out.stderr.contains("bmp_stall"));
    }

    #[test]
    fn trace_emits_parseable_json_lines() {
        let mut args = TraceArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.25;
        args.epoch_secs = 60;
        let out = execute(Command::Trace(args.clone())).unwrap();
        assert!(!out.stdout.is_empty());
        let mut saw_epoch = false;
        let mut saw_peer_session_gauge = false;
        for line in out.stdout.lines() {
            let rec: TelemetryRecord = serde_json::from_str(line).unwrap();
            if rec.as_event().is_some_and(|e| e.name == "epoch") {
                saw_epoch = true;
            }
            if let TelemetryRecord::Metrics { snapshot, .. } = &rec {
                if snapshot
                    .gauges
                    .keys()
                    .any(|k| k.starts_with("session.peer.") && k.ends_with(".refreshes_sent"))
                {
                    saw_peer_session_gauge = true;
                }
            }
        }
        assert!(saw_epoch, "trace must contain per-epoch events");
        assert!(
            saw_peer_session_gauge,
            "trace must surface per-peer session counters"
        );
        assert!(out.stderr.contains("telemetry records"));

        // --limit caps the stream.
        args.limit = 3;
        let capped = execute(Command::Trace(args)).unwrap();
        assert_eq!(capped.stdout.lines().count(), 3);
    }

    #[test]
    fn explain_renders_provenance_for_a_steered_prefix() {
        // Find a prefix that was actually steered by tracing first.
        let mut targs = TraceArgs::default();
        targs.common.pops = 4;
        targs.common.prefixes = 200;
        targs.common.seed = 3;
        targs.hours = 0.25;
        targs.epoch_secs = 60;
        let records = traced_run(&targs.common, targs.hours, targs.epoch_secs, false).unwrap();
        let steered = records
            .iter()
            .filter_map(|r| r.as_explain())
            .map(|(_, _, rec)| rec.prefix.clone())
            .next()
            .expect("scenario produces at least one steering decision");

        let args = ExplainArgs {
            common: targs.common.clone(),
            hours: targs.hours,
            epoch_secs: targs.epoch_secs,
            prefix: steered.clone(),
            global: false,
        };
        let out = execute(Command::Explain(args)).unwrap();
        let rows = serde_json::parse_value(&out.stdout).unwrap();
        assert!(rows.as_array().is_some_and(|a| !a.is_empty()));
        assert!(out.stderr.contains(&steered));
        assert!(out.stderr.contains("pop"));

        // A prefix nothing touches renders an empty result, not an error.
        let args = ExplainArgs {
            common: targs.common,
            hours: targs.hours,
            epoch_secs: targs.epoch_secs,
            prefix: "203.0.113.0/24".into(),
            global: false,
        };
        let out = execute(Command::Explain(args)).unwrap();
        let rows = serde_json::parse_value(&out.stdout).unwrap();
        assert!(rows.as_array().is_some_and(|a| a.is_empty()));
        assert!(out.stderr.contains("no steering decisions"));
    }
}
