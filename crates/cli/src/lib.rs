//! Library backing `efctl`: argument parsing and command implementations,
//! kept out of `main.rs` so they are unit-testable.
//!
//! `efctl` is the operator's front door to the reproduction:
//!
//! ```text
//! efctl gen        [--seed N] [--pops N] [--prefixes N] [--out FILE]
//! efctl table1     [--seed N] [--pops N]
//! efctl diversity  [--seed N] [--pops N]
//! efctl run        [--seed N] [--hours H] [--baseline] [--hysteresis X]
//!                  [--epoch SECS] [--out FILE]
//! efctl chaos      [--seed N] [--hours H] [--schedule FILE]
//!                  [--chaos-seed N] [--events N] [--baseline] [--out FILE]
//! efctl help
//! ```

use std::fmt::Write as _;

use ef_sim::{SimConfig, SimEngine};
use ef_topology::stats::{pop_summaries, route_diversity};
use ef_topology::{generate, GenConfig};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a deployment and dump it as JSON.
    Gen(CommonArgs),
    /// Print the Table-1-style PoP summary.
    Table1(CommonArgs),
    /// Print traffic-weighted route diversity.
    Diversity(CommonArgs),
    /// Run a simulation scenario and print/dump a report.
    Run(RunArgs),
    /// Run a scenario under a fault schedule (from file or generated).
    Chaos(ChaosArgs),
    /// Show usage.
    Help,
}

/// Options shared by deployment-shaped commands.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Generator seed.
    pub seed: u64,
    /// Number of PoPs.
    pub pops: usize,
    /// Number of prefixes.
    pub prefixes: usize,
    /// Optional output path for JSON.
    pub out: Option<String>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            seed: 7,
            pops: 20,
            prefixes: 3000,
            out: None,
        }
    }
}

/// Options for `efctl run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Deployment options.
    pub common: CommonArgs,
    /// Simulated duration in hours.
    pub hours: f64,
    /// Run without the controller (baseline BGP).
    pub baseline: bool,
    /// Withdraw hysteresis (0 = paper-stateless).
    pub hysteresis: f64,
    /// Enable prefix splitting (§7 future work).
    pub split: bool,
    /// Enable the global demand shifter (future-work layer).
    pub global: bool,
    /// Controller epoch seconds.
    pub epoch_secs: u64,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            common: CommonArgs::default(),
            hours: 3.0,
            baseline: false,
            hysteresis: 0.0,
            split: false,
            global: false,
            epoch_secs: 30,
        }
    }
}

/// Options for `efctl chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosArgs {
    /// Deployment options.
    pub common: CommonArgs,
    /// Simulated duration in hours.
    pub hours: f64,
    /// Run without the controller (fault exposure of plain BGP).
    pub baseline: bool,
    /// Controller epoch seconds.
    pub epoch_secs: u64,
    /// JSON fault schedule to run (see `ef_chaos::FaultSchedule`); when
    /// absent, a schedule is generated from `chaos_seed`/`events`.
    pub schedule: Option<String>,
    /// Seed for the generated schedule.
    pub chaos_seed: u64,
    /// Number of generated fault events.
    pub events: usize,
}

impl Default for ChaosArgs {
    fn default() -> Self {
        ChaosArgs {
            common: CommonArgs::default(),
            hours: 1.0,
            baseline: false,
            epoch_secs: 30,
            schedule: None,
            chaos_seed: 1,
            events: 8,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
efctl — Edge Fabric reproduction CLI

USAGE:
  efctl gen        [--seed N] [--pops N] [--prefixes N] [--out FILE]
  efctl table1     [--seed N] [--pops N] [--prefixes N]
  efctl diversity  [--seed N] [--pops N] [--prefixes N]
  efctl run        [--seed N] [--pops N] [--prefixes N] [--hours H]
                   [--baseline] [--hysteresis X] [--split] [--global]
                   [--epoch SECS] [--out FILE]
  efctl chaos      [--seed N] [--pops N] [--prefixes N] [--hours H]
                   [--schedule FILE] [--chaos-seed N] [--events N]
                   [--baseline] [--epoch SECS] [--out FILE]
  efctl help
";

/// Parsing failure with a human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Parses `argv[1..]` into a [`Command`].
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "gen" => Ok(Command::Gen(parse_common(rest)?)),
        "table1" => Ok(Command::Table1(parse_common(rest)?)),
        "diversity" => Ok(Command::Diversity(parse_common(rest)?)),
        "run" => Ok(Command::Run(parse_run(rest)?)),
        "chaos" => Ok(Command::Chaos(parse_chaos(rest)?)),
        other => Err(ParseError(format!(
            "unknown command {other:?}; try 'efctl help'"
        ))),
    }
}

fn take_value<'a>(
    flag: &str,
    iter: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str, ParseError> {
    iter.next()
        .map(|s| s.as_str())
        .ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| ParseError(format!("{flag}: cannot parse {value:?}")))
}

fn parse_common(args: &[String]) -> Result<CommonArgs, ParseError> {
    let mut out = CommonArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.out = Some(take_value(flag, &mut iter)?.to_string()),
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_run(args: &[String]) -> Result<RunArgs, ParseError> {
    let mut out = RunArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.common.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.common.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.common.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.common.out = Some(take_value(flag, &mut iter)?.to_string()),
            "--hours" => out.hours = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--baseline" => out.baseline = true,
            "--split" => out.split = true,
            "--global" => out.global = true,
            "--hysteresis" => out.hysteresis = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--epoch" => out.epoch_secs = parse_num(flag, take_value(flag, &mut iter)?)?,
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    if out.hours <= 0.0 {
        return Err(ParseError("--hours must be positive".into()));
    }
    Ok(out)
}

fn parse_chaos(args: &[String]) -> Result<ChaosArgs, ParseError> {
    let mut out = ChaosArgs::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => out.common.seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--pops" => out.common.pops = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--prefixes" => out.common.prefixes = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--out" => out.common.out = Some(take_value(flag, &mut iter)?.to_string()),
            "--hours" => out.hours = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--baseline" => out.baseline = true,
            "--epoch" => out.epoch_secs = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--schedule" => out.schedule = Some(take_value(flag, &mut iter)?.to_string()),
            "--chaos-seed" => out.chaos_seed = parse_num(flag, take_value(flag, &mut iter)?)?,
            "--events" => out.events = parse_num(flag, take_value(flag, &mut iter)?)?,
            other => return Err(ParseError(format!("unknown flag {other:?}"))),
        }
    }
    if out.hours <= 0.0 {
        return Err(ParseError("--hours must be positive".into()));
    }
    if out.events == 0 && out.schedule.is_none() {
        return Err(ParseError(
            "--events must be positive (or pass --schedule)".into(),
        ));
    }
    Ok(out)
}

fn gen_config(common: &CommonArgs) -> GenConfig {
    GenConfig {
        seed: common.seed,
        n_pops: common.pops,
        n_prefixes: common.prefixes,
        // Scale companion parameters with size so small worlds stay sane.
        n_ases: (common.prefixes / 8).clamp(8, 400),
        total_avg_gbps: 400.0 * common.pops as f64,
        ..GenConfig::default()
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Gen(common) => {
            let dep = generate(&gen_config(&common));
            let errors = dep.validate();
            if !errors.is_empty() {
                return Err(format!(
                    "generated deployment failed validation: {errors:?}"
                ));
            }
            let json = serde_json::to_string_pretty(&dep).map_err(|e| e.to_string())?;
            if let Some(path) = &common.out {
                std::fs::write(path, &json).map_err(|e| e.to_string())?;
                Ok(format!(
                    "wrote deployment (seed {}, {} PoPs, {} prefixes) to {path}\n",
                    common.seed, common.pops, common.prefixes
                ))
            } else {
                Ok(json)
            }
        }
        Command::Table1(common) => {
            let dep = generate(&gen_config(&common));
            let mut out = String::new();
            writeln!(
                out,
                "{:<12} {:>3} {:>4} {:>8} {:>8} {:>7} {:>6} {:>10} {:>10}",
                "pop", "reg", "PRs", "transit", "private", "public", "rs", "cap(Gbps)", "avg(Gbps)"
            )
            .unwrap();
            for r in pop_summaries(&dep) {
                writeln!(
                    out,
                    "{:<12} {:>3} {:>4} {:>8} {:>8} {:>7} {:>6} {:>10.0} {:>10.1}",
                    r.name,
                    r.region,
                    r.routers,
                    r.transit_peers,
                    r.private_peers,
                    r.public_peers,
                    r.route_server_peers,
                    r.capacity_gbps,
                    r.avg_demand_gbps
                )
                .unwrap();
            }
            Ok(out)
        }
        Command::Diversity(common) => {
            let dep = generate(&gen_config(&common));
            let mut out = String::new();
            writeln!(
                out,
                "{:<12} {:>8} {:>8} {:>8} {:>8}",
                "pop", ">=1", ">=2", ">=3", ">=4"
            )
            .unwrap();
            for d in route_diversity(&dep) {
                writeln!(
                    out,
                    "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                    d.name,
                    d.frac_traffic_ge[0] * 100.0,
                    d.frac_traffic_ge[1] * 100.0,
                    d.frac_traffic_ge[2] * 100.0,
                    d.frac_traffic_ge[3] * 100.0
                )
                .unwrap();
            }
            Ok(out)
        }
        Command::Run(args) => {
            let mut cfg = SimConfig {
                gen: gen_config(&args.common),
                duration_secs: (args.hours * 3600.0) as u64,
                epoch_secs: args.epoch_secs,
                controller_enabled: !args.baseline,
                ..Default::default()
            };
            cfg.controller.withdraw_hysteresis = args.hysteresis;
            if args.split {
                cfg.controller.split_depth = 1;
            }
            if args.global {
                cfg.global_shift = Some(ef_sim::GlobalShifterConfig::default());
            }
            let mut engine = SimEngine::new(cfg);
            engine.run();
            let metrics = engine.take_metrics();
            let report = ef_sim::RunReport::from_metrics(&metrics);

            let mut out = String::new();
            writeln!(
                out,
                "arm: {}",
                if args.baseline {
                    "baseline BGP"
                } else {
                    "edge fabric"
                }
            )
            .unwrap();
            out.push_str(&report.render());

            if let Some(path) = &args.common.out {
                // Dump the distilled epoch records for downstream analysis.
                #[derive(serde::Serialize)]
                struct Dump<'a> {
                    pop_epochs: &'a [ef_sim::PopEpochRecord],
                    episodes: &'a [ef_sim::DetourEpisode],
                }
                let json = serde_json::to_string_pretty(&Dump {
                    pop_epochs: &metrics.pop_epochs,
                    episodes: &metrics.episodes,
                })
                .map_err(|e| e.to_string())?;
                std::fs::write(path, json).map_err(|e| e.to_string())?;
                writeln!(out, "[wrote {path}]").unwrap();
            }
            Ok(out)
        }
        Command::Chaos(args) => {
            let mut cfg = SimConfig {
                gen: gen_config(&args.common),
                duration_secs: (args.hours * 3600.0) as u64,
                epoch_secs: args.epoch_secs,
                controller_enabled: !args.baseline,
                ..Default::default()
            };
            let deployment = generate(&cfg.gen);
            let schedule = match &args.schedule {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?;
                    ef_chaos::FaultSchedule::from_json(&text)?
                }
                None => {
                    let profile = ef_chaos::ChaosProfile {
                        duration_secs: cfg.duration_secs,
                        warmup_secs: cfg.duration_secs / 6,
                        events: args.events,
                        min_fault_secs: (2 * cfg.epoch_secs).max(60),
                        max_fault_secs: (cfg.duration_secs / 4).max((2 * cfg.epoch_secs).max(60)),
                        kinds: Vec::new(),
                    };
                    ef_chaos::generate(
                        &profile,
                        &ef_sim::chaos_surface(&deployment),
                        args.chaos_seed,
                    )?
                }
            };
            if schedule.horizon_secs() > cfg.duration_secs {
                return Err(format!(
                    "schedule runs to t={}s but the scenario ends at {}s",
                    schedule.horizon_secs(),
                    cfg.duration_secs
                ));
            }

            let mut out = String::new();
            writeln!(
                out,
                "arm: {} under {} fault(s)",
                if args.baseline {
                    "baseline BGP"
                } else {
                    "edge fabric"
                },
                schedule.len()
            )
            .unwrap();
            writeln!(
                out,
                "{:>20} {:>6} {:>8} {:>8}",
                "fault", "pop", "start", "secs"
            )
            .unwrap();
            for e in &schedule.events {
                writeln!(
                    out,
                    "{:>20} {:>6} {:>8} {:>8}",
                    e.kind.label(),
                    e.target.pop(),
                    e.t_start_secs,
                    e.duration_secs
                )
                .unwrap();
            }

            cfg.chaos = Some(schedule);
            let mut engine = SimEngine::with_deployment(cfg, deployment);
            engine.run();
            let metrics = engine.take_metrics();

            let faulted = metrics
                .pop_epochs
                .iter()
                .filter(|r| !r.active_faults.is_empty())
                .count();
            let degraded = metrics.pop_epochs.iter().filter(|r| r.degraded).count();
            let fail_open = metrics.pop_epochs.iter().filter(|r| r.fail_open).count();
            let report = ef_sim::RunReport::from_metrics(&metrics);
            out.push_str(&report.render());
            writeln!(
                out,
                "fault epochs: {faulted} ({degraded} degraded, {fail_open} fail-open)"
            )
            .unwrap();

            if let Some(path) = &args.common.out {
                #[derive(serde::Serialize)]
                struct Dump<'a> {
                    pop_epochs: &'a [ef_sim::PopEpochRecord],
                    episodes: &'a [ef_sim::DetourEpisode],
                }
                let json = serde_json::to_string_pretty(&Dump {
                    pop_epochs: &metrics.pop_epochs,
                    episodes: &metrics.episodes,
                })
                .map_err(|e| e.to_string())?;
                std::fs::write(path, json).map_err(|e| e.to_string())?;
                writeln!(out, "[wrote {path}]").unwrap();
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse_args(&argv("frobnicate")).is_err());
    }

    #[test]
    fn gen_defaults_and_flags() {
        match parse_args(&argv("gen")).unwrap() {
            Command::Gen(c) => assert_eq!(c, CommonArgs::default()),
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("gen --seed 11 --pops 4 --prefixes 100 --out d.json")).unwrap() {
            Command::Gen(c) => {
                assert_eq!(c.seed, 11);
                assert_eq!(c.pops, 4);
                assert_eq!(c.prefixes, 100);
                assert_eq!(c.out.as_deref(), Some("d.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn run_flags() {
        match parse_args(&argv(
            "run --hours 2 --baseline --hysteresis 0.03 --split --global --epoch 60",
        ))
        .unwrap()
        {
            Command::Run(r) => {
                assert_eq!(r.hours, 2.0);
                assert!(r.baseline);
                assert_eq!(r.hysteresis, 0.03);
                assert!(r.split);
                assert!(r.global);
                assert_eq!(r.epoch_secs, 60);
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("run")).unwrap() {
            Command::Run(r) => {
                assert!(!r.split);
                assert!(!r.global);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_values_error_cleanly() {
        assert!(parse_args(&argv("run --hours banana")).is_err());
        assert!(parse_args(&argv("run --hours -1")).is_err());
        assert!(parse_args(&argv("gen --seed")).is_err());
        assert!(parse_args(&argv("gen --frob 1")).is_err());
    }

    #[test]
    fn table1_and_diversity_render() {
        let common = CommonArgs {
            seed: 3,
            pops: 4,
            prefixes: 200,
            out: None,
        };
        let t = execute(Command::Table1(common.clone())).unwrap();
        assert!(t.contains("pop0"));
        assert!(t.lines().count() >= 5);
        let d = execute(Command::Diversity(common)).unwrap();
        assert!(d.contains('%'));
    }

    #[test]
    fn run_small_scenario_end_to_end() {
        let mut args = RunArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.25;
        args.epoch_secs = 60;
        let out = execute(Command::Run(args)).unwrap();
        assert!(out.contains("edge fabric"));
        assert!(out.contains("dropped:"));
    }

    #[test]
    fn help_text_lists_commands() {
        let help = execute(Command::Help).unwrap();
        for cmd in ["gen", "table1", "diversity", "run", "chaos"] {
            assert!(help.contains(cmd));
        }
    }

    #[test]
    fn chaos_flags() {
        match parse_args(&argv(
            "chaos --seed 3 --hours 0.5 --chaos-seed 9 --events 4 --baseline --epoch 60",
        ))
        .unwrap()
        {
            Command::Chaos(c) => {
                assert_eq!(c.common.seed, 3);
                assert_eq!(c.hours, 0.5);
                assert_eq!(c.chaos_seed, 9);
                assert_eq!(c.events, 4);
                assert!(c.baseline);
                assert_eq!(c.epoch_secs, 60);
                assert!(c.schedule.is_none());
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&argv("chaos --schedule faults.json")).unwrap() {
            Command::Chaos(c) => assert_eq!(c.schedule.as_deref(), Some("faults.json")),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("chaos --events 0")).is_err());
        assert!(parse_args(&argv("chaos --hours 0")).is_err());
    }

    #[test]
    fn chaos_missing_schedule_file_errors() {
        let args = ChaosArgs {
            schedule: Some("/nonexistent/faults.json".into()),
            ..Default::default()
        };
        let err = execute(Command::Chaos(args)).unwrap_err();
        assert!(err.contains("cannot read"));
    }

    #[test]
    fn chaos_small_scenario_end_to_end() {
        let mut args = ChaosArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.5;
        args.epoch_secs = 60;
        args.events = 4;
        let out = execute(Command::Chaos(args)).unwrap();
        assert!(out.contains("under 4 fault(s)"));
        assert!(out.contains("fault epochs:"));
    }

    #[test]
    fn chaos_schedule_file_end_to_end() {
        use ef_chaos::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
        let schedule = FaultSchedule::new(vec![FaultEvent {
            t_start_secs: 300,
            duration_secs: 300,
            target: FaultTarget::Pop { pop: 0 },
            kind: FaultKind::BmpStall,
        }])
        .unwrap();
        let dir = std::env::temp_dir().join("efctl-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faults.json");
        std::fs::write(&path, schedule.to_json()).unwrap();
        let mut args = ChaosArgs::default();
        args.common.pops = 4;
        args.common.prefixes = 200;
        args.common.seed = 3;
        args.hours = 0.5;
        args.epoch_secs = 60;
        args.schedule = Some(path.to_string_lossy().into_owned());
        let out = execute(Command::Chaos(args)).unwrap();
        assert!(out.contains("bmp_stall"));
    }
}
