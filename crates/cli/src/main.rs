//! `efctl` — command-line front end for the Edge Fabric reproduction.
//!
//! Machine-readable output (JSON / JSON lines) goes to stdout; human
//! tables and notes go to stderr, so `efctl ... | jq` always works.

use std::io::Write as _;

use ef_cli::{execute, parse_args, watch_follow, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        // `watch` without --once tails the file until killed; it never
        // produces a finished Output, so it bypasses execute().
        Ok(Command::Watch(w)) if !w.once => {
            if let Err(e) = watch_follow(&w.file, 500) {
                eprintln!("efctl: {e}");
                std::process::exit(1);
            }
        }
        Ok(cmd) => match execute(cmd) {
            Ok(out) => {
                // stderr first so progress/tables appear before the JSON
                // when both streams share a terminal.
                eprint!("{}", out.stderr);
                print!("{}", out.stdout);
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("efctl: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("efctl: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
