//! `efctl` — command-line front end for the Edge Fabric reproduction.

use ef_cli::{execute, parse_args, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(cmd) => match execute(cmd) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("efctl: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("efctl: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
