//! Property-based equivalence of the incremental projection path: after any
//! interleaving of organic announce/withdraw churn, peer failures, override
//! (controller-route) churn, and controller crash-resyncs, `project_cached`
//! must produce exactly what a from-scratch `project` does — same loads,
//! same assignment, same totals, bit for bit. The memo is fenced by the
//! collector's per-prefix generation stamps, so this exercises precisely
//! the dirtying rules those stamps encode.

use std::collections::HashMap;

use proptest::prelude::*;

use edge_fabric::collector::RouteCollector;
use edge_fabric::projection::{project, project_cached, Projection, ProjectionCache};
use ef_bgp::attrs::{AsPath, PathAttributes};
use ef_bgp::bmp::{BmpMessage, BmpPeerHeader};
use ef_bgp::message::UpdateMessage;
use ef_bgp::peer::{PeerId, PeerKind};
use ef_bgp::route::EgressId;
use ef_net_types::{Asn, Prefix};

const N_PEERS: usize = 3;
const N_PREFIXES: usize = 8;
/// Controller pseudo-peer, distinct from every organic peer.
const CONTROLLER: u64 = 100;

/// Mixed kinds so the BGP decision process has real tiers to rank.
fn peer_kind(peer: usize) -> PeerKind {
    match peer {
        0 => PeerKind::PrivatePeer,
        1 => PeerKind::PublicPeer,
        _ => PeerKind::Transit,
    }
}

fn peer_asn(peer: usize) -> u32 {
    65000 + peer as u32
}

fn prefix(i: usize) -> Prefix {
    Prefix::V4 {
        addr: 0x1400_0000 + (i as u32) * 256,
        len: 24,
    }
}

fn header(peer: u64, asn: u32) -> BmpPeerHeader {
    BmpPeerHeader {
        peer: PeerId(peer),
        peer_asn: Asn(asn),
        peer_bgp_id: "10.0.0.1".parse().unwrap(),
        timestamp_ms: 0,
    }
}

/// Attributes are a pure function of (peer, path_len) so a crash-resync
/// replay reconstructs byte-identical routes.
fn organic_announce(peer: usize, pfx: usize, path_len: usize) -> BmpMessage {
    let kind = peer_kind(peer);
    let mut attrs = PathAttributes {
        local_pref: Some(kind.default_local_pref()),
        as_path: AsPath::sequence((0..path_len).map(|hop| Asn(peer_asn(peer) + hop as u32 * 100))),
        ..Default::default()
    };
    attrs.add_community(kind.tag_community());
    BmpMessage::RouteMonitoring {
        peer: header(peer as u64, peer_asn(peer)),
        update: UpdateMessage::announce(prefix(pfx), attrs),
    }
}

fn override_announce(pfx: usize, egress: u32) -> BmpMessage {
    let mut attrs = PathAttributes {
        local_pref: Some(PeerKind::Controller.default_local_pref()),
        as_path: AsPath::sequence([]),
        ..Default::default()
    };
    attrs.add_community(PeerKind::Controller.tag_community());
    attrs.next_hop = Some(EgressId(egress).to_next_hop().unwrap());
    BmpMessage::RouteMonitoring {
        peer: header(CONTROLLER, 32934),
        update: UpdateMessage::announce(prefix(pfx), attrs),
    }
}

fn withdraw_msg(peer: u64, asn: u32, pfx: usize) -> BmpMessage {
    BmpMessage::RouteMonitoring {
        peer: header(peer, asn),
        update: UpdateMessage::withdraw([prefix(pfx)]),
    }
}

fn fresh_collector() -> RouteCollector {
    RouteCollector::new(
        (0..N_PEERS)
            .map(|i| (PeerId(i as u64), EgressId(10 + i as u32)))
            .collect(),
    )
}

/// One step of route churn as seen by the collector.
#[derive(Debug, Clone, Copy)]
enum Op {
    Announce {
        peer: usize,
        pfx: usize,
        path_len: usize,
    },
    Withdraw {
        peer: usize,
        pfx: usize,
    },
    PeerDown {
        peer: usize,
    },
    OverrideAnnounce {
        pfx: usize,
        egress: u32,
    },
    OverrideWithdraw {
        pfx: usize,
    },
    /// Controller crash: the replacement starts from a fresh collector and
    /// an empty cache, resynced from a BMP snapshot of the live routes
    /// (including any standing overrides still in the routers).
    CrashResync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..N_PEERS, 0usize..N_PREFIXES, 1usize..4).prop_map(|(peer, pfx, path_len)| {
            Op::Announce {
                peer,
                pfx,
                path_len,
            }
        }),
        (0usize..N_PEERS, 0usize..N_PREFIXES).prop_map(|(peer, pfx)| Op::Withdraw { peer, pfx }),
        (0usize..N_PEERS).prop_map(|peer| Op::PeerDown { peer }),
        (0usize..N_PREFIXES, 0u32..N_PEERS as u32).prop_map(|(pfx, e)| Op::OverrideAnnounce {
            pfx,
            egress: 10 + e,
        }),
        (0usize..N_PREFIXES).prop_map(|pfx| Op::OverrideWithdraw { pfx }),
        Just(Op::CrashResync),
    ]
}

/// Every observable field must agree exactly — the contract is
/// byte-identical output, not approximate equality.
fn assert_projections_match(cached: &Projection, fresh: &Projection) {
    assert_eq!(cached.routed, fresh.routed, "routed assignment diverged");
    assert_eq!(
        cached.load_mbps.len(),
        fresh.load_mbps.len(),
        "load map shape diverged"
    );
    for (egress, load) in &fresh.load_mbps {
        let got = cached.load_mbps.get(egress);
        assert_eq!(got, Some(load), "load diverged on {egress:?}");
    }
    assert_eq!(
        cached.unrouted_mbps.to_bits(),
        fresh.unrouted_mbps.to_bits(),
        "unrouted diverged"
    );
    assert_eq!(
        cached.total_mbps().to_bits(),
        fresh.total_mbps().to_bits(),
        "total diverged"
    );
    assert_eq!(
        cached.demand_total_mbps().to_bits(),
        fresh.demand_total_mbps().to_bits(),
        "demand total diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_projection_matches_from_scratch(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut collector = fresh_collector();
        let mut cache = ProjectionCache::new();
        // Live-route mirror standing in for the routers' tables: what a BMP
        // snapshot would replay to a freshly restarted controller.
        let mut organic: HashMap<(usize, usize), usize> = HashMap::new();
        let mut overrides: HashMap<usize, u32> = HashMap::new();
        let traffic: HashMap<Prefix, f64> = (0..N_PREFIXES)
            .map(|i| (prefix(i), (i + 1) as f64 * 10.0))
            .collect();

        for op in ops {
            match op {
                Op::Announce { peer, pfx, path_len } => {
                    collector.ingest([organic_announce(peer, pfx, path_len)]);
                    organic.insert((peer, pfx), path_len);
                }
                Op::Withdraw { peer, pfx } => {
                    collector.ingest([withdraw_msg(peer as u64, peer_asn(peer), pfx)]);
                    organic.remove(&(peer, pfx));
                }
                Op::PeerDown { peer } => {
                    collector.ingest([BmpMessage::PeerDown {
                        peer: header(peer as u64, peer_asn(peer)),
                        reason: 1,
                    }]);
                    organic.retain(|(p, _), _| *p != peer);
                }
                Op::OverrideAnnounce { pfx, egress } => {
                    collector.ingest([override_announce(pfx, egress)]);
                    overrides.insert(pfx, egress);
                }
                Op::OverrideWithdraw { pfx } => {
                    collector.ingest([withdraw_msg(CONTROLLER, 32934, pfx)]);
                    overrides.remove(&pfx);
                }
                Op::CrashResync => {
                    collector = fresh_collector();
                    cache = ProjectionCache::new();
                    let mut live: Vec<_> = organic.iter().collect();
                    live.sort();
                    for (&(peer, pfx), &path_len) in live {
                        collector.ingest([organic_announce(peer, pfx, path_len)]);
                    }
                    let mut standing: Vec<_> = overrides.iter().collect();
                    standing.sort();
                    for (&pfx, &egress) in standing {
                        collector.ingest([override_announce(pfx, egress)]);
                    }
                }
            }
            let fresh = project(&collector, &traffic);
            let cached = project_cached(&mut cache, &collector, &traffic);
            assert_projections_match(&cached, &fresh);
        }
    }
}
