//! Property-based tests of the allocator's safety invariants over random
//! worlds: whatever the demand and capacity mix, the allocator must never
//! overload a detour target, never invent routes, and never steer a prefix
//! that has no alternative.

use std::collections::HashMap;

use proptest::prelude::*;

use edge_fabric::allocator::{allocate, DetourStrategy};
use edge_fabric::collector::RouteCollector;
use edge_fabric::config::ControllerConfig;
use edge_fabric::overrides::OverrideSet;
use edge_fabric::projection::project;
use edge_fabric::state::{InterfaceInfo, InterfaceMap};
use ef_bgp::attrs::{AsPath, PathAttributes};
use ef_bgp::bmp::{BmpMessage, BmpPeerHeader};
use ef_bgp::egress::{EgressPolicy, PeeringClass};
use ef_bgp::message::UpdateMessage;
use ef_bgp::peer::PeerId;
use ef_bgp::route::EgressId;
use ef_net_types::{Asn, Prefix};
use ef_telemetry::RejectReason;

/// A randomly generated single-PoP world.
#[derive(Debug, Clone)]
struct World {
    /// Per interface: (peering class, capacity).
    interfaces: Vec<(PeeringClass, f64)>,
    /// Per prefix: demand and the subset of interfaces announcing it.
    prefixes: Vec<(f64, Vec<usize>)>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    // 2..6 interfaces with mixed classes, capacities, and (for transit)
    // prices — the price spread is what the cost tiebreak acts on.
    let iface = (0usize..4, 20.0f64..500.0, 0.1f64..4.0).prop_map(|(k, cap, price)| {
        let class = match k {
            0 => PeeringClass::Pni { port_cost: 2500.0 },
            1 => PeeringClass::SettlementFree,
            2 => PeeringClass::IxpRouteServer {
                shared_fabric_mbps: 0.0,
            },
            _ => PeeringClass::Transit {
                usd_per_mbps: price,
            },
        };
        (class, cap)
    });
    proptest::collection::vec(iface, 2..6).prop_flat_map(|interfaces| {
        let n = interfaces.len();
        let prefix = (1.0f64..80.0, proptest::collection::vec(0..n, 1..=n));
        (Just(interfaces), proptest::collection::vec(prefix, 1..25)).prop_map(
            |(interfaces, prefixes)| World {
                interfaces,
                prefixes: prefixes
                    .into_iter()
                    .map(|(d, mut vias)| {
                        vias.sort_unstable();
                        vias.dedup();
                        (d, vias)
                    })
                    .collect(),
            },
        )
    })
}

/// Builds the collector / interface map / traffic for a world.
fn materialize(world: &World) -> (RouteCollector, InterfaceMap, HashMap<Prefix, f64>) {
    let peer_egress: HashMap<PeerId, EgressId> = (0..world.interfaces.len())
        .map(|i| (PeerId(i as u64), EgressId(i as u32)))
        .collect();
    let mut collector = RouteCollector::new(peer_egress);
    let mut traffic = HashMap::new();
    for (pi, (demand, vias)) in world.prefixes.iter().enumerate() {
        let prefix = Prefix::V4 {
            addr: 0x1400_0000 + (pi as u32) * 256,
            len: 24,
        };
        for via in vias {
            let kind = world.interfaces[*via].0.kind();
            let mut attrs = PathAttributes {
                local_pref: Some(kind.default_local_pref()),
                as_path: AsPath::sequence([Asn(65000 + *via as u32)]),
                ..Default::default()
            };
            attrs.add_community(kind.tag_community());
            collector.ingest([BmpMessage::RouteMonitoring {
                peer: BmpPeerHeader {
                    peer: PeerId(*via as u64),
                    peer_asn: Asn(65000 + *via as u32),
                    peer_bgp_id: "10.0.0.1".parse().unwrap(),
                    timestamp_ms: 0,
                },
                update: UpdateMessage::announce(prefix, attrs),
            }]);
        }
        traffic.insert(prefix, *demand);
    }
    let interfaces: InterfaceMap = world
        .interfaces
        .iter()
        .enumerate()
        .map(|(i, (class, cap))| {
            (
                EgressId(i as u32),
                InterfaceInfo {
                    capacity_mbps: *cap,
                    policy: EgressPolicy::new(*class),
                },
            )
        })
        .collect();
    (collector, interfaces, traffic)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Core safety invariant: no detour target ends above the limit, and
    /// every interface that was fine stays fine.
    #[test]
    fn allocator_never_overloads_a_target(world in world_strategy(), largest: bool) {
        let (collector, interfaces, traffic) = materialize(&world);
        let cfg = ControllerConfig {
            strategy: if largest { DetourStrategy::LargestFirst } else { DetourStrategy::BestAlternativeFirst },
            ..Default::default()
        };
        let projection = project(&collector, &traffic);
        let out = allocate(&cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());

        let overloaded_before: std::collections::HashSet<u32> = out
            .overloaded_before
            .iter()
            .map(|(e, _)| e.0)
            .collect();
        for (egress, info) in &interfaces {
            let post = out.post_load.get(egress).copied().unwrap_or(0.0);
            let post_util = post / info.capacity_mbps;
            if !overloaded_before.contains(&egress.0) {
                // Was fine → must stay fine.
                prop_assert!(
                    post_util <= cfg.util_limit + 1e-9,
                    "{egress:?} newly overloaded: {post_util}"
                );
            }
        }
        // Residual overload is only ever reported on originally hot interfaces.
        for (egress, _) in &out.residual_overloaded {
            prop_assert!(overloaded_before.contains(&egress.0));
        }
    }

    /// Overrides only use routes that exist, and never target the interface
    /// the prefix was already on.
    #[test]
    fn overrides_reference_real_alternates(world in world_strategy()) {
        let (collector, interfaces, traffic) = materialize(&world);
        let cfg = ControllerConfig::default();
        let projection = project(&collector, &traffic);
        let out = allocate(&cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());

        for o in out.overrides.iter_sorted() {
            let candidates = collector.candidates(&o.prefix);
            prop_assert!(
                candidates.iter().any(|r| r.egress == o.target),
                "override to nonexistent route"
            );
            let preferred = projection.assigned_egress(&o.prefix);
            prop_assert_ne!(Some(o.target), preferred, "detour must move the prefix");
        }
    }

    /// Load conservation: total post-allocation load equals total projected
    /// load (detouring moves traffic, never creates or destroys it).
    #[test]
    fn load_is_conserved(world in world_strategy()) {
        let (collector, interfaces, traffic) = materialize(&world);
        let cfg = ControllerConfig::default();
        let projection = project(&collector, &traffic);
        let out = allocate(&cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());
        let before: f64 = projection.load_mbps.values().sum();
        let after: f64 = out.post_load.values().sum();
        prop_assert!((before - after).abs() < 1e-6, "{before} vs {after}");
    }

    /// Monotonicity of the safety cap: allowing fewer overrides never
    /// produces more.
    #[test]
    fn override_cap_is_respected(world in world_strategy(), cap in 1usize..5) {
        let (collector, interfaces, traffic) = materialize(&world);
        let cfg = ControllerConfig {
            max_overrides: cap,
            ..Default::default()
        };
        let projection = project(&collector, &traffic);
        let out = allocate(&cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());
        prop_assert!(out.overrides.len() <= cap);
    }

    /// Cost-aware allocation obeys the same capacity invariant as the
    /// cost-blind path (the tiebreak never relaxes the feasibility check),
    /// and every alternate rejected as "costlier" sits in the same
    /// preference band at a strictly higher marginal price — cost never
    /// overrides a capacity or preference constraint.
    #[test]
    fn cost_tiebreak_is_capacity_safe_and_band_confined(world in world_strategy()) {
        let (collector, interfaces, traffic) = materialize(&world);
        let cfg = ControllerConfig {
            cost_aware: true,
            ..Default::default()
        };
        let projection = project(&collector, &traffic);
        let out = allocate(&cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());

        let overloaded_before: std::collections::HashSet<u32> =
            out.overloaded_before.iter().map(|(e, _)| e.0).collect();
        for (egress, info) in &interfaces {
            let post_util = out.post_load.get(egress).copied().unwrap_or(0.0) / info.capacity_mbps;
            if !overloaded_before.contains(&egress.0) {
                prop_assert!(
                    post_util <= cfg.util_limit + 1e-9,
                    "cost-aware newly overloaded {egress:?}: {post_util}"
                );
            }
        }
        for rec in &out.explains {
            let Some(chosen) = rec.chosen_egress else { continue };
            let chosen_info = &interfaces[&EgressId(chosen)];
            for alt in &rec.rejected {
                if let RejectReason::CostlierAlternate { usd_per_mbps, chosen_usd_per_mbps } = alt.reason {
                    prop_assert!(usd_per_mbps > chosen_usd_per_mbps, "cost rejection with no saving");
                    let rejected_info = &interfaces[&EgressId(alt.egress.unwrap())];
                    prop_assert_eq!(
                        rejected_info.kind().default_local_pref(),
                        chosen_info.kind().default_local_pref(),
                        "cost rejection crossed a preference band"
                    );
                }
            }
        }
    }

    /// With every transit priced identically, cost-aware allocation is
    /// byte-identical to cost-blind — the tiebreak acts only on real
    /// price asymmetry.
    #[test]
    fn cost_aware_is_noop_under_uniform_prices(world in world_strategy()) {
        let mut world = world;
        for (class, _) in &mut world.interfaces {
            if let PeeringClass::Transit { usd_per_mbps } = class {
                *usd_per_mbps = 1.0;
            }
        }
        let (collector, interfaces, traffic) = materialize(&world);
        let projection = project(&collector, &traffic);
        let blind = allocate(&ControllerConfig::default(), &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());
        let aware_cfg = ControllerConfig { cost_aware: true, ..Default::default() };
        let aware = allocate(&aware_cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());
        prop_assert_eq!(blind.overrides, aware.overrides);
        prop_assert_eq!(blind.post_load, aware.post_load);
        prop_assert_eq!(blind.capacity_detoured_mbps, aware.capacity_detoured_mbps);
    }

    /// Determinism: identical inputs produce identical outcomes.
    #[test]
    fn allocation_is_deterministic(world in world_strategy()) {
        let (collector, interfaces, traffic) = materialize(&world);
        let cfg = ControllerConfig::default();
        let projection = project(&collector, &traffic);
        let a = allocate(&cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());
        let b = allocate(&cfg, &interfaces, &collector, &traffic, &projection, &OverrideSet::new(), &OverrideSet::new());
        prop_assert_eq!(a.overrides, b.overrides);
        prop_assert_eq!(a.capacity_detoured_mbps, b.capacity_detoured_mbps);
    }
}
