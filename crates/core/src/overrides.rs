//! Override representation and set-diffing.
//!
//! An override is the controller's unit of intent: "prefix P must egress
//! via interface E". The controller recomputes the full desired set every
//! epoch (stateless, paper §4.4); the injector applies only the *diff*
//! against what is currently announced, so steady state causes no BGP
//! churn.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ef_bgp::peer::PeerKind;
use ef_bgp::route::EgressId;
use ef_net_types::Prefix;

/// Why an override exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverrideReason {
    /// Capacity: the preferred interface would overload (paper §4).
    Capacity,
    /// Performance: a measured alternate is substantially faster (paper §6).
    Performance,
}

impl OverrideReason {
    /// Short label for telemetry fields and reports.
    pub fn label(self) -> &'static str {
        match self {
            OverrideReason::Capacity => "capacity",
            OverrideReason::Performance => "performance",
        }
    }
}

/// One desired detour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Override {
    /// The steered prefix.
    pub prefix: Prefix,
    /// Target egress interface.
    pub target: EgressId,
    /// Interconnect kind of the route being detoured onto (for the
    /// "where do detours go" statistics).
    pub target_kind: PeerKind,
    /// Why.
    pub reason: OverrideReason,
    /// Demand moved when the override was computed, Mbps.
    pub moved_mbps: f64,
}

/// The desired override set for one epoch (at most one per prefix).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverrideSet {
    map: HashMap<Prefix, Override>,
}

/// The difference between two override sets, as injector work items.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverrideDiff {
    /// Overrides to announce (new, or retargeted — re-announcement with the
    /// new next hop implicitly replaces the old route).
    pub announce: Vec<Override>,
    /// Prefixes whose override must be withdrawn.
    pub withdraw: Vec<Prefix>,
}

impl OverrideDiff {
    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.announce.is_empty() && self.withdraw.is_empty()
    }

    /// Total number of BGP operations this diff implies.
    pub fn churn(&self) -> usize {
        self.announce.len() + self.withdraw.len()
    }
}

impl OverrideSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the override for a prefix.
    pub fn insert(&mut self, o: Override) -> Option<Override> {
        self.map.insert(o.prefix, o)
    }

    /// The override for a prefix, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&Override> {
        self.map.get(prefix)
    }

    /// True if the prefix is overridden.
    pub fn contains(&self, prefix: &Prefix) -> bool {
        self.map.contains_key(prefix)
    }

    /// Removes a prefix's override.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<Override> {
        self.map.remove(prefix)
    }

    /// Number of active overrides.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no overrides are active.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total demand moved, Mbps (summed in prefix order for run-to-run
    /// reproducibility).
    pub fn total_moved_mbps(&self) -> f64 {
        self.iter_sorted().iter().map(|o| o.moved_mbps).sum()
    }

    /// Overrides sorted by prefix (deterministic iteration).
    pub fn iter_sorted(&self) -> Vec<&Override> {
        let mut v: Vec<&Override> = self.map.values().collect();
        v.sort_by_key(|o| o.prefix);
        v
    }

    /// Computes the injector work to move from `self` (currently announced)
    /// to `desired`.
    ///
    /// A prefix overridden in both but with a different target appears in
    /// `announce` only: BGP re-announcement replaces the previous route
    /// implicitly. Identical overrides generate nothing.
    pub fn diff_to(&self, desired: &OverrideSet) -> OverrideDiff {
        let mut diff = OverrideDiff::default();
        for o in desired.iter_sorted() {
            match self.map.get(&o.prefix) {
                Some(cur) if cur.target == o.target => {}
                _ => diff.announce.push(*o),
            }
        }
        for o in self.iter_sorted() {
            if !desired.contains(&o.prefix) {
                diff.withdraw.push(o.prefix);
            }
        }
        diff
    }

    /// Counts overrides per target interconnect kind.
    pub fn by_target_kind(&self) -> HashMap<PeerKind, usize> {
        let mut m = HashMap::new();
        for o in self.map.values() {
            *m.entry(o.target_kind).or_default() += 1;
        }
        m
    }

    /// Demand moved per target interconnect kind, Mbps (accumulated in
    /// prefix order for run-to-run reproducibility).
    pub fn moved_by_target_kind(&self) -> HashMap<PeerKind, f64> {
        let mut m = HashMap::new();
        for o in self.iter_sorted() {
            *m.entry(o.target_kind).or_default() += o.moved_mbps;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ov(prefix: &str, target: u32, mbps: f64) -> Override {
        Override {
            prefix: prefix.parse().unwrap(),
            target: EgressId(target),
            target_kind: PeerKind::Transit,
            reason: OverrideReason::Capacity,
            moved_mbps: mbps,
        }
    }

    #[test]
    fn basic_set_operations() {
        let mut s = OverrideSet::new();
        assert!(s.is_empty());
        s.insert(ov("1.0.0.0/24", 5, 10.0));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&"1.0.0.0/24".parse().unwrap()));
        assert_eq!(s.total_moved_mbps(), 10.0);
        // Replacement keeps one entry per prefix.
        let old = s.insert(ov("1.0.0.0/24", 6, 12.0));
        assert_eq!(old.unwrap().target, EgressId(5));
        assert_eq!(s.len(), 1);
        s.remove(&"1.0.0.0/24".parse().unwrap());
        assert!(s.is_empty());
    }

    #[test]
    fn diff_detects_add_remove_retarget() {
        let mut current = OverrideSet::new();
        current.insert(ov("1.0.0.0/24", 5, 10.0)); // stays identical
        current.insert(ov("2.0.0.0/24", 5, 10.0)); // will be retargeted
        current.insert(ov("3.0.0.0/24", 5, 10.0)); // will be withdrawn

        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 5, 11.0)); // demand changed, target same
        desired.insert(ov("2.0.0.0/24", 7, 10.0));
        desired.insert(ov("4.0.0.0/24", 8, 10.0)); // new

        let diff = current.diff_to(&desired);
        let announced: Vec<String> = diff.announce.iter().map(|o| o.prefix.to_string()).collect();
        assert_eq!(announced, vec!["2.0.0.0/24", "4.0.0.0/24"]);
        let withdrawn: Vec<String> = diff.withdraw.iter().map(|p| p.to_string()).collect();
        assert_eq!(withdrawn, vec!["3.0.0.0/24"]);
        assert_eq!(diff.churn(), 3);
    }

    #[test]
    fn identical_sets_produce_empty_diff() {
        let mut a = OverrideSet::new();
        a.insert(ov("1.0.0.0/24", 5, 10.0));
        let diff = a.diff_to(&a.clone());
        assert!(diff.is_empty());
        assert_eq!(diff.churn(), 0);
    }

    #[test]
    fn kind_breakdowns() {
        let mut s = OverrideSet::new();
        s.insert(ov("1.0.0.0/24", 5, 10.0));
        let mut peer_ov = ov("2.0.0.0/24", 6, 20.0);
        peer_ov.target_kind = PeerKind::PublicPeer;
        s.insert(peer_ov);
        let counts = s.by_target_kind();
        assert_eq!(counts[&PeerKind::Transit], 1);
        assert_eq!(counts[&PeerKind::PublicPeer], 1);
        let moved = s.moved_by_target_kind();
        assert_eq!(moved[&PeerKind::Transit], 10.0);
        assert_eq!(moved[&PeerKind::PublicPeer], 20.0);
    }

    #[test]
    fn iter_sorted_is_deterministic() {
        let mut s = OverrideSet::new();
        s.insert(ov("9.0.0.0/24", 1, 1.0));
        s.insert(ov("1.0.0.0/24", 1, 1.0));
        s.insert(ov("5.0.0.0/24", 1, 1.0));
        let order: Vec<String> = s
            .iter_sorted()
            .iter()
            .map(|o| o.prefix.to_string())
            .collect();
        assert_eq!(order, vec!["1.0.0.0/24", "5.0.0.0/24", "9.0.0.0/24"]);
    }
}
