//! Demand projection (paper §4.2, step 1).
//!
//! Predicts what every egress interface would carry if BGP ran *without*
//! controller intervention: each prefix's demand lands on its best
//! non-override route. This "unmitigated" projection is what overload
//! detection runs against — projecting against the already-overridden state
//! would make the controller blind to whether its own detours are still
//! needed (the paper's stateless-recompute design falls out of this).

use std::collections::HashMap;

use ef_bgp::decision::best_rec_where;
use ef_bgp::route::EgressId;
use ef_net_types::Prefix;

use crate::collector::RouteCollector;
use crate::state::TrafficState;

/// The result of projecting demand onto BGP-preferred routes.
#[derive(Debug, Clone, Default)]
pub struct Projection {
    /// Predicted load per interface, Mbps.
    pub load_mbps: HashMap<EgressId, f64>,
    /// `(prefix, demand_mbps, egress)` for every prefix that carried
    /// positive demand onto a non-override route, in canonical prefix
    /// order. This doubles as the assignment table (see
    /// [`assigned_egress`](Self::assigned_egress)) and as the allocator's
    /// victim list — a sorted vector is both cheaper to build than a map
    /// and cheaper to scan.
    pub routed: Vec<(Prefix, f64, EgressId)>,
    /// Demand (Mbps) that had no route at all (blackhole risk; reported,
    /// not steered).
    pub unrouted_mbps: f64,
    /// Running total of routed demand, accumulated in canonical prefix
    /// order as the projection is built (so `total_mbps` is O(1) and still
    /// identical run to run).
    total: f64,
    /// Every entry's demand (routed or not), summed in canonical prefix
    /// order — the same sequence `state::total_traffic_mbps` produces, so
    /// budget math downstream needs no second sorted pass over the
    /// traffic map.
    demand: f64,
}

impl Projection {
    /// Load on one interface, Mbps (0 if untouched).
    pub fn load(&self, egress: EgressId) -> f64 {
        self.load_mbps.get(&egress).copied().unwrap_or(0.0)
    }

    /// Total projected demand, Mbps (maintained at build time in canonical
    /// prefix order; identical run to run).
    pub fn total_mbps(&self) -> f64 {
        self.total
    }

    /// Total presented demand, Mbps — routed, unrouted and zero entries
    /// alike, summed in canonical prefix order. Bit-identical to
    /// `state::total_traffic_mbps` over the same traffic map.
    pub fn demand_total_mbps(&self) -> f64 {
        self.demand
    }

    /// The egress the prefix's demand was projected onto, if it carried
    /// positive demand and had a non-override route.
    pub fn assigned_egress(&self, prefix: &Prefix) -> Option<EgressId> {
        self.routed
            .binary_search_by(|(p, _, _)| p.cmp(prefix))
            .ok()
            .map(|i| self.routed[i].2)
    }
}

/// Projects `traffic` onto the best non-override route per prefix.
///
/// Prefixes present in traffic but absent from the route table contribute
/// to `unrouted_mbps`. Prefixes with routes but no demand simply do not
/// appear in the assignment (they carry nothing).
pub fn project(routes: &RouteCollector, traffic: &TrafficState) -> Projection {
    let mut projection = Projection::default();
    // Canonical (prefix) order: the per-interface sums below are float
    // accumulations, and map iteration order must not leak into them.
    let mut entries: Vec<(&Prefix, &f64)> = traffic.iter().collect();
    entries.sort_by_key(|(p, _)| **p);
    for (prefix, mbps) in entries {
        projection.demand += *mbps;
        if *mbps <= 0.0 {
            continue;
        }
        match best_rec_where(routes.candidates(prefix), |r| !r.is_override()) {
            Some(best) => {
                *projection.load_mbps.entry(best.egress).or_default() += mbps;
                projection.routed.push((*prefix, *mbps, best.egress));
                projection.total += mbps;
            }
            None => projection.unrouted_mbps += mbps,
        }
    }
    projection
}

/// Memoized per-prefix projection decisions, invalidated by the
/// collector's generation stamps.
///
/// Purely an implementation detail of the stateless-recompute contract:
/// [`project_cached`] produces output byte-identical to [`project`] — the
/// per-prefix `best_route_where` call is skipped when the prefix's
/// non-override candidate set provably has not changed, but demand is
/// accumulated in exactly the same canonical order either way, so even the
/// float sums match bit for bit.
///
/// The memo is a prefix-sorted vector walked in lockstep with the sorted
/// traffic entries (the hot loop is a merge join, not a map probe), and
/// per-egress loads accumulate into dense slots. On epochs where the
/// collector's global generation has not moved — the steady state, since
/// the controller's own override churn never bumps it — the per-prefix
/// stamp lookups are skipped entirely, so a fully warm epoch performs no
/// hashing at all. Every buffer is kept alive across epochs.
#[derive(Debug, Default)]
pub struct ProjectionCache {
    /// Prefix-sorted memo: `(prefix, generation stamp, slot + 1)`, where
    /// slot 0 encodes "no non-override route".
    memo: Vec<(Prefix, u64, u32)>,
    /// Double buffer for the next epoch's memo.
    memo_next: Vec<(Prefix, u64, u32)>,
    /// Slot → egress registry (slots are dense, assigned on first sight).
    slot_egress: Vec<EgressId>,
    /// Egress → slot; consulted only on memo misses.
    slot_of: HashMap<EgressId, u32>,
    /// Per-slot load accumulator for the current epoch.
    slot_sum: Vec<f64>,
    /// Epoch stamp of each slot's last touch (lazily resets `slot_sum`).
    slot_epoch: Vec<u64>,
    /// Monotone epoch counter for `slot_epoch`.
    epoch: u64,
    /// Slots touched this epoch, in first-touch order — the exact order
    /// `project` creates its `load_mbps` entries in.
    touched: Vec<u32>,
    /// Collector global generation after the last projection.
    synced: u64,
    /// False until the first projection (or after [`clear`](Self::clear)).
    valid: bool,
    /// Reusable sorted `(prefix, mbps)` scratch.
    entries: Vec<(Prefix, f64)>,
}

impl ProjectionCache {
    /// An empty cache (first projection recomputes everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every memoized decision. A controller that resyncs against a
    /// *replacement* collector must call this: generation stamps are only
    /// comparable within one collector's lifetime.
    pub fn clear(&mut self) {
        self.memo.clear();
        self.slot_egress.clear();
        self.slot_of.clear();
        self.slot_sum.clear();
        self.slot_epoch.clear();
        self.touched.clear();
        self.synced = 0;
        self.valid = false;
    }

    /// Number of memoized prefixes (diagnostics only).
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

/// [`project`], but re-running the BGP decision only for prefixes whose
/// generation stamp moved since the memoized answer was recorded.
pub fn project_cached(
    cache: &mut ProjectionCache,
    routes: &RouteCollector,
    traffic: &TrafficState,
) -> Projection {
    let mut entries = std::mem::take(&mut cache.entries);
    entries.clear();
    entries.extend(traffic.iter().map(|(p, m)| (*p, *m)));
    // Same canonical order as `project`: float accumulation order is part
    // of the byte-identical contract. Unstable sort is fine — prefixes are
    // unique map keys — and avoids the stable sort's scratch allocation.
    entries.sort_unstable_by_key(|(p, _)| *p);

    // Steady-state fast path: if the collector's global generation has not
    // moved since the memo was recorded, every stamp in it is still valid
    // and the per-prefix checks can be skipped wholesale.
    let generation = routes.generation();
    let all_clean = cache.valid && generation == cache.synced;

    cache.epoch += 1;
    cache.touched.clear();
    let memo = std::mem::take(&mut cache.memo);
    let mut memo_next = std::mem::take(&mut cache.memo_next);
    memo_next.clear();
    memo_next.reserve(entries.len());

    let mut projection = Projection {
        routed: Vec::with_capacity(entries.len()),
        ..Default::default()
    };
    let mut mi = 0usize;
    for &(prefix, mbps) in &entries {
        projection.demand += mbps;
        if mbps <= 0.0 {
            continue;
        }
        while mi < memo.len() && memo[mi].0 < prefix {
            mi += 1;
        }
        let memo_hit = match memo.get(mi) {
            Some(&(p, stamp, _)) if p == prefix => {
                all_clean || stamp == routes.generation_of(&prefix)
            }
            _ => false,
        };
        let (stamp, slot1) = if memo_hit {
            (memo[mi].1, memo[mi].2)
        } else {
            let best =
                best_rec_where(routes.candidates(&prefix), |r| !r.is_override()).map(|r| r.egress);
            let slot1 = match best {
                None => 0,
                Some(egress) => match cache.slot_of.get(&egress) {
                    Some(&slot) => slot + 1,
                    None => {
                        let slot = cache.slot_egress.len() as u32;
                        cache.slot_egress.push(egress);
                        cache.slot_of.insert(egress, slot);
                        cache.slot_sum.push(0.0);
                        cache.slot_epoch.push(0);
                        slot + 1
                    }
                },
            };
            (routes.generation_of(&prefix), slot1)
        };
        memo_next.push((prefix, stamp, slot1));
        if slot1 == 0 {
            projection.unrouted_mbps += mbps;
        } else {
            let slot = (slot1 - 1) as usize;
            if cache.slot_epoch[slot] != cache.epoch {
                cache.slot_epoch[slot] = cache.epoch;
                cache.slot_sum[slot] = 0.0;
                cache.touched.push(slot as u32);
            }
            cache.slot_sum[slot] += mbps;
            projection
                .routed
                .push((prefix, mbps, cache.slot_egress[slot]));
            projection.total += mbps;
        }
    }

    // Interfaces enter `load_mbps` in first-touch order — the same order
    // `project`'s `entry(...)` calls create them in.
    projection.load_mbps.reserve(cache.touched.len());
    for &slot in &cache.touched {
        projection.load_mbps.insert(
            cache.slot_egress[slot as usize],
            cache.slot_sum[slot as usize],
        );
    }

    cache.memo = memo_next;
    cache.memo_next = memo;
    cache.entries = entries;
    cache.synced = generation;
    cache.valid = true;
    projection
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::bmp::{BmpMessage, BmpPeerHeader};
    use ef_bgp::message::UpdateMessage;
    use ef_bgp::peer::{PeerId, PeerKind};
    use ef_net_types::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(c: &mut RouteCollector, peer: u64, asn: u32, kind: PeerKind, prefix: &str) {
        let mut attrs = PathAttributes {
            local_pref: Some(kind.default_local_pref()),
            as_path: AsPath::sequence([Asn(asn)]),
            ..Default::default()
        };
        attrs.add_community(kind.tag_community());
        if kind == PeerKind::Controller {
            attrs.next_hop = Some(EgressId(99).to_next_hop().unwrap());
        }
        c.ingest([BmpMessage::RouteMonitoring {
            peer: BmpPeerHeader {
                peer: PeerId(peer),
                peer_asn: Asn(asn),
                peer_bgp_id: "10.0.0.1".parse().unwrap(),
                timestamp_ms: 0,
            },
            update: UpdateMessage::announce(p(prefix), attrs),
        }]);
    }

    fn collector() -> RouteCollector {
        RouteCollector::new(HashMap::from([
            (PeerId(1), EgressId(11)),
            (PeerId(2), EgressId(12)),
            (PeerId(100), EgressId(0)),
        ]))
    }

    #[test]
    fn demand_lands_on_preferred_route() {
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 2, 65010, PeerKind::Transit, "1.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 100.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.load(EgressId(11)), 100.0);
        assert_eq!(proj.load(EgressId(12)), 0.0);
        assert_eq!(proj.assigned_egress(&p("1.0.0.0/24")), Some(EgressId(11)));
        assert_eq!(proj.unrouted_mbps, 0.0);
        assert_eq!(proj.total_mbps(), 100.0);
        assert_eq!(proj.demand_total_mbps(), 100.0);
    }

    #[test]
    fn loads_accumulate_across_prefixes() {
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "2.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 60.0), (p("2.0.0.0/24"), 40.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.load(EgressId(11)), 100.0);
    }

    #[test]
    fn overrides_are_ignored_by_projection() {
        // The whole point: projection answers "what would BGP do alone?".
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 100, 32934, PeerKind::Controller, "1.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 100.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.load(EgressId(11)), 100.0, "organic route carries it");
        assert_eq!(
            proj.load(EgressId(99)),
            0.0,
            "override egress not projected"
        );
    }

    #[test]
    fn unrouted_demand_is_reported() {
        let c = collector();
        let traffic = HashMap::from([(p("9.9.9.0/24"), 50.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.unrouted_mbps, 50.0);
        assert!(proj.routed.is_empty());
        assert_eq!(proj.demand_total_mbps(), 50.0, "unrouted still presented");
    }

    fn withdraw(c: &mut RouteCollector, peer: u64, asn: u32, prefix: &str) {
        c.ingest([BmpMessage::RouteMonitoring {
            peer: BmpPeerHeader {
                peer: PeerId(peer),
                peer_asn: Asn(asn),
                peer_bgp_id: "10.0.0.1".parse().unwrap(),
                timestamp_ms: 0,
            },
            update: UpdateMessage::withdraw([p(prefix)]),
        }]);
    }

    fn assert_projections_match(
        c: &RouteCollector,
        cache: &mut ProjectionCache,
        traffic: &TrafficState,
    ) {
        let fresh = project(c, traffic);
        let cached = project_cached(cache, c, traffic);
        assert_eq!(fresh.load_mbps, cached.load_mbps);
        assert_eq!(fresh.routed, cached.routed);
        assert_eq!(fresh.unrouted_mbps, cached.unrouted_mbps);
        assert_eq!(fresh.total_mbps(), cached.total_mbps());
        assert_eq!(fresh.demand_total_mbps(), cached.demand_total_mbps());
    }

    #[test]
    fn cached_projection_matches_fresh_through_churn() {
        let mut c = collector();
        let mut cache = ProjectionCache::new();
        let traffic = HashMap::from([
            (p("1.0.0.0/24"), 60.0),
            (p("2.0.0.0/24"), 40.0),
            (p("3.0.0.0/24"), 25.0),
        ]);

        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 2, 65010, PeerKind::Transit, "1.0.0.0/24");
        announce(&mut c, 2, 65010, PeerKind::Transit, "2.0.0.0/24");
        assert_projections_match(&c, &mut cache, &traffic);

        // Preferred route withdrawn: memo must fall back to transit.
        withdraw(&mut c, 1, 65001, "1.0.0.0/24");
        assert_projections_match(&c, &mut cache, &traffic);

        // Route appears for a previously unrouted prefix.
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "3.0.0.0/24");
        assert_projections_match(&c, &mut cache, &traffic);

        // Override churn hits the memoized answers without invalidating.
        announce(&mut c, 100, 32934, PeerKind::Controller, "2.0.0.0/24");
        let before = cache.len();
        assert_projections_match(&c, &mut cache, &traffic);
        assert_eq!(cache.len(), before, "override did not grow the memo");
    }

    #[test]
    fn cached_projection_survives_peer_down() {
        let mut c = collector();
        let mut cache = ProjectionCache::new();
        let traffic = HashMap::from([(p("1.0.0.0/24"), 60.0), (p("2.0.0.0/24"), 40.0)]);
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "2.0.0.0/24");
        announce(&mut c, 2, 65010, PeerKind::Transit, "1.0.0.0/24");
        assert_projections_match(&c, &mut cache, &traffic);

        // Peer failure (the chaos fault path) flushes peer 1 wholesale.
        c.ingest([BmpMessage::PeerDown {
            peer: BmpPeerHeader {
                peer: PeerId(1),
                peer_asn: Asn(65001),
                peer_bgp_id: "10.0.0.1".parse().unwrap(),
                timestamp_ms: 0,
            },
            reason: 1,
        }]);
        assert_projections_match(&c, &mut cache, &traffic);
    }

    #[test]
    fn zero_and_negative_demand_skipped() {
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 0.0)]);
        let proj = project(&c, &traffic);
        assert!(proj.routed.is_empty());
        assert_eq!(proj.total_mbps(), 0.0);
    }
}
