//! Demand projection (paper §4.2, step 1).
//!
//! Predicts what every egress interface would carry if BGP ran *without*
//! controller intervention: each prefix's demand lands on its best
//! non-override route. This "unmitigated" projection is what overload
//! detection runs against — projecting against the already-overridden state
//! would make the controller blind to whether its own detours are still
//! needed (the paper's stateless-recompute design falls out of this).

use std::collections::HashMap;

use ef_bgp::decision::best_route_where;
use ef_bgp::route::EgressId;
use ef_net_types::Prefix;

use crate::collector::RouteCollector;
use crate::state::TrafficState;

/// The result of projecting demand onto BGP-preferred routes.
#[derive(Debug, Clone, Default)]
pub struct Projection {
    /// Predicted load per interface, Mbps.
    pub load_mbps: HashMap<EgressId, f64>,
    /// The route each prefix was assigned to (prefix → preferred egress).
    pub assignment: HashMap<Prefix, EgressId>,
    /// Demand (Mbps) that had no route at all (blackhole risk; reported,
    /// not steered).
    pub unrouted_mbps: f64,
}

impl Projection {
    /// Load on one interface, Mbps (0 if untouched).
    pub fn load(&self, egress: EgressId) -> f64 {
        self.load_mbps.get(&egress).copied().unwrap_or(0.0)
    }

    /// Total projected demand, Mbps (summed in interface order, so the
    /// result is identical run to run).
    pub fn total_mbps(&self) -> f64 {
        let mut entries: Vec<(&EgressId, &f64)> = self.load_mbps.iter().collect();
        entries.sort_by_key(|(e, _)| **e);
        entries.iter().map(|(_, mbps)| **mbps).sum()
    }
}

/// Projects `traffic` onto the best non-override route per prefix.
///
/// Prefixes present in traffic but absent from the route table contribute
/// to `unrouted_mbps`. Prefixes with routes but no demand simply do not
/// appear in the assignment (they carry nothing).
pub fn project(routes: &RouteCollector, traffic: &TrafficState) -> Projection {
    let mut projection = Projection::default();
    // Canonical (prefix) order: the per-interface sums below are float
    // accumulations, and map iteration order must not leak into them.
    let mut entries: Vec<(&Prefix, &f64)> = traffic.iter().collect();
    entries.sort_by_key(|(p, _)| **p);
    for (prefix, mbps) in entries {
        if *mbps <= 0.0 {
            continue;
        }
        match best_route_where(routes.candidates(prefix), |r| !r.is_override()) {
            Some(best) => {
                *projection.load_mbps.entry(best.egress).or_default() += mbps;
                projection.assignment.insert(*prefix, best.egress);
            }
            None => projection.unrouted_mbps += mbps,
        }
    }
    projection
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::bmp::{BmpMessage, BmpPeerHeader};
    use ef_bgp::message::UpdateMessage;
    use ef_bgp::peer::{PeerId, PeerKind};
    use ef_net_types::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn announce(c: &mut RouteCollector, peer: u64, asn: u32, kind: PeerKind, prefix: &str) {
        let mut attrs = PathAttributes {
            local_pref: Some(kind.default_local_pref()),
            as_path: AsPath::sequence([Asn(asn)]),
            ..Default::default()
        };
        attrs.add_community(kind.tag_community());
        if kind == PeerKind::Controller {
            attrs.next_hop = Some(EgressId(99).to_next_hop());
        }
        c.ingest([BmpMessage::RouteMonitoring {
            peer: BmpPeerHeader {
                peer: PeerId(peer),
                peer_asn: Asn(asn),
                peer_bgp_id: "10.0.0.1".parse().unwrap(),
                timestamp_ms: 0,
            },
            update: UpdateMessage::announce(p(prefix), attrs),
        }]);
    }

    fn collector() -> RouteCollector {
        RouteCollector::new(HashMap::from([
            (PeerId(1), EgressId(11)),
            (PeerId(2), EgressId(12)),
            (PeerId(100), EgressId(0)),
        ]))
    }

    #[test]
    fn demand_lands_on_preferred_route() {
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 2, 65010, PeerKind::Transit, "1.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 100.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.load(EgressId(11)), 100.0);
        assert_eq!(proj.load(EgressId(12)), 0.0);
        assert_eq!(proj.assignment[&p("1.0.0.0/24")], EgressId(11));
        assert_eq!(proj.unrouted_mbps, 0.0);
        assert_eq!(proj.total_mbps(), 100.0);
    }

    #[test]
    fn loads_accumulate_across_prefixes() {
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "2.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 60.0), (p("2.0.0.0/24"), 40.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.load(EgressId(11)), 100.0);
    }

    #[test]
    fn overrides_are_ignored_by_projection() {
        // The whole point: projection answers "what would BGP do alone?".
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        announce(&mut c, 100, 32934, PeerKind::Controller, "1.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 100.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.load(EgressId(11)), 100.0, "organic route carries it");
        assert_eq!(
            proj.load(EgressId(99)),
            0.0,
            "override egress not projected"
        );
    }

    #[test]
    fn unrouted_demand_is_reported() {
        let c = collector();
        let traffic = HashMap::from([(p("9.9.9.0/24"), 50.0)]);
        let proj = project(&c, &traffic);
        assert_eq!(proj.unrouted_mbps, 50.0);
        assert!(proj.assignment.is_empty());
    }

    #[test]
    fn zero_and_negative_demand_skipped() {
        let mut c = collector();
        announce(&mut c, 1, 65001, PeerKind::PrivatePeer, "1.0.0.0/24");
        let traffic = HashMap::from([(p("1.0.0.0/24"), 0.0)]);
        let proj = project(&c, &traffic);
        assert!(proj.assignment.is_empty());
        assert_eq!(proj.total_mbps(), 0.0);
    }
}
