//! The detour allocator (paper §4.2, steps 2–3).
//!
//! Given the unmitigated projection, finds interfaces whose utilization
//! would exceed the limit and computes the minimal-ish set of prefix
//! detours that brings every interface under it, subject to:
//!
//! * a detour target must be a real alternate route for the prefix (the
//!   controller can only pick among BGP-learned paths);
//! * a detour must not push its target over the limit (checked against the
//!   running post-detour load, so a cascade of detours cannot overload a
//!   target);
//! * prefixes already owned by a performance override are not touched; and
//! * the safety valves in [`ControllerConfig`]
//!   (max detour fraction, max override count) are respected.
//!
//! Two prefix-selection strategies are provided for the ablation the paper
//! invites: *best-alternative-first* (the paper's preference: detour
//! prefixes whose next-best route is closest in preference, minimizing
//! performance impact) and *largest-first* (fewest overrides).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ef_bgp::attrstore::RouteRec;
use ef_bgp::route::EgressId;
use ef_net_types::Prefix;
use ef_telemetry::{ExplainRecord, ExplainVerdict, RejectReason, RejectedAlternative};

use crate::collector::RouteCollector;
use crate::config::ControllerConfig;
use crate::overrides::{Override, OverrideReason, OverrideSet};
use crate::projection::Projection;
use crate::state::InterfaceMap;

/// Prefix-selection order when shedding load from a hot interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetourStrategy {
    /// Prefer prefixes whose best feasible alternate is closest in BGP
    /// preference to the current route; break ties by larger demand.
    BestAlternativeFirst,
    /// Prefer the largest prefixes (fewest overrides to relieve overload).
    LargestFirst,
}

/// What the allocator did in one epoch.
#[derive(Debug, Clone, Default)]
pub struct AllocationOutcome {
    /// The desired override set (performance overrides passed in, plus the
    /// capacity detours computed this epoch).
    pub overrides: OverrideSet,
    /// Interfaces that were projected over the limit, with their projected
    /// utilization, sorted worst-first.
    pub overloaded_before: Vec<(EgressId, f64)>,
    /// Interfaces still over the limit after allocation (shed everything
    /// movable and it wasn't enough), with residual utilization.
    pub residual_overloaded: Vec<(EgressId, f64)>,
    /// Post-allocation predicted load per interface, Mbps.
    pub post_load: HashMap<EgressId, f64>,
    /// Demand detoured for capacity this epoch, Mbps.
    pub capacity_detoured_mbps: f64,
    /// Decision provenance: one record per steering decision considered,
    /// in the deterministic order the allocator made them. The controller
    /// amends verdicts when its guards later drop a decision.
    pub explains: Vec<ExplainRecord>,
}

impl AllocationOutcome {
    /// Post-allocation utilization of an interface.
    pub fn post_utilization(&self, egress: EgressId, interfaces: &InterfaceMap) -> f64 {
        let cap = interfaces
            .get(&egress)
            .map(|i| i.capacity_mbps)
            .unwrap_or(f64::INFINITY);
        self.post_load.get(&egress).copied().unwrap_or(0.0) / cap
    }
}

/// Runs the allocator.
///
/// `perf_overrides` are pre-existing intents (paper §6) that the capacity
/// pass must honor: their demand is charged to their targets before
/// overload detection, and their prefixes are not re-steered.
///
/// `previous` is the override set currently announced. With the default
/// config it is ignored (fully stateless recompute, as in the paper); when
/// [`ControllerConfig::withdraw_hysteresis`] is positive, standing capacity
/// overrides are retained while their source interface still projects
/// above `util_limit − hysteresis`, damping flaps when demand hovers at
/// the limit.
pub fn allocate(
    cfg: &ControllerConfig,
    interfaces: &InterfaceMap,
    routes: &RouteCollector,
    traffic: &HashMap<Prefix, f64>,
    projection: &Projection,
    perf_overrides: &OverrideSet,
    previous: &OverrideSet,
) -> AllocationOutcome {
    let mut load = projection.load_mbps.clone();
    let mut overrides = OverrideSet::new();
    let mut explains: Vec<ExplainRecord> = Vec::new();

    let limit_of = |egress: EgressId| -> f64 {
        interfaces
            .get(&egress)
            .map(|i| i.capacity_mbps * cfg.util_limit)
            .unwrap_or(f64::INFINITY)
    };
    let util_of = |egress: EgressId, load: &HashMap<EgressId, f64>| -> f64 {
        let cap = interfaces
            .get(&egress)
            .map(|i| i.capacity_mbps)
            .unwrap_or(f64::INFINITY);
        load.get(&egress).copied().unwrap_or(0.0) / cap
    };
    let cost_of = |egress: EgressId| -> f64 {
        interfaces
            .get(&egress)
            .map(|i| i.marginal_usd_per_mbps())
            .unwrap_or(0.0)
    };

    // Charge performance overrides to their targets first.
    for o in perf_overrides.iter_sorted() {
        let demand = traffic.get(&o.prefix).copied().unwrap_or(0.0);
        let src = projection.assigned_egress(&o.prefix);
        if let Some(src) = src {
            if src != o.target {
                *load.entry(src).or_default() -= demand;
                *load.entry(o.target).or_default() += demand;
            }
        }
        explains.push(ExplainRecord {
            prefix: o.prefix.to_string(),
            trigger: "performance".into(),
            hot_egress: src.map(|e| e.0),
            hot_util: src.map(|e| util_of(e, &load)).unwrap_or(0.0),
            demand_mbps: demand,
            chosen_egress: Some(o.target.0),
            chosen_kind: Some(o.target_kind.label().to_string()),
            chosen_usd_per_mbps: Some(cost_of(o.target)),
            rejected: Vec::new(),
            verdict: ExplainVerdict::Emitted,
        });
        overrides.insert(Override {
            moved_mbps: demand,
            ..*o
        });
    }

    // Withdraw hysteresis: retain standing capacity overrides while the
    // interface they relieve still projects inside the hysteresis band.
    if cfg.withdraw_hysteresis > 0.0 {
        let keep_above = cfg.util_limit - cfg.withdraw_hysteresis;
        for o in previous.iter_sorted() {
            if o.reason != OverrideReason::Capacity || overrides.contains(&o.prefix) {
                continue;
            }
            let demand = traffic.get(&o.prefix).copied().unwrap_or(0.0);
            if demand <= 0.0 {
                continue;
            }
            let Some(src) = projection.assigned_egress(&o.prefix) else {
                continue;
            };
            if src == o.target {
                continue;
            }
            // The detour target must still be a live organic route with room.
            let Some(route) = routes
                .candidates(&o.prefix)
                .iter()
                .find(|r| !r.is_override() && r.egress == o.target)
            else {
                continue;
            };
            let src_util = util_of(src, &load);
            let room = load.get(&o.target).copied().unwrap_or(0.0) + demand <= limit_of(o.target);
            if src_util > keep_above && room {
                *load.entry(src).or_default() -= demand;
                *load.entry(o.target).or_default() += demand;
                explains.push(ExplainRecord {
                    prefix: o.prefix.to_string(),
                    trigger: "hysteresis".into(),
                    hot_egress: Some(src.0),
                    hot_util: src_util,
                    demand_mbps: demand,
                    chosen_egress: Some(o.target.0),
                    chosen_kind: Some(route.source.kind.label().to_string()),
                    chosen_usd_per_mbps: Some(cost_of(o.target)),
                    rejected: Vec::new(),
                    verdict: ExplainVerdict::Emitted,
                });
                overrides.insert(Override {
                    moved_mbps: demand,
                    target_kind: route.source.kind,
                    ..*o
                });
            }
        }
    }

    // Overloaded interfaces, worst first.
    let mut overloaded: Vec<(EgressId, f64)> = interfaces
        .keys()
        .filter_map(|e| {
            let u = util_of(*e, &load);
            (u > cfg.util_limit).then_some((*e, u))
        })
        .collect();
    overloaded.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let overloaded_before = overloaded.clone();

    // Safety budgets. The projection already summed all presented demand
    // in canonical prefix order — no second sorted pass over the map.
    let total_demand: f64 = projection.demand_total_mbps();
    let detour_budget = if cfg.max_detour_fraction > 0.0 {
        total_demand * cfg.max_detour_fraction
    } else {
        f64::INFINITY
    };
    let mut capacity_detoured = 0.0f64;

    // Victim candidates grouped by projected egress, built once: scanning
    // the full assignment again for every overloaded interface is quadratic
    // at scale. The override-ownership filter stays per-interface below
    // (the set grows as earlier hot interfaces shed), so only the
    // loop-invariant demand filter is applied here. Ordering is irrelevant:
    // every strategy sort below uses a total key.
    let mut victims_by_egress: HashMap<EgressId, Vec<(Prefix, f64)>> = HashMap::new();
    if !overloaded.is_empty() {
        // `routed` already carries each prefix's demand (all positive), so
        // this is one linear scan with no per-prefix traffic lookups.
        for &(prefix, demand, egress) in &projection.routed {
            victims_by_egress
                .entry(egress)
                .or_default()
                .push((prefix, demand));
        }
    }

    // Ranked-candidate scratch reused across every prefix below: ranking
    // writes pooled records into this buffer instead of allocating a fresh
    // `Vec` per call (the old `Vec<&Route>` shape).
    let mut ranked_scratch: Vec<RouteRec> = Vec::new();

    for (hot, _) in &overloaded {
        // Prefixes currently assigned to the hot interface, with demand.
        let mut victims: Vec<(Prefix, f64)> = victims_by_egress
            .get(hot)
            .map(|candidates| {
                candidates
                    .iter()
                    .filter(|(prefix, _)| !overrides.contains(prefix)) // perf- or hysteresis-owned
                    .copied()
                    .collect()
            })
            .unwrap_or_default();

        // Order by strategy. The alternate-rank distance is the position of
        // the first alternate route (off the hot interface) in the BGP
        // preference ranking — 1 means "the very next choice".
        match cfg.strategy {
            DetourStrategy::LargestFirst => {
                victims.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            }
            DetourStrategy::BestAlternativeFirst => {
                // Preference distance: how far (in effective LOCAL_PREF)
                // the first off-interface alternate sits below the current
                // best route. Prefixes whose alternate is close in
                // preference lose the least by being detoured.
                let mut keyed: Vec<(i64, Prefix, f64)> = victims
                    .into_iter()
                    .map(|(prefix, mbps)| {
                        routes.ranked_into(&prefix, &mut ranked_scratch);
                        let best = ranked_scratch.iter().find(|r| !r.is_override());
                        let alt = ranked_scratch
                            .iter()
                            .find(|r| !r.is_override() && r.egress != *hot);
                        let gap = match (best, alt) {
                            (Some(best), Some(alt)) => {
                                i64::from(best.effective_local_pref())
                                    - i64::from(alt.effective_local_pref())
                            }
                            _ => i64::MAX,
                        };
                        (gap, prefix, mbps)
                    })
                    .collect();
                keyed.sort_by(|a, b| a.0.cmp(&b.0).then(b.2.total_cmp(&a.2)).then(a.1.cmp(&b.1)));
                victims = keyed.into_iter().map(|(_, p, m)| (p, m)).collect();
            }
        }

        // Worklist of (steer-unit prefix, demand, route-lookup prefix,
        // remaining split depth). Splitting (paper §7 future work) pushes
        // a prefix's two more-specific halves as independent units whose
        // alternates come from the *parent's* route set.
        let mut worklist: std::collections::VecDeque<(Prefix, f64, Prefix, u8)> = victims
            .into_iter()
            .map(|(prefix, mbps)| (prefix, mbps, prefix, cfg.split_depth))
            .collect();
        while let Some((unit, mbps, lookup, depth)) = worklist.pop_front() {
            if load.get(hot).copied().unwrap_or(0.0) <= limit_of(*hot) {
                break; // interface relieved
            }
            let hot_util = util_of(*hot, &load);
            let explain = |rejected, chosen: Option<&RouteRec>, verdict| ExplainRecord {
                prefix: unit.to_string(),
                trigger: "capacity".into(),
                hot_egress: Some(hot.0),
                hot_util,
                demand_mbps: mbps,
                chosen_egress: chosen.map(|r| r.egress.0),
                chosen_kind: chosen.map(|r| r.source.kind.label().to_string()),
                chosen_usd_per_mbps: chosen.map(|r| cost_of(r.egress)),
                rejected,
                verdict,
            };
            if capacity_detoured + mbps > detour_budget {
                // This prefix would bust the safety budget.
                explains.push(explain(
                    vec![RejectedAlternative {
                        egress: None,
                        kind: None,
                        reason: RejectReason::DetourBudget,
                    }],
                    None,
                    ExplainVerdict::DroppedDetourBudget,
                ));
                continue;
            }
            if cfg.max_overrides > 0 && overrides.len() >= cfg.max_overrides {
                explains.push(explain(
                    vec![RejectedAlternative {
                        egress: None,
                        kind: None,
                        reason: RejectReason::OverrideCountCap,
                    }],
                    None,
                    ExplainVerdict::DroppedOverrideCap,
                ));
                break;
            }
            // Find the most-preferred feasible alternate, keeping the
            // rejection trail for provenance. With cost-aware steering on,
            // the scan continues through the winning preference band and
            // takes its cheapest feasible member — strictly a tiebreak:
            // it never crosses into a lower band (BGP preference is never
            // degraded) and never relaxes the capacity check.
            let mut rejected: Vec<RejectedAlternative> = Vec::new();
            let mut target: Option<RouteRec> = None;
            routes.ranked_into(&lookup, &mut ranked_scratch);
            for r in ranked_scratch
                .iter()
                .filter(|r| !r.is_override() && r.egress != *hot)
            {
                if let Some(t) = target {
                    // Cost-aware band scan past the first feasible hit.
                    if r.effective_local_pref() != t.effective_local_pref() {
                        break;
                    }
                    let projected = load.get(&r.egress).copied().unwrap_or(0.0) + mbps;
                    if projected > limit_of(r.egress) {
                        continue; // infeasible band member: never a candidate
                    }
                    let (rc, tc) = (cost_of(r.egress), cost_of(t.egress));
                    if rc < tc {
                        rejected.push(RejectedAlternative {
                            egress: Some(t.egress.0),
                            kind: Some(t.source.kind.label().to_string()),
                            reason: RejectReason::CostlierAlternate {
                                usd_per_mbps: tc,
                                chosen_usd_per_mbps: rc,
                            },
                        });
                        target = Some(*r);
                    } else if rc > tc {
                        rejected.push(RejectedAlternative {
                            egress: Some(r.egress.0),
                            kind: Some(r.source.kind.label().to_string()),
                            reason: RejectReason::CostlierAlternate {
                                usd_per_mbps: rc,
                                chosen_usd_per_mbps: tc,
                            },
                        });
                    }
                    // Equal cost: the earlier-ranked holder stands, so the
                    // cost-blind and cost-aware paths pick identically.
                    continue;
                }
                let projected = load.get(&r.egress).copied().unwrap_or(0.0) + mbps;
                let limit = limit_of(r.egress);
                if projected <= limit {
                    target = Some(*r);
                    if !cfg.cost_aware {
                        break;
                    }
                    continue;
                }
                rejected.push(RejectedAlternative {
                    egress: Some(r.egress.0),
                    kind: Some(r.source.kind.label().to_string()),
                    reason: RejectReason::NoSpareCapacity {
                        projected_mbps: projected,
                        limit_mbps: limit,
                    },
                });
            }
            let Some(target) = target else {
                if rejected.is_empty() {
                    rejected.push(RejectedAlternative {
                        egress: None,
                        kind: None,
                        reason: RejectReason::NoRoute,
                    });
                }
                explains.push(explain(rejected, None, ExplainVerdict::NoFeasibleAlternate));
                // Nowhere to put the whole unit: try its halves.
                if depth > 0 {
                    if let Some((lo, hi)) = unit.halves() {
                        worklist.push_back((lo, mbps / 2.0, lookup, depth - 1));
                        worklist.push_back((hi, mbps / 2.0, lookup, depth - 1));
                    }
                }
                continue;
            };
            explains.push(explain(rejected, Some(&target), ExplainVerdict::Emitted));
            *load.entry(*hot).or_default() -= mbps;
            *load.entry(target.egress).or_default() += mbps;
            capacity_detoured += mbps;
            overrides.insert(Override {
                prefix: unit,
                target: target.egress,
                target_kind: target.source.kind,
                reason: OverrideReason::Capacity,
                moved_mbps: mbps,
            });
        }
    }

    let residual_overloaded: Vec<(EgressId, f64)> = interfaces
        .keys()
        .filter_map(|e| {
            let u = util_of(*e, &load);
            (u > cfg.util_limit).then_some((*e, u))
        })
        .collect();

    AllocationOutcome {
        overrides,
        overloaded_before,
        residual_overloaded,
        post_load: load,
        capacity_detoured_mbps: capacity_detoured,
        explains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::project;
    use crate::state::InterfaceInfo;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::bmp::{BmpMessage, BmpPeerHeader};
    use ef_bgp::egress::EgressSpec;
    use ef_bgp::message::UpdateMessage;
    use ef_bgp::peer::{PeerId, PeerKind};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Builds a collector over typed egress specs (peer id = egress id, the
    /// tuple sites' old convention).
    fn collector(specs: &[EgressSpec]) -> RouteCollector {
        RouteCollector::new(
            specs
                .iter()
                .map(|s| (PeerId(s.egress.0 as u64), s.egress))
                .collect(),
        )
    }

    /// Announces `prefix` from the spec's peer with the derived kind's
    /// LOCAL_PREF band and tag community — the typed replacement for the
    /// old `(peer, asn, kind)` tuple announce helper.
    fn announce(c: &mut RouteCollector, spec: EgressSpec, prefix: &str) {
        let kind = spec.kind();
        let mut attrs = PathAttributes {
            local_pref: Some(kind.default_local_pref()),
            as_path: AsPath::sequence([spec.asn]),
            ..Default::default()
        };
        attrs.add_community(kind.tag_community());
        c.ingest([BmpMessage::RouteMonitoring {
            peer: BmpPeerHeader {
                peer: PeerId(spec.egress.0 as u64),
                peer_asn: spec.asn,
                peer_bgp_id: "10.0.0.1".parse().unwrap(),
                timestamp_ms: 0,
            },
            update: UpdateMessage::announce(p(prefix), attrs),
        }]);
    }

    fn interface_map(entries: &[(EgressSpec, f64)]) -> InterfaceMap {
        entries
            .iter()
            .map(|(spec, cap)| {
                (
                    spec.egress,
                    InterfaceInfo {
                        capacity_mbps: *cap,
                        policy: spec.policy(),
                    },
                )
            })
            .collect()
    }

    /// Builds a collector with a private peer (egress 1), a public peer
    /// (egress 2), and a transit (egress 3), all announcing `prefixes`.
    fn standard_world(prefixes: &[&str]) -> (RouteCollector, InterfaceMap) {
        let specs = [
            EgressSpec::pni(1, 65001),
            EgressSpec::settlement_free(2, 65002),
            EgressSpec::transit(3, 65010),
        ];
        let mut c = collector(&specs);
        for prefix in prefixes {
            for spec in specs {
                announce(&mut c, spec, prefix);
            }
        }
        let interfaces =
            interface_map(&[(specs[0], 100.0), (specs[1], 100.0), (specs[2], 100_000.0)]);
        (c, interfaces)
    }

    fn run(
        cfg: &ControllerConfig,
        c: &RouteCollector,
        interfaces: &InterfaceMap,
        traffic: &HashMap<Prefix, f64>,
    ) -> AllocationOutcome {
        let proj = project(c, traffic);
        allocate(
            cfg,
            interfaces,
            c,
            traffic,
            &proj,
            &OverrideSet::new(),
            &OverrideSet::new(),
        )
    }

    #[test]
    fn no_overload_no_overrides() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 50.0)]);
        let out = run(&ControllerConfig::default(), &c, &ifaces, &traffic);
        assert!(out.overrides.is_empty());
        assert!(out.overloaded_before.is_empty());
        assert!(out.residual_overloaded.is_empty());
        assert_eq!(out.capacity_detoured_mbps, 0.0);
    }

    #[test]
    fn overload_is_relieved_to_next_preferred() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24"]);
        // Both prefer egress 1 (private, 100 Mbps): 80 + 60 = 140 Mbps.
        let traffic = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 60.0)]);
        let out = run(&ControllerConfig::default(), &c, &ifaces, &traffic);
        assert_eq!(out.overloaded_before.len(), 1);
        assert_eq!(out.overloaded_before[0].0, EgressId(1));
        assert_eq!(out.overrides.len(), 1, "one detour suffices");
        let o = out.overrides.iter_sorted()[0];
        // Next-preferred is the public peer (egress 2), which fits.
        assert_eq!(o.target, EgressId(2));
        assert_eq!(o.target_kind, PeerKind::PublicPeer);
        assert!(out.residual_overloaded.is_empty());
        // Post-load respects the limit on every interface.
        for (e, info) in &ifaces {
            let u = out.post_utilization(*e, &ifaces);
            assert!(u <= 0.95 + 1e-9, "{e} at {u} (cap {})", info.capacity_mbps);
        }
    }

    #[test]
    fn detour_skips_full_intermediate_and_lands_on_transit() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"]);
        // 1.0/2.0 fill private (egress 1); 3.0 pins public (egress 2) near
        // its limit so the detour must skip to transit.
        let traffic = HashMap::from([
            (p("1.0.0.0/24"), 90.0),
            (p("2.0.0.0/24"), 60.0),
            (p("3.0.0.0/24"), 90.0),
        ]);
        // 3.0.0.0/24 prefers private too... need it on public. Instead,
        // shrink public capacity so nothing fits there.
        let mut ifaces = ifaces;
        ifaces.get_mut(&EgressId(2)).unwrap().capacity_mbps = 10.0;
        let out = run(&ControllerConfig::default(), &c, &ifaces, &traffic);
        // All three prefixes preferred egress 1 (240 Mbps on 100). The
        // allocator must shed to transit since public can't take anything.
        assert!(!out.overrides.is_empty());
        for o in out.overrides.iter_sorted() {
            assert_eq!(o.target, EgressId(3), "public is full, use transit");
            assert_eq!(o.target_kind, PeerKind::Transit);
        }
        assert!(out.residual_overloaded.is_empty());
    }

    #[test]
    fn detours_never_overload_their_target() {
        let (c, mut ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"]);
        // Make even transit small: not everything can be placed.
        ifaces.get_mut(&EgressId(3)).unwrap().capacity_mbps = 60.0;
        ifaces.get_mut(&EgressId(2)).unwrap().capacity_mbps = 60.0;
        let traffic = HashMap::from([
            (p("1.0.0.0/24"), 90.0),
            (p("2.0.0.0/24"), 80.0),
            (p("3.0.0.0/24"), 70.0),
        ]);
        let cfg = ControllerConfig {
            max_detour_fraction: 1.0,
            ..Default::default()
        };
        let out = run(&cfg, &c, &ifaces, &traffic);
        // Whatever happened, no *target* may exceed the limit; the hot
        // interface itself may stay overloaded (reported as residual).
        for (e, info) in &ifaces {
            if *e == EgressId(1) {
                continue;
            }
            let u = out.post_load.get(e).copied().unwrap_or(0.0) / info.capacity_mbps;
            assert!(u <= 0.95 + 1e-9, "target {e} overloaded to {u}");
        }
        assert!(
            out.residual_overloaded
                .iter()
                .any(|(e, _)| *e == EgressId(1)),
            "unplaceable overload is reported, not hidden"
        );
    }

    #[test]
    fn largest_first_moves_fewer_prefixes() {
        let prefixes = ["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24", "4.0.0.0/24"];
        let (c, ifaces) = standard_world(&prefixes);
        let traffic = HashMap::from([
            (p("1.0.0.0/24"), 70.0),
            (p("2.0.0.0/24"), 40.0),
            (p("3.0.0.0/24"), 10.0),
            (p("4.0.0.0/24"), 10.0),
        ]);
        let largest = run(
            &ControllerConfig {
                strategy: DetourStrategy::LargestFirst,
                ..Default::default()
            },
            &c,
            &ifaces,
            &traffic,
        );
        // 130 total on 100-cap: moving the 70 clears it in one override.
        assert_eq!(largest.overrides.len(), 1);
        assert_eq!(largest.overrides.iter_sorted()[0].prefix, p("1.0.0.0/24"));
    }

    #[test]
    fn max_overrides_cap_is_respected() {
        let prefixes = ["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24", "4.0.0.0/24"];
        let (c, ifaces) = standard_world(&prefixes);
        let traffic: HashMap<Prefix, f64> = prefixes.iter().map(|s| (p(s), 50.0)).collect();
        let cfg = ControllerConfig {
            max_overrides: 1,
            strategy: DetourStrategy::LargestFirst,
            ..Default::default()
        };
        let out = run(&cfg, &c, &ifaces, &traffic);
        assert_eq!(out.overrides.len(), 1);
        assert!(!out.residual_overloaded.is_empty());
    }

    #[test]
    fn detour_budget_limits_moved_volume() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 90.0), (p("2.0.0.0/24"), 90.0)]);
        let cfg = ControllerConfig {
            max_detour_fraction: 0.1, // 18 Mbps budget; nothing fits
            ..Default::default()
        };
        let out = run(&cfg, &c, &ifaces, &traffic);
        assert!(out.overrides.is_empty());
        assert!(!out.residual_overloaded.is_empty());
    }

    #[test]
    fn perf_overrides_are_honored_and_charged() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 50.0), (p("2.0.0.0/24"), 50.0)]);
        // Performance override steers 1.0/24 to transit already.
        let mut perf = OverrideSet::new();
        perf.insert(Override {
            prefix: p("1.0.0.0/24"),
            target: EgressId(3),
            target_kind: PeerKind::Transit,
            reason: OverrideReason::Performance,
            moved_mbps: 0.0,
        });
        let proj = project(&c, &traffic);
        let out = allocate(
            &ControllerConfig::default(),
            &ifaces,
            &c,
            &traffic,
            &proj,
            &perf,
            &OverrideSet::new(),
        );
        // 100 Mbps total would overload nothing once 1.0/24 sits on transit.
        assert!(out.overloaded_before.is_empty());
        let o = out.overrides.get(&p("1.0.0.0/24")).unwrap();
        assert_eq!(o.reason, OverrideReason::Performance);
        assert_eq!(o.moved_mbps, 50.0, "demand charged to the perf override");
        assert_eq!(out.post_load[&EgressId(3)], 50.0);
        assert_eq!(out.post_load[&EgressId(1)], 50.0);
    }

    #[test]
    fn splitting_places_a_half_when_whole_prefix_fits_nowhere() {
        // A single 120 Mbps prefix overloads the 100 Mbps PNI; the
        // alternates have only 65 Mbps each, so the whole prefix fits
        // nowhere — but half of it (60) does, and moving one half already
        // brings the PNI under its limit.
        let (c, mut ifaces) = standard_world(&["1.0.0.0/24"]);
        ifaces.get_mut(&EgressId(2)).unwrap().capacity_mbps = 65.0; // limit 61.75
        ifaces.get_mut(&EgressId(3)).unwrap().capacity_mbps = 65.0;
        let traffic = HashMap::from([(p("1.0.0.0/24"), 120.0)]);

        // Without splitting: stuck.
        let no_split = run(&ControllerConfig::default(), &c, &ifaces, &traffic);
        assert!(no_split.overrides.is_empty());
        assert!(
            !no_split.residual_overloaded.is_empty(),
            "whole-prefix allocator is stuck"
        );

        // With splitting: one /25 moves, the PNI is relieved.
        let cfg = ControllerConfig {
            split_depth: 1,
            ..Default::default()
        };
        let split = run(&cfg, &c, &ifaces, &traffic);
        assert!(
            split.residual_overloaded.is_empty(),
            "splitting relieves the overload: {:?}",
            split.residual_overloaded
        );
        let halves: Vec<&Override> = split
            .overrides
            .iter_sorted()
            .into_iter()
            .filter(|o| o.prefix.len() == 25)
            .collect();
        assert_eq!(halves.len(), 1, "one /25 override suffices");
        assert!(p("1.0.0.0/24").contains(&halves[0].prefix));
        assert_eq!(halves[0].moved_mbps, 60.0);
        // The target respects its limit.
        let post = split.post_load[&halves[0].target];
        assert!(post <= 61.75 + 1e-9);
    }

    #[test]
    fn splitting_disabled_by_default() {
        let cfg = ControllerConfig::default();
        assert_eq!(cfg.split_depth, 0);
        let bad = ControllerConfig {
            split_depth: 2,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn hysteresis_keeps_override_in_the_band_and_drops_it_below() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let cfg = ControllerConfig {
            withdraw_hysteresis: 0.10, // keep while util > 0.85
            ..Default::default()
        };

        // Epoch 1: 150 Mbps overloads the 100 Mbps PNI → one override.
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let proj = project(&c, &peak);
        let first = allocate(
            &cfg,
            &ifaces,
            &c,
            &peak,
            &proj,
            &OverrideSet::new(),
            &OverrideSet::new(),
        );
        assert_eq!(first.overrides.len(), 1);

        // Epoch 2: demand eases to 90 Mbps total — under the 95 limit but
        // inside the hysteresis band (>85): the override must persist.
        let band = HashMap::from([(p("1.0.0.0/24"), 50.0), (p("2.0.0.0/24"), 40.0)]);
        let proj = project(&c, &band);
        let second = allocate(
            &cfg,
            &ifaces,
            &c,
            &band,
            &proj,
            &OverrideSet::new(),
            &first.overrides,
        );
        assert_eq!(second.overrides.len(), 1, "kept inside the band");
        assert_eq!(
            second.overrides.iter_sorted()[0].prefix,
            first.overrides.iter_sorted()[0].prefix
        );

        // Epoch 3: demand falls to 60 Mbps — below the band: withdrawn.
        let quiet = HashMap::from([(p("1.0.0.0/24"), 35.0), (p("2.0.0.0/24"), 25.0)]);
        let proj = project(&c, &quiet);
        let third = allocate(
            &cfg,
            &ifaces,
            &c,
            &quiet,
            &proj,
            &OverrideSet::new(),
            &second.overrides,
        );
        assert!(third.overrides.is_empty(), "dropped below the band");

        // Without hysteresis the epoch-2 override would have been dropped.
        let proj = project(&c, &band);
        let stateless = allocate(
            &ControllerConfig::default(),
            &ifaces,
            &c,
            &band,
            &proj,
            &OverrideSet::new(),
            &first.overrides,
        );
        assert!(stateless.overrides.is_empty());
    }

    #[test]
    fn hysteresis_does_not_keep_overrides_onto_dead_routes() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24"]);
        let cfg = ControllerConfig {
            withdraw_hysteresis: 0.10,
            ..Default::default()
        };
        // Previous override points at an egress with no route.
        let mut previous = OverrideSet::new();
        previous.insert(Override {
            prefix: p("1.0.0.0/24"),
            target: EgressId(77),
            target_kind: PeerKind::Transit,
            reason: OverrideReason::Capacity,
            moved_mbps: 50.0,
        });
        let traffic = HashMap::from([(p("1.0.0.0/24"), 92.0)]);
        let proj = project(&c, &traffic);
        let out = allocate(
            &cfg,
            &ifaces,
            &c,
            &traffic,
            &proj,
            &OverrideSet::new(),
            &previous,
        );
        assert!(
            out.overrides.get(&p("1.0.0.0/24")).map(|o| o.target) != Some(EgressId(77)),
            "stale override not retained"
        );
    }

    #[test]
    fn explains_cover_every_override_and_record_rejections() {
        let (c, mut ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"]);
        // Public (egress 2) can take nothing: every detour must record a
        // no-spare-capacity rejection for it before landing on transit.
        ifaces.get_mut(&EgressId(2)).unwrap().capacity_mbps = 10.0;
        let traffic = HashMap::from([
            (p("1.0.0.0/24"), 90.0),
            (p("2.0.0.0/24"), 60.0),
            (p("3.0.0.0/24"), 90.0),
        ]);
        let out = run(&ControllerConfig::default(), &c, &ifaces, &traffic);
        assert!(!out.overrides.is_empty());
        for o in out.overrides.iter_sorted() {
            let rec = out
                .explains
                .iter()
                .find(|e| e.prefix == o.prefix.to_string() && e.emitted())
                .expect("every override has an emitted explain");
            assert_eq!(rec.chosen_egress, Some(o.target.0));
            assert_eq!(rec.trigger, "capacity");
            assert_eq!(rec.hot_egress, Some(1));
            assert!(rec.hot_util > 0.95, "decision made while hot");
            assert!(
                rec.rejected.iter().any(|r| r.egress == Some(2)
                    && matches!(r.reason, RejectReason::NoSpareCapacity { .. })),
                "the full public peer shows up in the rejection trail: {rec:?}"
            );
        }
    }

    #[test]
    fn explains_record_budget_and_infeasible_verdicts() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 90.0), (p("2.0.0.0/24"), 90.0)]);
        let cfg = ControllerConfig {
            max_detour_fraction: 0.1, // 18 Mbps budget; nothing fits
            ..Default::default()
        };
        let out = run(&cfg, &c, &ifaces, &traffic);
        assert!(out.overrides.is_empty());
        assert!(
            out.explains
                .iter()
                .all(|e| e.verdict == ExplainVerdict::DroppedDetourBudget),
            "{:?}",
            out.explains
        );
        assert_eq!(out.explains.len(), 2, "one record per considered victim");
    }

    #[test]
    fn perf_and_hysteresis_decisions_are_explained() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 50.0), (p("2.0.0.0/24"), 50.0)]);
        let mut perf = OverrideSet::new();
        perf.insert(Override {
            prefix: p("1.0.0.0/24"),
            target: EgressId(3),
            target_kind: PeerKind::Transit,
            reason: OverrideReason::Performance,
            moved_mbps: 0.0,
        });
        let proj = project(&c, &traffic);
        let out = allocate(
            &ControllerConfig::default(),
            &ifaces,
            &c,
            &traffic,
            &proj,
            &perf,
            &OverrideSet::new(),
        );
        let rec = &out.explains[0];
        assert_eq!(rec.trigger, "performance");
        assert_eq!(rec.chosen_egress, Some(3));
        assert!(rec.emitted());
    }

    #[test]
    fn best_alternative_first_prefers_close_alternates() {
        // Prefix A's only alternate is transit (rank distance large);
        // prefix B has a public alternate (rank distance 1). With the
        // BestAlternativeFirst strategy and both equally sized, B moves.
        let pni = EgressSpec::pni(1, 65001);
        let public = EgressSpec::settlement_free(2, 65002);
        let transit = EgressSpec::transit(3, 65010);
        let mut c = collector(&[pni, public, transit]);
        // Both prefixes on private; only B has the public alternate.
        announce(&mut c, pni, "10.0.0.0/24"); // A
        announce(&mut c, transit, "10.0.0.0/24");
        announce(&mut c, pni, "11.0.0.0/24"); // B
        announce(&mut c, public, "11.0.0.0/24");
        announce(&mut c, transit, "11.0.0.0/24");

        let interfaces = interface_map(&[(pni, 100.0), (public, 1000.0), (transit, 100_000.0)]);
        let traffic = HashMap::from([(p("10.0.0.0/24"), 60.0), (p("11.0.0.0/24"), 60.0)]);
        let out = run(&ControllerConfig::default(), &c, &interfaces, &traffic);
        assert_eq!(out.overrides.len(), 1);
        let o = out.overrides.iter_sorted()[0];
        assert_eq!(o.prefix, p("11.0.0.0/24"), "B has the closer alternate");
        assert_eq!(o.target, EgressId(2));
    }

    /// Two transit alternates in the same preference band, priced apart:
    /// cost-aware steering must take the cheap one (with provenance), and
    /// the cost-blind default must keep taking the first in rank order.
    #[test]
    fn cost_tiebreak_picks_cheapest_in_band() {
        let pni = EgressSpec::pni(1, 65001);
        let expensive = EgressSpec::transit(3, 65010).usd_per_mbps(3.0);
        let cheap = EgressSpec::transit(4, 65011).usd_per_mbps(0.5);
        let specs = [pni, expensive, cheap];
        let mut c = collector(&specs);
        for spec in specs {
            announce(&mut c, spec, "1.0.0.0/24");
            announce(&mut c, spec, "2.0.0.0/24");
        }
        let interfaces = interface_map(&[(pni, 100.0), (expensive, 100_000.0), (cheap, 100_000.0)]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 60.0)]);

        // Cost-blind: first transit in rank order wins (lower egress id).
        let blind = run(&ControllerConfig::default(), &c, &interfaces, &traffic);
        assert_eq!(blind.overrides.len(), 1);
        assert_eq!(blind.overrides.iter_sorted()[0].target, EgressId(3));

        // Cost-aware: the cheap transit wins, and the explain trail shows
        // the expensive one rejected as a costlier alternate.
        let cfg = ControllerConfig {
            cost_aware: true,
            ..Default::default()
        };
        let aware = run(&cfg, &c, &interfaces, &traffic);
        assert_eq!(aware.overrides.len(), 1);
        let o = aware.overrides.iter_sorted()[0];
        assert_eq!(o.target, EgressId(4), "cheapest same-band alternate");
        let rec = aware
            .explains
            .iter()
            .find(|e| e.emitted() && e.trigger == "capacity")
            .unwrap();
        assert_eq!(rec.chosen_egress, Some(4));
        assert_eq!(rec.chosen_usd_per_mbps, Some(0.5));
        assert!(
            rec.rejected.iter().any(|r| r.egress == Some(3)
                && matches!(
                    r.reason,
                    RejectReason::CostlierAlternate {
                        usd_per_mbps: 3.0,
                        chosen_usd_per_mbps: 0.5
                    }
                )),
            "{rec:?}"
        );
    }

    /// The cost tiebreak is strictly a tiebreak: it never crosses into a
    /// cheaper-but-lower preference band, and it never picks a same-band
    /// alternate that lacks spare capacity.
    #[test]
    fn cost_tiebreak_never_overrides_preference_or_capacity() {
        // World: hot PNI; a free public alternate (higher band) and a cheap
        // transit (lower band). Cost-aware must still take the public peer
        // even though transit's marginal price is irrelevant — band first.
        let pni = EgressSpec::pni(1, 65001);
        let public = EgressSpec::settlement_free(2, 65002);
        let cheap_transit = EgressSpec::transit(3, 65010).usd_per_mbps(0.01);
        let specs = [pni, public, cheap_transit];
        let mut c = collector(&specs);
        for spec in specs {
            announce(&mut c, spec, "1.0.0.0/24");
        }
        let cfg = ControllerConfig {
            cost_aware: true,
            ..Default::default()
        };
        let interfaces =
            interface_map(&[(pni, 50.0), (public, 1000.0), (cheap_transit, 100_000.0)]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 80.0)]);
        let out = run(&cfg, &c, &interfaces, &traffic);
        assert_eq!(out.overrides.len(), 1);
        assert_eq!(
            out.overrides.iter_sorted()[0].target,
            EgressId(2),
            "band beats price: the settlement-free peer wins"
        );

        // Now pin the cheap transit at capacity: the tiebreak may not
        // relax the capacity check to reach it.
        let expensive = EgressSpec::transit(4, 65011).usd_per_mbps(3.0);
        let specs = [pni, cheap_transit, expensive];
        let mut c = collector(&specs);
        for spec in specs {
            announce(&mut c, spec, "1.0.0.0/24");
            announce(&mut c, spec, "9.0.0.0/24");
        }
        let interfaces =
            interface_map(&[(pni, 50.0), (cheap_transit, 100.0), (expensive, 100_000.0)]);
        // 9.0/24 pins the cheap transit near its limit; 1.0/24 overloads
        // the PNI and must detour to the *expensive* transit.
        let traffic = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("9.0.0.0/24"), 90.0)]);
        let out = run(&cfg, &c, &interfaces, &traffic);
        let o = out.overrides.get(&p("1.0.0.0/24")).unwrap();
        assert_eq!(
            o.target,
            EgressId(4),
            "full cheap transit is infeasible; cost never overrides capacity"
        );
        // And the full one is in the trail as capacity-rejected, not cost-rejected.
        let rec = out
            .explains
            .iter()
            .find(|e| e.prefix == "1.0.0.0/24" && e.emitted())
            .unwrap();
        assert!(rec.rejected.iter().any(
            |r| r.egress == Some(3) && matches!(r.reason, RejectReason::NoSpareCapacity { .. })
        ));
    }

    /// With uniform prices (the default cost model), cost-aware and
    /// cost-blind allocation are identical — the tiebreak only acts on
    /// real price asymmetry.
    #[test]
    fn uniform_prices_make_cost_aware_a_noop() {
        let (c, ifaces) = standard_world(&["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"]);
        let traffic = HashMap::from([
            (p("1.0.0.0/24"), 90.0),
            (p("2.0.0.0/24"), 60.0),
            (p("3.0.0.0/24"), 90.0),
        ]);
        let blind = run(&ControllerConfig::default(), &c, &ifaces, &traffic);
        let aware = run(
            &ControllerConfig {
                cost_aware: true,
                ..Default::default()
            },
            &c,
            &ifaces,
            &traffic,
        );
        assert_eq!(blind.overrides, aware.overrides);
        assert_eq!(blind.post_load, aware.post_load);
    }
}
