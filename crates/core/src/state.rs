//! Controller input state: what the controller knows about its PoP.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ef_bgp::egress::{EgressPolicy, PeeringClass};
use ef_bgp::peer::PeerKind;
use ef_bgp::route::EgressId;
use ef_net_types::Prefix;

/// Static facts about one egress interface, as configured into the
/// controller (capacity comes from the provisioning system, not from BGP).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterfaceInfo {
    /// Usable capacity, Mbps.
    pub capacity_mbps: f64,
    /// Peering policy: interconnect economics, from which the routing kind
    /// (for reporting and detour-target statistics) is derived.
    pub policy: EgressPolicy,
}

impl InterfaceInfo {
    /// Plain capacity + kind info (the pre-cost constructor): the class is
    /// the default-priced class for that kind, so every transit is priced
    /// uniformly and cost-blind callers see unchanged decisions.
    pub fn new(capacity_mbps: f64, kind: PeerKind) -> Self {
        let class = PeeringClass::from_kind(kind).unwrap_or(PeeringClass::SettlementFree);
        InterfaceInfo {
            capacity_mbps,
            policy: EgressPolicy::new(class),
        }
    }

    /// Capacity + explicit peering policy (the typed constructor).
    pub fn with_policy(capacity_mbps: f64, policy: EgressPolicy) -> Self {
        InterfaceInfo {
            capacity_mbps,
            policy,
        }
    }

    /// The routing-layer interconnect kind, derived from the policy.
    pub fn kind(&self) -> PeerKind {
        self.policy.kind()
    }

    /// Marginal cost of billing one more Mbps on this interface, $/Mbps
    /// per month (zero for anything but transit).
    pub fn marginal_usd_per_mbps(&self) -> f64 {
        self.policy.marginal_usd_per_mbps()
    }
}

/// Per-prefix demand estimates for one epoch, Mbps.
pub type TrafficState = HashMap<Prefix, f64>;

/// Total demand, summed in prefix order. Float addition is not
/// associative, so summing in `HashMap` iteration order would make the
/// low bits of every budget differ run to run; deterministic runs (and
/// the seed-reproducibility guarantee) need a canonical order.
pub fn total_traffic_mbps(traffic: &TrafficState) -> f64 {
    let mut entries: Vec<(&Prefix, &f64)> = traffic.iter().collect();
    entries.sort_by_key(|(p, _)| **p);
    entries.iter().map(|(_, mbps)| **mbps).sum()
}

/// Per-interface static info map.
pub type InterfaceMap = HashMap<EgressId, InterfaceInfo>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_info_is_plain_data() {
        let info = InterfaceInfo::new(10_000.0, PeerKind::PrivatePeer);
        assert_eq!(info.kind(), PeerKind::PrivatePeer);
        assert_eq!(info.marginal_usd_per_mbps(), 0.0);
        let json = serde_json::to_string(&info).unwrap();
        let back: InterfaceInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(info, back);
        // Transit is the only metered class.
        let transit = InterfaceInfo::new(40_000.0, PeerKind::Transit);
        assert!(transit.marginal_usd_per_mbps() > 0.0);
    }
}
