//! Controller input state: what the controller knows about its PoP.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ef_bgp::peer::PeerKind;
use ef_bgp::route::EgressId;
use ef_net_types::Prefix;

/// Static facts about one egress interface, as configured into the
/// controller (capacity comes from the provisioning system, not from BGP).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterfaceInfo {
    /// Usable capacity, Mbps.
    pub capacity_mbps: f64,
    /// Interconnect kind (for reporting and detour-target statistics).
    pub kind: PeerKind,
}

/// Per-prefix demand estimates for one epoch, Mbps.
pub type TrafficState = HashMap<Prefix, f64>;

/// Total demand, summed in prefix order. Float addition is not
/// associative, so summing in `HashMap` iteration order would make the
/// low bits of every budget differ run to run; deterministic runs (and
/// the seed-reproducibility guarantee) need a canonical order.
pub fn total_traffic_mbps(traffic: &TrafficState) -> f64 {
    let mut entries: Vec<(&Prefix, &f64)> = traffic.iter().collect();
    entries.sort_by_key(|(p, _)| **p);
    entries.iter().map(|(_, mbps)| **mbps).sum()
}

/// Per-interface static info map.
pub type InterfaceMap = HashMap<EgressId, InterfaceInfo>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_info_is_plain_data() {
        let info = InterfaceInfo {
            capacity_mbps: 10_000.0,
            kind: PeerKind::PrivatePeer,
        };
        let json = serde_json::to_string(&info).unwrap();
        let back: InterfaceInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(info, back);
    }
}
