//! Controller configuration.

use serde::{Deserialize, Serialize};

use ef_net_types::Community;

use crate::allocator::DetourStrategy;

/// Tunables for one PoP's controller.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Utilization limit: an interface whose projected load exceeds
    /// `limit × capacity` is overloaded and must shed traffic. The paper
    /// runs ≈0.95, holding headroom for projection error and sub-cycle
    /// bursts.
    pub util_limit: f64,
    /// Controller cycle length, seconds (paper: ~30 s).
    pub epoch_secs: u64,
    /// How the allocator picks which prefixes to detour.
    pub strategy: DetourStrategy,
    /// Community stamped on every injected override so routers can verify
    /// provenance and operators can audit.
    pub override_marker: Community,
    /// Safety valve: at most this fraction of the PoP's total demand may be
    /// detoured in one epoch. 1.0 (the default) disables the guard;
    /// production deployments would set something like 0.25.
    pub max_detour_fraction: f64,
    /// Safety valve: hard cap on concurrently active overrides
    /// (0 = unlimited).
    pub max_overrides: usize,
    /// Dry-run: compute and report overrides but never inject them.
    pub dry_run: bool,
    /// Withdraw hysteresis: a standing capacity override is kept while its
    /// source interface still projects above `util_limit − hysteresis`,
    /// preventing flapping when demand hovers at the limit. 0 (default)
    /// reproduces the paper's fully stateless recompute.
    pub withdraw_hysteresis: f64,
    /// Prefix splitting (paper §7 future work): when a whole prefix fits on
    /// no single alternate, allow detouring its two more-specific halves
    /// independently. 0 = off (paper-faithful); 1 = one halving.
    pub split_depth: u8,
    /// Graceful degradation: when the controller's inputs (BMP feed or
    /// traffic estimates) are older than this horizon, the epoch runs in
    /// degraded mode — the override set may shrink or hold but never grow,
    /// and every kept detour target is re-validated against the (stale)
    /// routes and capacity.
    pub stale_input_secs: u64,
    /// Graceful degradation: past this input age the controller stops
    /// trusting its view entirely and fails open — every override is
    /// withdrawn, returning the PoP to plain BGP (paper §4.4's fail-static
    /// argument, made explicit).
    pub fail_open_secs: u64,
    /// Blast-radius cap: at most this fraction of the PoP's total demand
    /// may be *newly* shifted (prefixes not already overridden) in a single
    /// epoch. 1.0 disables the guard.
    pub max_shift_fraction_per_epoch: f64,
    /// Use the incremental projection cache (per-prefix memoization fenced
    /// by collector generation stamps). Purely an implementation strategy:
    /// epoch output is byte-identical either way. Off is only useful for
    /// cross-checking and benchmarking the from-scratch path.
    #[serde(default = "default_incremental")]
    pub incremental: bool,
    /// Cost-aware detours: when several feasible alternates sit in the
    /// same BGP preference band, pick the one with the lowest marginal
    /// cost instead of the first in rank order. Never degrades the BGP
    /// band and never overrides a capacity constraint — it is strictly a
    /// tiebreak. Off (default) reproduces cost-blind Edge Fabric.
    #[serde(default)]
    pub cost_aware: bool,
}

fn default_incremental() -> bool {
    true
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            util_limit: 0.95,
            epoch_secs: 30,
            strategy: DetourStrategy::BestAlternativeFirst,
            override_marker: Community::new(32934, 999),
            max_detour_fraction: 1.0,
            max_overrides: 0,
            dry_run: false,
            withdraw_hysteresis: 0.0,
            split_depth: 0,
            stale_input_secs: 120,
            fail_open_secs: 600,
            max_shift_fraction_per_epoch: 1.0,
            incremental: true,
            cost_aware: false,
        }
    }
}

impl ControllerConfig {
    /// Validates invariants; call after deserializing external config.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0 < self.util_limit && self.util_limit <= 1.0) {
            return Err(format!("util_limit {} outside (0, 1]", self.util_limit));
        }
        if self.epoch_secs == 0 {
            return Err("epoch_secs must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.max_detour_fraction) {
            return Err(format!(
                "max_detour_fraction {} outside [0, 1]",
                self.max_detour_fraction
            ));
        }
        if !(0.0..self.util_limit).contains(&self.withdraw_hysteresis) {
            return Err(format!(
                "withdraw_hysteresis {} outside [0, util_limit)",
                self.withdraw_hysteresis
            ));
        }
        if self.split_depth > 1 {
            return Err(format!("split_depth {} > 1 unsupported", self.split_depth));
        }
        if self.stale_input_secs == 0 {
            return Err("stale_input_secs must be positive".into());
        }
        if self.fail_open_secs < self.stale_input_secs {
            return Err(format!(
                "fail_open_secs {} shorter than stale_input_secs {}",
                self.fail_open_secs, self.stale_input_secs
            ));
        }
        if !(0.0 < self.max_shift_fraction_per_epoch && self.max_shift_fraction_per_epoch <= 1.0) {
            return Err(format!(
                "max_shift_fraction_per_epoch {} outside (0, 1]",
                self.max_shift_fraction_per_epoch
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = ControllerConfig::default();
        cfg.validate().unwrap();
        assert!((cfg.util_limit - 0.95).abs() < 1e-12);
        assert_eq!(cfg.epoch_secs, 30);
        assert!(!cfg.dry_run);
    }

    #[test]
    fn validation_catches_bad_values() {
        let bad = |f: fn(&mut ControllerConfig)| {
            let mut cfg = ControllerConfig::default();
            f(&mut cfg);
            cfg.validate().is_err()
        };
        assert!(bad(|c| c.util_limit = 0.0));
        assert!(bad(|c| c.util_limit = 1.2));
        assert!(bad(|c| c.epoch_secs = 0));
        assert!(bad(|c| c.max_detour_fraction = 1.5));
        assert!(bad(|c| c.withdraw_hysteresis = 0.95));
        assert!(bad(|c| c.split_depth = 2));
        assert!(bad(|c| c.stale_input_secs = 0));
        assert!(bad(|c| c.fail_open_secs = 10)); // < stale_input_secs
        assert!(bad(|c| c.max_shift_fraction_per_epoch = 0.0));
        assert!(bad(|c| c.max_shift_fraction_per_epoch = 1.5));
    }

    #[test]
    fn degradation_horizons_are_ordered_by_default() {
        let cfg = ControllerConfig::default();
        assert!(
            cfg.stale_input_secs >= cfg.epoch_secs,
            "fresh epochs never degrade"
        );
        assert!(cfg.fail_open_secs >= cfg.stale_input_secs);
        assert_eq!(cfg.max_shift_fraction_per_epoch, 1.0, "cap off by default");
    }

    #[test]
    fn incremental_defaults_on_for_old_configs() {
        // Configs serialized before the flag existed must load with it on.
        let json = serde_json::to_string(&ControllerConfig::default()).unwrap();
        let mut value = serde_json::parse_value(&json).unwrap();
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(key, _)| key != "incremental");
        }
        let back = <ControllerConfig as serde::Deserialize>::from_value(&value).unwrap();
        assert!(back.incremental);
    }

    #[test]
    fn cost_aware_defaults_off_for_old_configs() {
        // Pre-cost configs must load cost-blind: steering decisions may
        // not change under anyone's feet on upgrade.
        let json = serde_json::to_string(&ControllerConfig::default()).unwrap();
        let mut value = serde_json::parse_value(&json).unwrap();
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(key, _)| key != "cost_aware");
        }
        let back = <ControllerConfig as serde::Deserialize>::from_value(&value).unwrap();
        assert!(!back.cost_aware);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ControllerConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ControllerConfig = serde_json::from_str(&json).unwrap();
        assert!((back.util_limit - cfg.util_limit).abs() < 1e-12);
        assert_eq!(back.epoch_secs, cfg.epoch_secs);
    }
}
