//! Performance-aware overrides (paper §6.2).
//!
//! The capacity controller only reacts to congestion; §6 closes the loop on
//! *latency*: alternate-path measurements (see `ef-perf`) reveal the small
//! tail of prefixes whose BGP-preferred path is substantially slower than
//! an available alternate, and this module turns those findings into
//! [`Override`]s with [`OverrideReason::Performance`]. The capacity
//! allocator treats them as prior intents: it charges their demand to
//! their targets and never re-steers those prefixes for capacity.
//!
//! Guardrails follow the paper's caution: only act on comparisons with
//! enough samples, only when the improvement clears a threshold (default
//! 20 ms — large enough to matter, far above measurement noise), and only
//! onto alternates that actually exist in the current route table.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ef_bgp::route::EgressId;
use ef_net_types::Prefix;

use crate::collector::RouteCollector;
use crate::overrides::{Override, OverrideReason, OverrideSet};

/// Tunables for the §6 extension.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfAwareConfig {
    /// Minimum median improvement (ms) before a prefix is steered.
    pub improvement_threshold_ms: f64,
    /// Minimum measurement samples on both paths.
    pub min_samples: usize,
    /// Cap on concurrent performance overrides (0 = unlimited).
    pub max_overrides: usize,
}

impl Default for PerfAwareConfig {
    fn default() -> Self {
        PerfAwareConfig {
            improvement_threshold_ms: 20.0,
            min_samples: 30,
            max_overrides: 0,
        }
    }
}

/// One measured comparison, already mapped into controller vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredComparison {
    /// The prefix.
    pub prefix: Prefix,
    /// BGP's preferred egress when measured.
    pub preferred: EgressId,
    /// The fastest measured alternate.
    pub best_alt: EgressId,
    /// Median RTT improvement of the alternate, ms (positive = faster).
    pub improvement_ms: f64,
    /// Samples behind the weaker of the two medians.
    pub samples: usize,
}

/// Builds the performance override set from measurement comparisons.
///
/// Comparisons that fail the guardrails — too little improvement, too few
/// samples, an alternate that no longer exists in `routes` — are skipped.
/// If `max_overrides` caps the set, the largest improvements win.
pub fn build_perf_overrides(
    cfg: &PerfAwareConfig,
    routes: &RouteCollector,
    comparisons: impl IntoIterator<Item = MeasuredComparison>,
) -> OverrideSet {
    let mut eligible: Vec<(MeasuredComparison, ef_bgp::peer::PeerKind)> = comparisons
        .into_iter()
        .filter(|c| c.improvement_ms >= cfg.improvement_threshold_ms)
        .filter(|c| c.samples >= cfg.min_samples)
        .filter_map(|c| {
            // The alternate must still be a live, organic route.
            routes
                .candidates(&c.prefix)
                .iter()
                .find(|r| !r.is_override() && r.egress == c.best_alt)
                .map(|r| (c, r.source.kind))
        })
        .collect();
    eligible.sort_by(|a, b| {
        b.0.improvement_ms
            .total_cmp(&a.0.improvement_ms)
            .then(a.0.prefix.cmp(&b.0.prefix))
    });
    if cfg.max_overrides > 0 {
        eligible.truncate(cfg.max_overrides);
    }

    let mut set = OverrideSet::new();
    for (c, kind) in eligible {
        set.insert(Override {
            prefix: c.prefix,
            target: c.best_alt,
            target_kind: kind,
            reason: OverrideReason::Performance,
            moved_mbps: 0.0, // charged by the allocator from live traffic
        });
    }
    set
}

/// Convenience: adapts `ef-perf` [`PathComparison`](ef_perf::compare::PathComparison)s (keyed by prefix
/// index) into [`MeasuredComparison`]s using an index→prefix mapping.
pub fn adapt_comparisons<'a>(
    comparisons: &'a [ef_perf::compare::PathComparison],
    index_to_prefix: &'a HashMap<u32, Prefix>,
    samples: usize,
) -> impl Iterator<Item = MeasuredComparison> + 'a {
    comparisons.iter().filter_map(move |c| {
        index_to_prefix
            .get(&c.prefix_idx)
            .map(|prefix| MeasuredComparison {
                prefix: *prefix,
                preferred: EgressId(c.preferred_egress),
                best_alt: EgressId(c.best_alt_egress),
                improvement_ms: c.improvement_ms,
                samples,
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::bmp::{BmpMessage, BmpPeerHeader};
    use ef_bgp::message::UpdateMessage;
    use ef_bgp::peer::{PeerId, PeerKind};
    use ef_net_types::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn collector_with(prefixes: &[&str]) -> RouteCollector {
        let mut c = RouteCollector::new(HashMap::from([
            (PeerId(1), EgressId(1)),
            (PeerId(2), EgressId(2)),
        ]));
        for prefix in prefixes {
            for (peer, asn, kind) in [
                (1u64, 65001u32, PeerKind::PrivatePeer),
                (2, 65010, PeerKind::Transit),
            ] {
                let mut attrs = PathAttributes {
                    local_pref: Some(kind.default_local_pref()),
                    as_path: AsPath::sequence([Asn(asn)]),
                    ..Default::default()
                };
                attrs.add_community(kind.tag_community());
                c.ingest([BmpMessage::RouteMonitoring {
                    peer: BmpPeerHeader {
                        peer: PeerId(peer),
                        peer_asn: Asn(asn),
                        peer_bgp_id: "10.0.0.1".parse().unwrap(),
                        timestamp_ms: 0,
                    },
                    update: UpdateMessage::announce(p(prefix), attrs),
                }]);
            }
        }
        c
    }

    fn cmp(prefix: &str, improvement: f64, samples: usize) -> MeasuredComparison {
        MeasuredComparison {
            prefix: p(prefix),
            preferred: EgressId(1),
            best_alt: EgressId(2),
            improvement_ms: improvement,
            samples,
        }
    }

    #[test]
    fn clears_threshold_and_builds_override() {
        let routes = collector_with(&["1.0.0.0/24"]);
        let set = build_perf_overrides(
            &PerfAwareConfig::default(),
            &routes,
            [cmp("1.0.0.0/24", 35.0, 100)],
        );
        assert_eq!(set.len(), 1);
        let o = set.get(&p("1.0.0.0/24")).unwrap();
        assert_eq!(o.target, EgressId(2));
        assert_eq!(o.target_kind, PeerKind::Transit);
        assert_eq!(o.reason, OverrideReason::Performance);
    }

    #[test]
    fn below_threshold_is_ignored() {
        let routes = collector_with(&["1.0.0.0/24"]);
        let set = build_perf_overrides(
            &PerfAwareConfig::default(),
            &routes,
            [cmp("1.0.0.0/24", 19.9, 100)],
        );
        assert!(set.is_empty());
    }

    #[test]
    fn too_few_samples_is_ignored() {
        let routes = collector_with(&["1.0.0.0/24"]);
        let set = build_perf_overrides(
            &PerfAwareConfig::default(),
            &routes,
            [cmp("1.0.0.0/24", 50.0, 5)],
        );
        assert!(set.is_empty());
    }

    #[test]
    fn stale_alternate_is_ignored() {
        // Comparison names egress 7, which no live route uses.
        let routes = collector_with(&["1.0.0.0/24"]);
        let mut c = cmp("1.0.0.0/24", 50.0, 100);
        c.best_alt = EgressId(7);
        let set = build_perf_overrides(&PerfAwareConfig::default(), &routes, [c]);
        assert!(set.is_empty());
    }

    #[test]
    fn cap_keeps_largest_improvements() {
        let routes = collector_with(&["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"]);
        let cfg = PerfAwareConfig {
            max_overrides: 2,
            ..Default::default()
        };
        let set = build_perf_overrides(
            &cfg,
            &routes,
            [
                cmp("1.0.0.0/24", 25.0, 100),
                cmp("2.0.0.0/24", 90.0, 100),
                cmp("3.0.0.0/24", 40.0, 100),
            ],
        );
        assert_eq!(set.len(), 2);
        assert!(set.contains(&p("2.0.0.0/24")));
        assert!(set.contains(&p("3.0.0.0/24")));
        assert!(!set.contains(&p("1.0.0.0/24")));
    }

    #[test]
    fn adapt_maps_indices_to_prefixes() {
        let comparisons = vec![ef_perf::compare::PathComparison {
            prefix_idx: 7,
            preferred_egress: 1,
            preferred_median_ms: 50.0,
            best_alt_egress: 2,
            best_alt_median_ms: 20.0,
            improvement_ms: 30.0,
            alternates: 1,
        }];
        let map = HashMap::from([(7u32, p("9.9.9.0/24"))]);
        let adapted: Vec<MeasuredComparison> = adapt_comparisons(&comparisons, &map, 64).collect();
        assert_eq!(adapted.len(), 1);
        assert_eq!(adapted[0].prefix, p("9.9.9.0/24"));
        assert_eq!(adapted[0].improvement_ms, 30.0);
        // Unmapped indices vanish.
        let empty: Vec<MeasuredComparison> =
            adapt_comparisons(&comparisons, &HashMap::new(), 64).collect();
        assert!(empty.is_empty());
    }
}
