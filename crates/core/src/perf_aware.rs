//! Performance-aware overrides (paper §6.2).
//!
//! The capacity controller only reacts to congestion; §6 closes the loop on
//! *latency*: alternate-path measurements (see `ef-perf`) reveal the small
//! tail of prefixes whose BGP-preferred path is substantially slower than
//! an available alternate, and this module turns those findings into
//! [`Override`]s with [`OverrideReason::Performance`]. The capacity
//! allocator treats them as prior intents: it charges their demand to
//! their targets and never re-steers those prefixes for capacity.
//!
//! Guardrails follow the paper's caution: only act on comparisons with
//! enough samples, only when the improvement clears a threshold (default
//! 20 ms — large enough to matter, far above measurement noise), and only
//! onto alternates that actually exist in the current route table.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ef_bgp::route::EgressId;
use ef_net_types::Prefix;

use crate::collector::RouteCollector;
use crate::overrides::{Override, OverrideReason, OverrideSet};
use crate::state::InterfaceMap;

/// Tunables for the §6 extension.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfAwareConfig {
    /// Minimum median improvement (ms) before a prefix is steered.
    pub improvement_threshold_ms: f64,
    /// Minimum measurement samples on both paths.
    pub min_samples: usize,
    /// Cap on concurrent performance overrides (0 = unlimited).
    pub max_overrides: usize,
    /// Cost-vs-RTT tradeoff, ms per $/Mbps: when a performance detour
    /// targets an egress with a *higher* marginal cost than the preferred
    /// path, the measured improvement must additionally clear
    /// `cost_vs_rtt × (alt − preferred)` $/Mbps of price delta. 0 (the
    /// default) steers on latency alone — the pre-cost behavior. Moving to
    /// a cheaper-or-equal alternate is never penalized.
    #[serde(default)]
    pub cost_vs_rtt: f64,
}

impl Default for PerfAwareConfig {
    fn default() -> Self {
        PerfAwareConfig {
            improvement_threshold_ms: 20.0,
            min_samples: 30,
            max_overrides: 0,
            cost_vs_rtt: 0.0,
        }
    }
}

/// One measured comparison, already mapped into controller vocabulary.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredComparison {
    /// The prefix.
    pub prefix: Prefix,
    /// BGP's preferred egress when measured.
    pub preferred: EgressId,
    /// The fastest measured alternate.
    pub best_alt: EgressId,
    /// Median RTT improvement of the alternate, ms (positive = faster).
    pub improvement_ms: f64,
    /// Samples behind the weaker of the two medians.
    pub samples: usize,
}

/// Builds the performance override set from measurement comparisons.
///
/// Comparisons that fail the guardrails — too little improvement, too few
/// samples, an alternate that no longer exists in `routes` — are skipped.
/// When `cost_vs_rtt > 0`, a detour onto a costlier egress must clear a
/// raised bar: `improvement_threshold_ms + cost_vs_rtt × price delta`.
/// If `max_overrides` caps the set, the largest improvements win.
pub fn build_perf_overrides(
    cfg: &PerfAwareConfig,
    interfaces: &InterfaceMap,
    routes: &RouteCollector,
    comparisons: impl IntoIterator<Item = MeasuredComparison>,
) -> OverrideSet {
    let cost_of = |egress: EgressId| {
        interfaces
            .get(&egress)
            .map(|i| i.marginal_usd_per_mbps())
            .unwrap_or(0.0)
    };
    let mut eligible: Vec<(MeasuredComparison, ef_bgp::peer::PeerKind)> = comparisons
        .into_iter()
        .filter(|c| {
            let premium = (cost_of(c.best_alt) - cost_of(c.preferred)).max(0.0);
            c.improvement_ms >= cfg.improvement_threshold_ms + cfg.cost_vs_rtt * premium
        })
        .filter(|c| c.samples >= cfg.min_samples)
        .filter_map(|c| {
            // The alternate must still be a live, organic route.
            routes
                .candidates(&c.prefix)
                .iter()
                .find(|r| !r.is_override() && r.egress == c.best_alt)
                .map(|r| (c, r.source.kind))
        })
        .collect();
    eligible.sort_by(|a, b| {
        b.0.improvement_ms
            .total_cmp(&a.0.improvement_ms)
            .then(a.0.prefix.cmp(&b.0.prefix))
    });
    if cfg.max_overrides > 0 {
        eligible.truncate(cfg.max_overrides);
    }

    let mut set = OverrideSet::new();
    for (c, kind) in eligible {
        set.insert(Override {
            prefix: c.prefix,
            target: c.best_alt,
            target_kind: kind,
            reason: OverrideReason::Performance,
            moved_mbps: 0.0, // charged by the allocator from live traffic
        });
    }
    set
}

/// Convenience: adapts `ef-perf` [`PathComparison`](ef_perf::compare::PathComparison)s (keyed by prefix
/// index) into [`MeasuredComparison`]s using an index→prefix mapping.
pub fn adapt_comparisons<'a>(
    comparisons: &'a [ef_perf::compare::PathComparison],
    index_to_prefix: &'a HashMap<u32, Prefix>,
    samples: usize,
) -> impl Iterator<Item = MeasuredComparison> + 'a {
    comparisons.iter().filter_map(move |c| {
        index_to_prefix
            .get(&c.prefix_idx)
            .map(|prefix| MeasuredComparison {
                prefix: *prefix,
                preferred: EgressId(c.preferred_egress),
                best_alt: EgressId(c.best_alt_egress),
                improvement_ms: c.improvement_ms,
                samples,
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InterfaceInfo;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::bmp::{BmpMessage, BmpPeerHeader};
    use ef_bgp::message::UpdateMessage;
    use ef_bgp::peer::{PeerId, PeerKind};
    use ef_net_types::Asn;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    /// Egress 1 is a free PNI, egress 2 a $2/Mbps transit.
    fn ifaces() -> InterfaceMap {
        HashMap::from([
            (
                EgressId(1),
                InterfaceInfo::new(100.0, PeerKind::PrivatePeer),
            ),
            (
                EgressId(2),
                InterfaceInfo::with_policy(
                    100_000.0,
                    ef_bgp::egress::PeeringClass::Transit { usd_per_mbps: 2.0 }.into(),
                ),
            ),
        ])
    }

    fn collector_with(prefixes: &[&str]) -> RouteCollector {
        let mut c = RouteCollector::new(HashMap::from([
            (PeerId(1), EgressId(1)),
            (PeerId(2), EgressId(2)),
        ]));
        for prefix in prefixes {
            for (peer, asn, kind) in [
                (1u64, 65001u32, PeerKind::PrivatePeer),
                (2, 65010, PeerKind::Transit),
            ] {
                let mut attrs = PathAttributes {
                    local_pref: Some(kind.default_local_pref()),
                    as_path: AsPath::sequence([Asn(asn)]),
                    ..Default::default()
                };
                attrs.add_community(kind.tag_community());
                c.ingest([BmpMessage::RouteMonitoring {
                    peer: BmpPeerHeader {
                        peer: PeerId(peer),
                        peer_asn: Asn(asn),
                        peer_bgp_id: "10.0.0.1".parse().unwrap(),
                        timestamp_ms: 0,
                    },
                    update: UpdateMessage::announce(p(prefix), attrs),
                }]);
            }
        }
        c
    }

    fn cmp(prefix: &str, improvement: f64, samples: usize) -> MeasuredComparison {
        MeasuredComparison {
            prefix: p(prefix),
            preferred: EgressId(1),
            best_alt: EgressId(2),
            improvement_ms: improvement,
            samples,
        }
    }

    #[test]
    fn clears_threshold_and_builds_override() {
        let routes = collector_with(&["1.0.0.0/24"]);
        let set = build_perf_overrides(
            &PerfAwareConfig::default(),
            &ifaces(),
            &routes,
            [cmp("1.0.0.0/24", 35.0, 100)],
        );
        assert_eq!(set.len(), 1);
        let o = set.get(&p("1.0.0.0/24")).unwrap();
        assert_eq!(o.target, EgressId(2));
        assert_eq!(o.target_kind, PeerKind::Transit);
        assert_eq!(o.reason, OverrideReason::Performance);
    }

    #[test]
    fn below_threshold_is_ignored() {
        let routes = collector_with(&["1.0.0.0/24"]);
        let set = build_perf_overrides(
            &PerfAwareConfig::default(),
            &ifaces(),
            &routes,
            [cmp("1.0.0.0/24", 19.9, 100)],
        );
        assert!(set.is_empty());
    }

    #[test]
    fn too_few_samples_is_ignored() {
        let routes = collector_with(&["1.0.0.0/24"]);
        let set = build_perf_overrides(
            &PerfAwareConfig::default(),
            &ifaces(),
            &routes,
            [cmp("1.0.0.0/24", 50.0, 5)],
        );
        assert!(set.is_empty());
    }

    #[test]
    fn stale_alternate_is_ignored() {
        // Comparison names egress 7, which no live route uses.
        let routes = collector_with(&["1.0.0.0/24"]);
        let mut c = cmp("1.0.0.0/24", 50.0, 100);
        c.best_alt = EgressId(7);
        let set = build_perf_overrides(&PerfAwareConfig::default(), &ifaces(), &routes, [c]);
        assert!(set.is_empty());
    }

    #[test]
    fn cap_keeps_largest_improvements() {
        let routes = collector_with(&["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24"]);
        let cfg = PerfAwareConfig {
            max_overrides: 2,
            ..Default::default()
        };
        let set = build_perf_overrides(
            &cfg,
            &ifaces(),
            &routes,
            [
                cmp("1.0.0.0/24", 25.0, 100),
                cmp("2.0.0.0/24", 90.0, 100),
                cmp("3.0.0.0/24", 40.0, 100),
            ],
        );
        assert_eq!(set.len(), 2);
        assert!(set.contains(&p("2.0.0.0/24")));
        assert!(set.contains(&p("3.0.0.0/24")));
        assert!(!set.contains(&p("1.0.0.0/24")));
    }

    #[test]
    fn cost_vs_rtt_raises_the_bar_for_paid_detours() {
        // Preferred = free PNI, alternate = $2/Mbps transit. At 10 ms per
        // $/Mbps the bar becomes 20 + 10×2 = 40 ms.
        let routes = collector_with(&["1.0.0.0/24", "2.0.0.0/24"]);
        let cfg = PerfAwareConfig {
            cost_vs_rtt: 10.0,
            ..Default::default()
        };
        let set = build_perf_overrides(
            &cfg,
            &ifaces(),
            &routes,
            [cmp("1.0.0.0/24", 35.0, 100), cmp("2.0.0.0/24", 45.0, 100)],
        );
        assert!(
            !set.contains(&p("1.0.0.0/24")),
            "35 ms must not clear the 40 ms cost-adjusted bar"
        );
        assert!(set.contains(&p("2.0.0.0/24")));

        // The knob never penalizes moving toward a cheaper-or-equal path.
        let mut toward_free = cmp("1.0.0.0/24", 35.0, 100);
        toward_free.preferred = EgressId(2);
        toward_free.best_alt = EgressId(1);
        let set = build_perf_overrides(&cfg, &ifaces(), &routes, [toward_free]);
        assert!(set.contains(&p("1.0.0.0/24")));
    }

    #[test]
    fn adapt_maps_indices_to_prefixes() {
        let comparisons = vec![ef_perf::compare::PathComparison {
            prefix_idx: 7,
            preferred_egress: 1,
            preferred_median_ms: 50.0,
            best_alt_egress: 2,
            best_alt_median_ms: 20.0,
            improvement_ms: 30.0,
            alternates: 1,
        }];
        let map = HashMap::from([(7u32, p("9.9.9.0/24"))]);
        let adapted: Vec<MeasuredComparison> = adapt_comparisons(&comparisons, &map, 64).collect();
        assert_eq!(adapted.len(), 1);
        assert_eq!(adapted[0].prefix, p("9.9.9.0/24"));
        assert_eq!(adapted[0].improvement_ms, 30.0);
        // Unmapped indices vanish.
        let empty: Vec<MeasuredComparison> =
            adapt_comparisons(&comparisons, &HashMap::new(), 64).collect();
        assert!(empty.is_empty());
    }
}
