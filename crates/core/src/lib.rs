//! # edge-fabric
//!
//! The Edge Fabric controller from *"Engineering Egress with Edge Fabric:
//! Steering Oceans of Content to the World"* (SIGCOMM 2017): a per-PoP
//! control loop that makes BGP egress routing capacity-aware (and,
//! optionally, performance-aware) without replacing BGP.
//!
//! Every ~30 seconds the controller:
//!
//! 1. **Collects routes** ([`collector`]) from a BMP feed exposing every
//!    route each peering router accepted — not just the best ones.
//! 2. **Collects traffic** — per-prefix egress demand estimates (supplied
//!    by the embedding; see `ef-traffic` for the sampling pipeline).
//! 3. **Projects** ([`projection`]) that demand onto the routes BGP would
//!    pick *absent any override*, predicting each interface's load.
//! 4. **Allocates detours** ([`allocator`]) for interfaces whose projected
//!    utilization exceeds the limit, moving just enough prefixes to their
//!    next-best routes — never overloading a detour target.
//! 5. **Injects overrides** ([`injector`]) as real BGP announcements with a
//!    controller-tier `LOCAL_PREF` over an ordinary session, so the
//!    routers' own decision process installs them; dropping the
//!    announcement reverts the detour.
//!
//! The controller is deliberately stateless across cycles (paper §4.4):
//! every epoch recomputes the full desired override set from fresh inputs,
//! and the injector diffs it against what is currently announced.
//!
//! The [`perf_aware`] module implements the §6 extension: alternate-path
//! measurements feed overrides that move the small tail of prefixes whose
//! BGP-preferred path is ≥20 ms slower than an alternate.
//!
//! # Quickstart
//!
//! ```
//! use edge_fabric::{ControllerConfig, PopController};
//! use edge_fabric::state::InterfaceInfo;
//! use ef_bgp::peer::{PeerId, PeerKind};
//! use ef_bgp::policy::Policy;
//! use ef_bgp::route::EgressId;
//! use ef_bgp::router::{BgpRouter, PeerAttachment, PeerStub, RouterConfig};
//! use ef_net_types::Asn;
//! use std::collections::HashMap;
//!
//! // A router with one private peer (capacity 100 Mbps) and one transit.
//! let mut router = BgpRouter::new(RouterConfig {
//!     name: "pop0-pr0".into(),
//!     asn: Asn::LOCAL,
//!     router_id: "10.0.0.1".parse().unwrap(),
//! });
//! for (id, asn, kind, egress) in [
//!     (1u64, 65001u32, PeerKind::PrivatePeer, 1u32),
//!     (2, 65010, PeerKind::Transit, 2),
//! ] {
//!     router.add_peer(PeerAttachment {
//!         peer: PeerId(id),
//!         peer_asn: Asn(asn),
//!         kind,
//!         egress: EgressId(egress),
//!         policy: Policy::default_import(Asn::LOCAL, kind),
//!         max_prefixes: 0,
//!     });
//! }
//! let mut peer = PeerStub::new(PeerId(1), Asn(65001), "10.9.0.1".parse().unwrap());
//! let mut transit = PeerStub::new(PeerId(2), Asn(65010), "10.9.0.2".parse().unwrap());
//! peer.pump(&mut router, 0);
//! transit.pump(&mut router, 0);
//!
//! let prefix = "203.0.113.0/24".parse().unwrap();
//! peer.announce(&mut router, prefix, Default::default(), 0);
//! transit.announce(&mut router, prefix, Default::default(), 0);
//!
//! // Controller watches both interfaces.
//! let interfaces = HashMap::from([
//!     (EgressId(1), InterfaceInfo::new(100.0, PeerKind::PrivatePeer)),
//!     (EgressId(2), InterfaceInfo::new(10_000.0, PeerKind::Transit)),
//! ]);
//! let mut ctl = PopController::new(0, ControllerConfig::default(), interfaces, &mut router);
//! ctl.ingest_bmp(router.drain_bmp());
//!
//! // 150 Mbps of demand cannot fit the 100 Mbps preferred peer link.
//! let traffic = HashMap::from([(prefix, 150.0)]);
//! let report = ctl.run_epoch(&traffic, &mut router, 30_000);
//! assert_eq!(report.overrides_active, 1);
//! assert_eq!(router.fib_entry(&prefix).unwrap().egress, EgressId(2));
//! ```

pub mod allocator;
pub mod collector;
pub mod config;
pub mod controller;
pub mod injector;
pub mod overrides;
pub mod perf_aware;
pub mod projection;
pub mod state;

pub use allocator::{AllocationOutcome, DetourStrategy};
pub use collector::RouteCollector;
pub use config::ControllerConfig;
pub use controller::{EpochError, EpochInputs, EpochReport, PopController};
pub use overrides::{Override, OverrideReason, OverrideSet};
pub use projection::{project, Projection};
