//! Override injection over BGP (paper §4.3).
//!
//! The controller holds an ordinary BGP session to each peering router and
//! expresses detours as route announcements: the override's next hop names
//! the chosen egress interface, a marker community proves provenance, and
//! the router's import policy lifts the route into the controller
//! `LOCAL_PREF` tier so the standard decision process installs it.
//! Withdrawing the announcement reverts the detour instantly to the organic
//! best path — the failure mode of a crashed controller is plain BGP.
//!
//! Every injection crosses the real wire codec: the injector speaks through
//! a [`PeerStub`] session whose UPDATEs are encoded and re-decoded by the
//! router exactly like any peer's.

use ef_bgp::attrs::{Origin, PathAttributes};
use ef_bgp::message::UpdateMessage;
use ef_bgp::peer::PeerId;
use ef_bgp::router::{BgpRouter, PeerAttachment, PeerStub};
use ef_bgp::session::Millis;
use ef_net_types::Community;

use crate::overrides::{OverrideDiff, OverrideSet};

/// The controller's BGP mouthpiece toward one router.
pub struct Injector {
    stub: PeerStub,
    marker: Community,
    announced: OverrideSet,
    /// Cleared by [`session_lost`](Self::session_lost) when the router-side
    /// session drops out from under us.
    up: bool,
}

impl Injector {
    /// Attaches the controller pseudo-peer to `router` and establishes the
    /// session. `peer_id` must be unique on the router.
    pub fn attach(router: &mut BgpRouter, peer_id: PeerId, marker: Community, now: Millis) -> Self {
        router.add_peer(PeerAttachment {
            peer: peer_id,
            peer_asn: router.asn(),
            kind: ef_bgp::peer::PeerKind::Controller,
            egress: ef_bgp::route::EgressId(0),
            policy: ef_bgp::policy::Policy::controller_import(marker),
            max_prefixes: 0,
        });
        let mut stub = PeerStub::new(
            peer_id,
            router.asn(),
            std::net::Ipv4Addr::new(10, 200, (peer_id.0 >> 8) as u8, peer_id.0 as u8),
        );
        stub.pump(router, now);
        assert!(
            stub.is_established(),
            "controller session failed to establish"
        );
        Injector {
            stub,
            marker,
            announced: OverrideSet::new(),
            up: true,
        }
    }

    /// What is currently announced to the router.
    pub fn announced(&self) -> &OverrideSet {
        &self.announced
    }

    /// True while the BGP session is up.
    pub fn session_up(&self) -> bool {
        self.up && self.stub.is_established()
    }

    /// Records a router-side session loss. BGP semantics do the safety
    /// work: a dropped session implicitly withdraws every route the peer
    /// announced, so the announced set is now empty — the PoP is back on
    /// plain BGP. Call [`Injector::attach`] again to reconnect.
    pub fn session_lost(&mut self) {
        self.up = false;
        self.announced = OverrideSet::new();
    }

    /// Moves the router from the currently-announced override set to
    /// `desired`, sending only the diff. Returns the diff applied.
    pub fn apply(
        &mut self,
        router: &mut BgpRouter,
        desired: &OverrideSet,
        now: Millis,
    ) -> OverrideDiff {
        let diff = self.announced.diff_to(desired);
        if !diff.withdraw.is_empty() {
            self.stub.send_update(
                router,
                UpdateMessage::withdraw(diff.withdraw.iter().copied()),
                now,
            );
        }
        for o in &diff.announce {
            let mut attrs = PathAttributes {
                origin: Origin::Igp,
                next_hop: Some(o.target.to_next_hop()),
                ..Default::default()
            };
            attrs.add_community(self.marker);
            self.stub
                .send_update(router, UpdateMessage::announce(o.prefix, attrs), now);
        }
        self.announced = desired.clone();
        diff
    }

    /// Withdraws everything (controlled shutdown / failover drain).
    pub fn drain(&mut self, router: &mut BgpRouter, now: Millis) {
        let empty = OverrideSet::new();
        self.apply(router, &empty, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overrides::{Override, OverrideReason};
    use ef_bgp::attrs::AsPath;
    use ef_bgp::peer::PeerKind;
    use ef_bgp::policy::Policy;
    use ef_bgp::route::EgressId;
    use ef_bgp::router::RouterConfig;
    use ef_net_types::{Asn, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn world() -> (BgpRouter, PeerStub, PeerStub) {
        let mut router = BgpRouter::new(RouterConfig {
            name: "pr".into(),
            asn: Asn::LOCAL,
            router_id: "10.0.0.1".parse().unwrap(),
        });
        for (id, asn, kind, egress) in [
            (1u64, 65001u32, PeerKind::PrivatePeer, 1u32),
            (2, 65010, PeerKind::Transit, 2),
        ] {
            router.add_peer(PeerAttachment {
                peer: PeerId(id),
                peer_asn: Asn(asn),
                kind,
                egress: EgressId(egress),
                policy: Policy::default_import(Asn::LOCAL, kind),
                max_prefixes: 0,
            });
        }
        let mut peer = PeerStub::new(PeerId(1), Asn(65001), "10.9.0.1".parse().unwrap());
        let mut transit = PeerStub::new(PeerId(2), Asn(65010), "10.9.0.2".parse().unwrap());
        peer.pump(&mut router, 0);
        transit.pump(&mut router, 0);
        let attrs = |asn: u32| PathAttributes {
            as_path: AsPath::sequence([Asn(asn)]),
            ..Default::default()
        };
        peer.announce(&mut router, p("1.0.0.0/24"), attrs(65001), 0);
        transit.announce(&mut router, p("1.0.0.0/24"), attrs(65010), 0);
        (router, peer, transit)
    }

    fn ov(prefix: &str, target: u32) -> Override {
        Override {
            prefix: p(prefix),
            target: EgressId(target),
            target_kind: PeerKind::Transit,
            reason: OverrideReason::Capacity,
            moved_mbps: 10.0,
        }
    }

    #[test]
    fn inject_and_withdraw_steers_fib() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        assert!(inj.session_up());
        assert_eq!(
            router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );

        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        let diff = inj.apply(&mut router, &desired, 10);
        assert_eq!(diff.announce.len(), 1);
        assert!(diff.withdraw.is_empty());
        let fib = router.fib_entry(&p("1.0.0.0/24")).unwrap();
        assert_eq!(fib.egress, EgressId(2));
        assert!(fib.is_override);

        // Re-applying the same desired state is churn-free.
        let diff = inj.apply(&mut router, &desired, 20);
        assert!(diff.is_empty());

        // Withdrawal reverts.
        let diff = inj.apply(&mut router, &OverrideSet::new(), 30);
        assert_eq!(diff.withdraw.len(), 1);
        let fib = router.fib_entry(&p("1.0.0.0/24")).unwrap();
        assert_eq!(fib.egress, EgressId(1));
        assert!(!fib.is_override);
    }

    #[test]
    fn retarget_is_single_announce() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);

        let mut a = OverrideSet::new();
        a.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &a, 10);

        let mut b = OverrideSet::new();
        b.insert(ov("1.0.0.0/24", 1));
        let diff = inj.apply(&mut router, &b, 20);
        assert_eq!(diff.announce.len(), 1);
        assert!(diff.withdraw.is_empty(), "retarget needs no withdraw");
        assert_eq!(
            router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn drain_removes_everything() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);
        inj.drain(&mut router, 20);
        assert!(inj.announced().is_empty());
        assert!(!router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
    }

    #[test]
    fn session_loss_clears_announced_state() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);
        assert!(inj.session_up());

        // The router drops the controller pseudo-peer (session loss): its
        // routes are flushed and the injector must account for that.
        router.remove_peer(PeerId(1000), 20);
        inj.session_lost();
        assert!(!inj.session_up());
        assert!(inj.announced().is_empty());
        let fib = router.fib_entry(&p("1.0.0.0/24")).unwrap();
        assert!(!fib.is_override, "override implicitly withdrawn");
        assert_eq!(fib.egress, EgressId(1));

        // Reattaching restores steering capability from a clean slate.
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 30);
        assert!(inj.session_up());
        inj.apply(&mut router, &desired, 40);
        assert!(router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
    }

    #[test]
    fn injected_routes_show_in_bmp_as_controller_kind() {
        let (mut router, _peer, _transit) = world();
        router.drain_bmp();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);
        let feed = router.drain_bmp();
        let monitored = feed.iter().any(|m| match m {
            ef_bgp::bmp::BmpMessage::RouteMonitoring { update, .. } => update
                .attrs
                .has_community(PeerKind::Controller.tag_community()),
            _ => false,
        });
        assert!(monitored, "override visible on the BMP feed, tagged");
    }
}
