//! Override injection over BGP (paper §4.3).
//!
//! The controller holds an ordinary BGP session to each peering router and
//! expresses detours as route announcements: the override's next hop names
//! the chosen egress interface, a marker community proves provenance, and
//! the router's import policy lifts the route into the controller
//! `LOCAL_PREF` tier so the standard decision process installs it.
//! Withdrawing the announcement reverts the detour instantly to the organic
//! best path — the failure mode of a crashed controller is plain BGP.
//!
//! Every injection crosses the real wire codec: the injector speaks through
//! a [`PeerStub`] session whose UPDATEs are encoded and re-decoded by the
//! router exactly like any peer's.
//!
//! Injection is treated as fallible: a send may be lost (the fault model's
//! partial-loss gate, or a session error surfacing mid-epoch). The
//! [`announced`](Injector::announced) set tracks only what was **actually
//! sent**, so the next epoch's diff retries anything dropped, and
//! [`Injector::reconcile`] repairs divergence the override auditor finds.

use ef_bgp::attrs::{Origin, PathAttributes};
use ef_bgp::message::UpdateMessage;
use ef_bgp::peer::PeerId;
use ef_bgp::router::{BgpRouter, PeerAttachment, PeerStub};
use ef_bgp::session::Millis;
use ef_net_types::{Community, Prefix};

use crate::overrides::{OverrideDiff, OverrideSet};

/// Why the injector could not attach or speak to the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectorError {
    /// The BGP session did not reach `Established` during attach.
    AttachFailed,
}

impl std::fmt::Display for InjectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectorError::AttachFailed => {
                write!(f, "controller session failed to establish")
            }
        }
    }
}

impl std::error::Error for InjectorError {}

/// Deterministic partial-loss gate over individual injection sends.
///
/// Models the fault `InjectorPartialLoss { fraction }`: each per-prefix
/// send is dropped with probability `fraction`, decided by a seeded hash of
/// `(seed, prefix, counter)` so a run is reproducible byte-for-byte.
#[derive(Debug, Clone)]
struct LossGate {
    fraction: f64,
    seed: u64,
    counter: u64,
}

impl LossGate {
    /// True when this send is dropped. Advances the counter either way so
    /// the decision sequence depends only on (seed, call order).
    fn drops(&mut self, prefix: &Prefix) -> bool {
        // FNV-1a over the prefix, folded with the seed and call counter.
        let mut h = self.seed ^ 0xCBF2_9CE4_8422_2325;
        for b in prefix.to_string().as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(0x100_0000_01B3);
        }
        h ^= self.counter;
        self.counter = self.counter.wrapping_add(1);
        // splitmix64 finalizer for avalanche.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.fraction
    }
}

/// Cumulative per-PoP injection accounting: what was attempted, what hit
/// the wire, what was dropped or repaired. Exposed via
/// [`PopController::injection_ledger`](crate::controller::PopController::injection_ledger)
/// so the harness and operators can see partial failure instead of
/// inferring it from FIB divergence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionLedger {
    /// Announcements that were actually sent.
    pub announces_sent: u64,
    /// Announcements dropped by the loss gate (pending retry next epoch).
    pub announces_dropped: u64,
    /// Withdrawals that were actually sent.
    pub withdraws_sent: u64,
    /// Withdrawals dropped by the loss gate (pending retry next epoch).
    pub withdraws_dropped: u64,
    /// Sends refused by the session layer (session not established).
    pub send_errors: u64,
    /// Overrides re-announced by reconciliation after an audit finding.
    pub reconcile_reannounced: u64,
    /// Overrides force-withdrawn by reconciliation after a leak finding.
    pub reconcile_force_withdrawn: u64,
}

impl InjectionLedger {
    /// Sends currently known to have been lost and not yet repaired this
    /// epoch (they will be retried by the next diff).
    pub fn dropped_total(&self) -> u64 {
        self.announces_dropped + self.withdraws_dropped + self.send_errors
    }
}

/// What one [`Injector::apply`] actually did: the diff that hit the wire,
/// plus anything the loss gate or session layer refused. Dropped items stay
/// un-acknowledged in the announced set, so the next epoch's diff retries
/// them — partial failure is retryable, not silent.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    /// The portion of the diff that was actually sent.
    pub sent: OverrideDiff,
    /// Announce targets dropped before reaching the wire.
    pub dropped_announce: Vec<Prefix>,
    /// Withdrawals dropped before reaching the wire.
    pub dropped_withdraw: Vec<Prefix>,
}

impl InjectionReport {
    /// True when nothing was attempted and nothing was dropped.
    pub fn is_empty(&self) -> bool {
        self.sent.is_empty() && self.dropped_announce.is_empty() && self.dropped_withdraw.is_empty()
    }

    /// True when every attempted send reached the wire.
    pub fn is_clean(&self) -> bool {
        self.dropped_announce.is_empty() && self.dropped_withdraw.is_empty()
    }
}

/// The controller's BGP mouthpiece toward one router.
pub struct Injector {
    stub: PeerStub,
    marker: Community,
    announced: OverrideSet,
    /// Cleared by [`session_lost`](Self::session_lost) when the router-side
    /// session drops out from under us.
    up: bool,
    loss: Option<LossGate>,
    ledger: InjectionLedger,
}

impl Injector {
    /// Attaches the controller pseudo-peer to `router` and establishes the
    /// session. `peer_id` must be unique on the router. Returns
    /// [`InjectorError::AttachFailed`] when the session does not establish
    /// (e.g. the router refuses the peer) instead of panicking — attach is
    /// a session path and must stay retryable under the backoff governor.
    pub fn try_attach(
        router: &mut BgpRouter,
        peer_id: PeerId,
        marker: Community,
        now: Millis,
    ) -> Result<Self, InjectorError> {
        router.add_peer(PeerAttachment {
            peer: peer_id,
            peer_asn: router.asn(),
            kind: ef_bgp::peer::PeerKind::Controller,
            egress: ef_bgp::route::EgressId(0),
            policy: ef_bgp::policy::Policy::controller_import(marker),
            max_prefixes: 0,
        });
        let mut stub = PeerStub::new(
            peer_id,
            router.asn(),
            std::net::Ipv4Addr::new(10, 200, (peer_id.0 >> 8) as u8, peer_id.0 as u8),
        );
        stub.pump(router, now);
        if !stub.is_established() {
            return Err(InjectorError::AttachFailed);
        }
        Ok(Injector {
            stub,
            marker,
            announced: OverrideSet::new(),
            up: true,
            loss: None,
            ledger: InjectionLedger::default(),
        })
    }

    /// Infallible attach for embeddings that construct the router and the
    /// injector together (tests, local worlds).
    ///
    /// # Panics
    ///
    /// Panics if the session does not establish; production paths use
    /// [`try_attach`](Self::try_attach).
    pub fn attach(router: &mut BgpRouter, peer_id: PeerId, marker: Community, now: Millis) -> Self {
        match Self::try_attach(router, peer_id, marker, now) {
            Ok(inj) => inj,
            Err(e) => panic!("{e}"),
        }
    }

    /// What is currently announced to the router — precisely: what was
    /// actually sent and not withdrawn. Overrides whose announcement was
    /// dropped are absent; withdrawn-but-dropped ones are still present.
    pub fn announced(&self) -> &OverrideSet {
        &self.announced
    }

    /// Cumulative injection accounting.
    pub fn ledger(&self) -> &InjectionLedger {
        &self.ledger
    }

    /// Configures the deterministic partial-loss gate. `fraction == 0`
    /// disables it. Used by the fault model (`InjectorPartialLoss`).
    pub fn set_loss(&mut self, fraction: f64, seed: u64) {
        self.loss = if fraction > 0.0 {
            Some(LossGate {
                fraction,
                seed,
                counter: 0,
            })
        } else {
            None
        };
    }

    /// True while the BGP session is up.
    pub fn session_up(&self) -> bool {
        self.up && self.stub.is_established()
    }

    /// Records a router-side session loss. BGP semantics do the safety
    /// work: a dropped session implicitly withdraws every route the peer
    /// announced, so the announced set is now empty — the PoP is back on
    /// plain BGP. Call [`Injector::try_attach`] again to reconnect; the
    /// fresh injector starts from an explicitly empty announced set, so
    /// re-announcement after reattach is a full replay driven by the next
    /// epoch's diff (never a double-announce, never a stale survivor).
    pub fn session_lost(&mut self) {
        self.up = false;
        self.announced = OverrideSet::new();
    }

    fn gate_drops(&mut self, prefix: &Prefix) -> bool {
        match self.loss.as_mut() {
            Some(gate) => gate.drops(prefix),
            None => false,
        }
    }

    /// Moves the router from the currently-announced override set toward
    /// `desired`, sending only the diff. Individual sends may be dropped by
    /// the loss gate or refused by the session layer; those are reported,
    /// left out of the announced bookkeeping, and therefore retried by the
    /// next epoch's diff.
    pub fn apply(
        &mut self,
        router: &mut BgpRouter,
        desired: &OverrideSet,
        now: Millis,
    ) -> InjectionReport {
        let diff = self.announced.diff_to(desired);
        let mut report = InjectionReport::default();

        let mut sendable_withdraw: Vec<Prefix> = Vec::new();
        for p in &diff.withdraw {
            if self.gate_drops(p) {
                self.ledger.withdraws_dropped += 1;
                report.dropped_withdraw.push(*p);
            } else {
                sendable_withdraw.push(*p);
            }
        }
        if !sendable_withdraw.is_empty() {
            match self.stub.try_send_update(
                router,
                UpdateMessage::withdraw(sendable_withdraw.iter().copied()),
                now,
            ) {
                Ok(()) => {
                    self.ledger.withdraws_sent += sendable_withdraw.len() as u64;
                    for p in &sendable_withdraw {
                        self.announced.remove(p);
                    }
                    report.sent.withdraw = sendable_withdraw;
                }
                Err(_) => {
                    self.ledger.send_errors += 1;
                    report.dropped_withdraw.extend(sendable_withdraw);
                }
            }
        }

        for o in &diff.announce {
            if self.gate_drops(&o.prefix) {
                self.ledger.announces_dropped += 1;
                report.dropped_announce.push(o.prefix);
                continue;
            }
            // An egress outside the synthetic next-hop range means the
            // allocation is corrupt; drop the announce rather than inject
            // an unroutable override.
            let Ok(next_hop) = o.target.to_next_hop() else {
                self.ledger.send_errors += 1;
                report.dropped_announce.push(o.prefix);
                continue;
            };
            let mut attrs = PathAttributes {
                origin: Origin::Igp,
                next_hop: Some(next_hop),
                ..Default::default()
            };
            attrs.add_community(self.marker);
            match self
                .stub
                .try_send_update(router, UpdateMessage::announce(o.prefix, attrs), now)
            {
                Ok(()) => {
                    self.ledger.announces_sent += 1;
                    self.announced.insert(*o);
                    report.sent.announce.push(*o);
                }
                Err(_) => {
                    self.ledger.send_errors += 1;
                    report.dropped_announce.push(o.prefix);
                }
            }
        }
        report
    }

    /// Repairs divergence reported by the override auditor, inside the same
    /// epoch that detected it: overrides we believe announced but the
    /// router does not steer by (`not_installed`) are re-announced, and
    /// override routes the router holds that we never asked for (`leaked`)
    /// are force-withdrawn. Reconciliation sends bypass the loss gate — it
    /// models a verified repair path, so a clean audit follows within one
    /// epoch. Returns `(reannounced, force_withdrawn)`.
    pub fn reconcile(
        &mut self,
        router: &mut BgpRouter,
        not_installed: &[Prefix],
        leaked: &[Prefix],
        now: Millis,
    ) -> (u64, u64) {
        let mut reannounced = 0u64;
        for prefix in not_installed {
            let Some(o) = self.announced.get(prefix).copied() else {
                continue; // no longer desired; nothing to repair
            };
            let Ok(next_hop) = o.target.to_next_hop() else {
                self.ledger.send_errors += 1;
                continue;
            };
            let mut attrs = PathAttributes {
                origin: Origin::Igp,
                next_hop: Some(next_hop),
                ..Default::default()
            };
            attrs.add_community(self.marker);
            if self
                .stub
                .try_send_update(router, UpdateMessage::announce(o.prefix, attrs), now)
                .is_ok()
            {
                reannounced += 1;
            } else {
                self.ledger.send_errors += 1;
            }
        }
        let mut force_withdrawn = 0u64;
        let stray: Vec<Prefix> = leaked
            .iter()
            .filter(|p| !self.announced.contains(p))
            .copied()
            .collect();
        if !stray.is_empty()
            && self
                .stub
                .try_send_update(router, UpdateMessage::withdraw(stray.iter().copied()), now)
                .is_ok()
        {
            force_withdrawn = stray.len() as u64;
        }
        self.ledger.reconcile_reannounced += reannounced;
        self.ledger.reconcile_force_withdrawn += force_withdrawn;
        (reannounced, force_withdrawn)
    }

    /// Withdraws everything (controlled shutdown / failover drain).
    pub fn drain(&mut self, router: &mut BgpRouter, now: Millis) {
        let empty = OverrideSet::new();
        self.apply(router, &empty, now);
    }

    /// Resynchronises the router with the injector's view via a
    /// ROUTE-REFRESH request on the live session (RFC 2918): the stub
    /// replays exactly what it actually sent (loss-gate drops never made it
    /// into that set), and with enhanced refresh (RFC 7313) the EoRR sweep
    /// clears any stale route the router holds that the injector no longer
    /// stands behind. No session bounce, no override withdrawal window.
    /// Returns `false` if the session is down or refresh was not
    /// negotiated — callers fall back to the reattach/reconcile paths.
    pub fn resync_via_refresh(&mut self, router: &mut BgpRouter, now: Millis) -> bool {
        if !self.session_up() {
            return false;
        }
        if router.request_refresh(self.stub.peer).is_err() {
            return false;
        }
        self.stub.pump(router, now);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overrides::{Override, OverrideReason};
    use ef_bgp::attrs::AsPath;
    use ef_bgp::peer::PeerKind;
    use ef_bgp::policy::Policy;
    use ef_bgp::route::EgressId;
    use ef_bgp::router::RouterConfig;
    use ef_net_types::{Asn, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn world() -> (BgpRouter, PeerStub, PeerStub) {
        let mut router = BgpRouter::new(RouterConfig {
            name: "pr".into(),
            asn: Asn::LOCAL,
            router_id: "10.0.0.1".parse().unwrap(),
        });
        for (id, asn, kind, egress) in [
            (1u64, 65001u32, PeerKind::PrivatePeer, 1u32),
            (2, 65010, PeerKind::Transit, 2),
        ] {
            router.add_peer(PeerAttachment {
                peer: PeerId(id),
                peer_asn: Asn(asn),
                kind,
                egress: EgressId(egress),
                policy: Policy::default_import(Asn::LOCAL, kind),
                max_prefixes: 0,
            });
        }
        let mut peer = PeerStub::new(PeerId(1), Asn(65001), "10.9.0.1".parse().unwrap());
        let mut transit = PeerStub::new(PeerId(2), Asn(65010), "10.9.0.2".parse().unwrap());
        peer.pump(&mut router, 0);
        transit.pump(&mut router, 0);
        let attrs = |asn: u32| PathAttributes {
            as_path: AsPath::sequence([Asn(asn)]),
            ..Default::default()
        };
        peer.announce(&mut router, p("1.0.0.0/24"), attrs(65001), 0);
        transit.announce(&mut router, p("1.0.0.0/24"), attrs(65010), 0);
        (router, peer, transit)
    }

    fn ov(prefix: &str, target: u32) -> Override {
        Override {
            prefix: p(prefix),
            target: EgressId(target),
            target_kind: PeerKind::Transit,
            reason: OverrideReason::Capacity,
            moved_mbps: 10.0,
        }
    }

    #[test]
    fn inject_and_withdraw_steers_fib() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        assert!(inj.session_up());
        assert_eq!(
            router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );

        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        let report = inj.apply(&mut router, &desired, 10);
        assert_eq!(report.sent.announce.len(), 1);
        assert!(report.sent.withdraw.is_empty());
        assert!(report.is_clean());
        let fib = router.fib_entry(&p("1.0.0.0/24")).unwrap();
        assert_eq!(fib.egress, EgressId(2));
        assert!(fib.is_override);

        // Re-applying the same desired state is churn-free.
        let report = inj.apply(&mut router, &desired, 20);
        assert!(report.is_empty());

        // Withdrawal reverts.
        let report = inj.apply(&mut router, &OverrideSet::new(), 30);
        assert_eq!(report.sent.withdraw.len(), 1);
        let fib = router.fib_entry(&p("1.0.0.0/24")).unwrap();
        assert_eq!(fib.egress, EgressId(1));
        assert!(!fib.is_override);
    }

    #[test]
    fn retarget_is_single_announce() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);

        let mut a = OverrideSet::new();
        a.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &a, 10);

        let mut b = OverrideSet::new();
        b.insert(ov("1.0.0.0/24", 1));
        let report = inj.apply(&mut router, &b, 20);
        assert_eq!(report.sent.announce.len(), 1);
        assert!(
            report.sent.withdraw.is_empty(),
            "retarget needs no withdraw"
        );
        assert_eq!(
            router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn drain_removes_everything() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);
        inj.drain(&mut router, 20);
        assert!(inj.announced().is_empty());
        assert!(!router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
    }

    #[test]
    fn session_loss_clears_announced_state() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);
        assert!(inj.session_up());

        // The router drops the controller pseudo-peer (session loss): its
        // routes are flushed and the injector must account for that.
        router.remove_peer(PeerId(1000), 20);
        inj.session_lost();
        assert!(!inj.session_up());
        assert!(inj.announced().is_empty());
        let fib = router.fib_entry(&p("1.0.0.0/24")).unwrap();
        assert!(!fib.is_override, "override implicitly withdrawn");
        assert_eq!(fib.egress, EgressId(1));

        // Reattaching restores steering capability from a clean slate.
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 30);
        assert!(inj.session_up());
        inj.apply(&mut router, &desired, 40);
        assert!(router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
    }

    #[test]
    fn reattach_replay_is_exactly_one_announce_per_override() {
        // The replay-semantics contract: after loss + reattach, applying the
        // same desired set announces each override exactly once (a full
        // replay, not a double-announce and not a stale no-op).
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);

        router.remove_peer(PeerId(1000), 20);
        inj.session_lost();
        let mut inj = Injector::try_attach(&mut router, PeerId(1000), marker, 30)
            .expect("reattach in a healthy world");
        assert!(
            inj.announced().is_empty(),
            "no stale announced state survives reattach"
        );

        let report = inj.apply(&mut router, &desired, 40);
        assert_eq!(report.sent.announce.len(), 1, "full replay, exactly once");
        let report = inj.apply(&mut router, &desired, 50);
        assert!(report.is_empty(), "no double-announce after the replay");
        assert_eq!(inj.ledger().announces_sent, 1);
    }

    #[test]
    fn partial_loss_is_reported_and_retried_by_next_diff() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        inj.set_loss(1.0, 7); // drop everything

        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        let report = inj.apply(&mut router, &desired, 10);
        assert!(report.sent.announce.is_empty());
        assert_eq!(report.dropped_announce, vec![p("1.0.0.0/24")]);
        assert!(!report.is_clean());
        assert!(
            inj.announced().is_empty(),
            "dropped announce is not acknowledged"
        );
        assert!(!router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);

        // The fault clears; the same desired set is retried because the
        // announced set never acknowledged the drop.
        inj.set_loss(0.0, 7);
        let report = inj.apply(&mut router, &desired, 20);
        assert_eq!(report.sent.announce.len(), 1);
        assert!(router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
        assert_eq!(inj.ledger().announces_dropped, 1);
        assert_eq!(inj.ledger().announces_sent, 1);
    }

    #[test]
    fn dropped_withdraw_keeps_override_pending_until_retried() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);

        inj.set_loss(1.0, 7);
        let report = inj.apply(&mut router, &OverrideSet::new(), 20);
        assert!(report.sent.withdraw.is_empty());
        assert_eq!(report.dropped_withdraw, vec![p("1.0.0.0/24")]);
        assert!(
            inj.announced().contains(&p("1.0.0.0/24")),
            "unacknowledged withdraw stays pending"
        );
        assert!(router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);

        inj.set_loss(0.0, 7);
        let report = inj.apply(&mut router, &OverrideSet::new(), 30);
        assert_eq!(report.sent.withdraw.len(), 1);
        assert!(!router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
    }

    #[test]
    fn loss_gate_is_deterministic_per_seed() {
        let decide = |seed: u64| -> Vec<bool> {
            let mut gate = LossGate {
                fraction: 0.5,
                seed,
                counter: 0,
            };
            (0..64).map(|_| gate.drops(&p("1.0.0.0/24"))).collect()
        };
        assert_eq!(decide(7), decide(7), "same seed, same drop schedule");
        assert_ne!(decide(7), decide(8), "different seeds diverge");
        let drops = decide(7).iter().filter(|d| **d).count();
        assert!((16..=48).contains(&drops), "fraction is roughly honored");
    }

    #[test]
    fn reconcile_reannounces_and_force_withdraws() {
        let (mut router, _peer, _transit) = world();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);

        // Simulate divergence: the router silently lost the override route
        // (as if a resync dropped it) while we still believe it announced.
        inj.stub
            .send_update(&mut router, UpdateMessage::withdraw([p("1.0.0.0/24")]), 20);
        assert!(!router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);

        let (reannounced, _) = inj.reconcile(&mut router, &[p("1.0.0.0/24")], &[], 30);
        assert_eq!(reannounced, 1);
        assert!(router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
        assert_eq!(inj.ledger().reconcile_reannounced, 1);
    }

    #[test]
    fn injected_routes_show_in_bmp_as_controller_kind() {
        let (mut router, _peer, _transit) = world();
        router.drain_bmp();
        let marker = Community::new(32934, 999);
        let mut inj = Injector::attach(&mut router, PeerId(1000), marker, 0);
        let mut desired = OverrideSet::new();
        desired.insert(ov("1.0.0.0/24", 2));
        inj.apply(&mut router, &desired, 10);
        let feed = router.drain_bmp();
        let monitored = feed.iter().any(|m| match m {
            ef_bgp::bmp::BmpMessage::RouteMonitoring { update, .. } => update
                .attrs
                .has_community(PeerKind::Controller.tag_community()),
            _ => false,
        });
        assert!(monitored, "override visible on the BMP feed, tagged");
    }
}
