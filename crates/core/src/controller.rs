//! The per-PoP control loop (paper §4).
//!
//! [`PopController`] owns the collector, the injector, and the epoch cycle.
//! It holds no cross-epoch decision state: each call to
//! [`run_epoch`](PopController::run_epoch) recomputes the full desired
//! override set from fresh routes and traffic and lets the injector apply
//! the diff. The paper argues this stateless design keeps the controller
//! simple and self-correcting — an operator can restart it at any time and
//! the next epoch converges to the same answer.
//!
//! [`run_epoch_guarded`](PopController::run_epoch_guarded) adds the
//! graceful-degradation guards around that loop. The paper's safety story
//! (§4.4) is *fail static*: a wedged controller stops changing routing, and
//! dropped override announcements revert to plain BGP. The guards extend
//! this to *degraded but alive* inputs: when the BMP feed or the traffic
//! estimates are stale, the controller refuses to grow its override
//! footprint (it may only hold or shrink it, re-validating every kept
//! detour target), and past a fail-open horizon it withdraws everything. A
//! blast-radius cap bounds how much traffic a single epoch may newly shift
//! even with fresh inputs, so one bad projection cannot swing a PoP.

use std::collections::HashMap;

use serde::Serialize;

use ef_bgp::backoff::ReconnectGovernor;
use ef_bgp::bmp::BmpMessage;
use ef_bgp::peer::{PeerId, PeerKind};
use ef_bgp::route::EgressId;
use ef_bgp::router::BgpRouter;
use ef_bgp::session::Millis;
use ef_telemetry::{audit_overrides, ExplainRecord, ExplainVerdict, TelemetryHandle};

use crate::allocator::allocate;
use crate::collector::RouteCollector;
use crate::config::ControllerConfig;
use crate::injector::{InjectionLedger, InjectionReport, Injector};
use crate::overrides::OverrideSet;
use crate::projection::{project, project_cached, Projection, ProjectionCache};
use crate::state::{InterfaceMap, TrafficState};

/// What one controller epoch observed and did, for telemetry and the
/// evaluation harness.
#[derive(Debug, Clone, Serialize)]
pub struct EpochReport {
    /// Simulated time of the epoch, ms.
    pub now_ms: u64,
    /// PoP this controller serves.
    pub pop: u16,
    /// Prefixes with at least one route in the collector.
    pub prefixes_known: usize,
    /// Total demand presented, Mbps.
    pub total_demand_mbps: f64,
    /// Demand with no route at all, Mbps.
    pub unrouted_mbps: f64,
    /// Interfaces projected over the limit before mitigation
    /// `(egress, projected utilization)`, worst first.
    pub overloaded_before: Vec<(u32, f64)>,
    /// Interfaces still over the limit after mitigation.
    pub residual_overloaded: Vec<(u32, f64)>,
    /// Overrides active after this epoch.
    pub overrides_active: usize,
    /// Demand detoured by active overrides, Mbps.
    pub detoured_mbps: f64,
    /// Demand detoured per target interconnect kind, Mbps.
    pub detoured_by_kind: HashMap<String, f64>,
    /// BGP announcements sent this epoch.
    pub churn_announced: usize,
    /// BGP withdrawals sent this epoch.
    pub churn_withdrawn: usize,
    /// Projected (unmitigated) load per interface, Mbps.
    pub projected_load: HashMap<u32, f64>,
    /// Predicted post-mitigation load per interface, Mbps.
    pub post_load: HashMap<u32, f64>,
    /// Worst input age this epoch ran with, ms.
    pub input_age_ms: u64,
    /// The epoch ran in degraded mode (stale inputs: override set frozen
    /// to hold-or-shrink).
    pub degraded: bool,
    /// The epoch failed open (inputs past the trust horizon: every
    /// override withdrawn).
    pub fail_open: bool,
    /// Demand the blast-radius cap refused to newly shift this epoch, Mbps.
    pub shift_capped_mbps: f64,
    /// Post-epoch audit: overrides believed announced but absent from the
    /// router's decision (before reconciliation repaired them).
    pub audit_not_installed: usize,
    /// Post-epoch audit: withdrawn overrides still winning in the router
    /// (before reconciliation repaired them).
    pub audit_leaked: usize,
    /// Decision provenance: one record per steering decision the allocator
    /// considered, with verdicts amended by the guards (blast-radius,
    /// hold-or-shrink, fail-open). Always populated — it is derived purely
    /// from simulation state, so reports stay byte-identical whether or not
    /// a telemetry sink is attached.
    pub explains: Vec<ExplainRecord>,
}

/// Input freshness for one guarded epoch. Ages are "now minus the time the
/// input was last refreshed"; [`EpochInputs::default`] means both inputs
/// are fresh (the plain [`run_epoch`](PopController::run_epoch) path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochInputs {
    /// Age of the newest BMP route state, ms.
    pub bmp_age_ms: u64,
    /// Age of the newest traffic estimate, ms.
    pub traffic_age_ms: u64,
}

impl EpochInputs {
    /// Both inputs refreshed this instant.
    pub fn fresh() -> Self {
        Self::default()
    }

    /// The age that drives degradation decisions: the staler input bounds
    /// how much the combined view can be trusted.
    pub fn age_ms(&self) -> u64 {
        self.bmp_age_ms.max(self.traffic_age_ms)
    }
}

/// Why a guarded epoch was skipped instead of run. These are operational
/// conditions, not bugs: the controller's reaction is to do nothing this
/// cycle (fail static) and let the embedding decide whether to reattach or
/// restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochError {
    /// The injector's BGP session to the peering router is down. Every
    /// override is already implicitly withdrawn by BGP; nothing can be
    /// steered until [`PopController::reattach_injector`] succeeds.
    InjectorDown,
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpochError::InjectorDown => {
                write!(f, "injector session down; epoch skipped (fail-open)")
            }
        }
    }
}

impl std::error::Error for EpochError {}

/// The Edge Fabric controller for one PoP.
pub struct PopController {
    pop: u16,
    cfg: ControllerConfig,
    interfaces: InterfaceMap,
    collector: RouteCollector,
    /// Memoized projection decisions (used when `cfg.incremental`); holds
    /// no semantic state — a fresh cache converges on the first epoch.
    projection_cache: ProjectionCache,
    injector: Injector,
    /// Governs reattach pacing after injector session losses: exponential
    /// backoff with decorrelated jitter, plus flap damping that suppresses
    /// a storming session until it cools.
    injector_governor: ReconnectGovernor,
    perf_overrides: OverrideSet,
    telemetry: TelemetryHandle,
    last_degraded: bool,
    last_fail_open: bool,
}

impl PopController {
    /// Creates a controller and attaches its BGP session to the PoP's
    /// router. The collector's peer→egress map is read from the router's
    /// current attachments.
    pub fn new(
        pop: u16,
        cfg: ControllerConfig,
        interfaces: InterfaceMap,
        router: &mut BgpRouter,
    ) -> Self {
        match Self::try_new(pop, cfg, interfaces, router) {
            Ok(ctl) => ctl,
            Err(e) => panic!("controller config invalid: {e}"),
        }
    }

    /// Fallible construction: rejects an invalid config instead of
    /// panicking (for embeddings that take config from outside).
    pub fn try_new(
        pop: u16,
        cfg: ControllerConfig,
        interfaces: InterfaceMap,
        router: &mut BgpRouter,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let mut peer_egress = HashMap::new();
        for peer in router.peer_ids() {
            if let Some(attach) = router.attachment(peer) {
                peer_egress.insert(peer, attach.egress);
            }
        }
        let injector = Injector::try_attach(
            router,
            PeerId(1_000_000 + pop as u64),
            cfg.override_marker,
            0,
        )
        .map_err(|e| e.to_string())?;
        Ok(PopController {
            pop,
            cfg,
            interfaces,
            collector: RouteCollector::new(peer_egress),
            projection_cache: ProjectionCache::new(),
            injector,
            injector_governor: ReconnectGovernor::with_seed(0xEF1A_7C00 ^ pop as u64),
            perf_overrides: OverrideSet::new(),
            telemetry: TelemetryHandle::disabled(),
            last_degraded: false,
            last_fail_open: false,
        })
    }

    /// Attaches (or detaches, with a disabled handle) the telemetry
    /// pipeline. Telemetry observes the epoch cycle — phase timings,
    /// decision provenance, mode transitions, override audits — but never
    /// influences it: all control decisions are computed before any
    /// telemetry call, and timers read 0 when disabled.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// The stable peer id of this controller's injector session.
    pub fn injector_peer_id(&self) -> PeerId {
        PeerId(1_000_000 + self.pop as u64)
    }

    /// The PoP this controller serves.
    pub fn pop(&self) -> u16 {
        self.pop
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Read access to the collected route state.
    pub fn collector(&self) -> &RouteCollector {
        &self.collector
    }

    /// The overrides currently announced to the router.
    pub fn active_overrides(&self) -> &OverrideSet {
        self.injector.announced()
    }

    /// Interface facts the controller operates with.
    pub fn interfaces(&self) -> &InterfaceMap {
        &self.interfaces
    }

    /// Feeds BMP messages from the router into the route collector. Call
    /// whenever the feed has data; at minimum once per epoch before
    /// [`run_epoch`](Self::run_epoch).
    pub fn ingest_bmp(&mut self, messages: impl IntoIterator<Item = BmpMessage>) {
        self.collector.ingest(messages);
    }

    /// Installs the §6 performance-override intents the capacity pass must
    /// honor from now on (empty set disables the extension).
    pub fn set_perf_overrides(&mut self, set: OverrideSet) {
        self.perf_overrides = set;
    }

    /// Runs one controller cycle against `traffic` (per-prefix Mbps),
    /// assuming both inputs are fresh. If the injector session is down the
    /// epoch is skipped (a no-op report, never a panic) — use
    /// [`run_epoch_guarded`](Self::run_epoch_guarded) to observe that
    /// condition as a typed error.
    pub fn run_epoch(
        &mut self,
        traffic: &TrafficState,
        router: &mut BgpRouter,
        now: Millis,
    ) -> EpochReport {
        match self.run_epoch_guarded(traffic, router, now, EpochInputs::fresh()) {
            Ok(report) => report,
            Err(EpochError::InjectorDown) => self.skipped_report(traffic, now),
        }
    }

    /// Runs one controller cycle with explicit input freshness, applying
    /// the graceful-degradation guards:
    ///
    /// - inputs older than `stale_input_secs`: **degraded mode** — the
    ///   override set may hold or shrink but never grow, and every kept
    ///   override's detour target is re-validated (route still present,
    ///   projected target load still under the limit);
    /// - inputs older than `fail_open_secs`: **fail open** — every
    ///   override is withdrawn and the PoP runs plain BGP;
    /// - always: the **blast-radius cap** limits newly shifted demand to
    ///   `max_shift_fraction_per_epoch` of the PoP's total.
    ///
    /// Returns [`EpochError::InjectorDown`] (epoch skipped) when the
    /// injector session is down and this is not a dry run.
    pub fn run_epoch_guarded(
        &mut self,
        traffic: &TrafficState,
        router: &mut BgpRouter,
        now: Millis,
        inputs: EpochInputs,
    ) -> Result<EpochReport, EpochError> {
        let epoch_timer = self.telemetry.timer();
        if !self.cfg.dry_run && !self.injector.session_up() {
            self.telemetry.counter("epoch.skipped", 1);
            self.telemetry.emit(
                self.pop,
                now,
                "epoch.skipped",
                &[("reason", "injector_down".into())],
            );
            return Err(EpochError::InjectorDown);
        }
        let age_ms = inputs.age_ms();
        let fail_open = age_ms >= self.cfg.fail_open_secs.saturating_mul(1000);
        let degraded = !fail_open && age_ms >= self.cfg.stale_input_secs.saturating_mul(1000);

        let projection_timer = self.telemetry.timer();
        let projection = if self.cfg.incremental {
            project_cached(&mut self.projection_cache, &self.collector, traffic)
        } else {
            project(&self.collector, traffic)
        };
        let projection_us = projection_timer.elapsed_us();

        let allocation_timer = self.telemetry.timer();
        let mut outcome = allocate(
            &self.cfg,
            &self.interfaces,
            &self.collector,
            traffic,
            &projection,
            &self.perf_overrides,
            self.injector.announced(),
        );
        let allocation_us = allocation_timer.elapsed_us();

        let guard_timer = self.telemetry.timer();
        let mut explains = std::mem::take(&mut outcome.explains);
        let mut shift_capped_mbps = 0.0;
        let desired = if fail_open {
            // Nothing the allocator computed is trustworthy at this age.
            for rec in explains.iter_mut().filter(|r| r.emitted()) {
                rec.verdict = ExplainVerdict::DroppedFailOpen;
            }
            OverrideSet::new()
        } else if degraded {
            let kept = self.hold_or_shrink(&outcome.overrides, &projection);
            for rec in explains.iter_mut().filter(|r| r.emitted()) {
                let retained = rec
                    .prefix
                    .parse::<ef_net_types::Prefix>()
                    .map(|p| kept.contains(&p))
                    .unwrap_or(false);
                if !retained {
                    rec.verdict = ExplainVerdict::DroppedStaleInput;
                }
            }
            kept
        } else {
            let mut desired = std::mem::take(&mut outcome.overrides);
            let refused = self.cap_blast_radius(&mut desired, projection.demand_total_mbps());
            for (prefix, mbps) in &refused {
                shift_capped_mbps += mbps;
                let name = prefix.to_string();
                for rec in explains
                    .iter_mut()
                    .filter(|r| r.emitted() && r.prefix == name)
                {
                    rec.verdict = ExplainVerdict::DroppedBlastRadius;
                }
            }
            desired
        };
        let guards_us = guard_timer.elapsed_us();

        self.note_mode_transitions(degraded, fail_open, age_ms, now);

        let injection_timer = self.telemetry.timer();
        let report = if self.cfg.dry_run {
            InjectionReport::default()
        } else {
            self.injector.apply(router, &desired, now)
        };
        let injection_us = injection_timer.elapsed_us();

        // Pull the router's BMP echoes of our own changes immediately so
        // the collector's view stays current within the epoch.
        let bmp_timer = self.telemetry.timer();
        self.collector.ingest(router.drain_bmp());
        let bmp_ingest_us = bmp_timer.elapsed_us();

        // Post-epoch audit + reconciliation. This runs whether or not
        // telemetry is attached (the auditor's `emit` is the only
        // telemetry-gated part), so reports stay byte-identical with and
        // without a sink, and divergence is *repaired*, not just reported:
        // believed-announced-but-missing overrides are re-announced, leaked
        // override routes are force-withdrawn.
        let mut audit_not_installed = 0usize;
        let mut audit_leaked = 0usize;
        if !self.cfg.dry_run {
            let expected: Vec<_> = self
                .injector
                .announced()
                .iter_sorted()
                .into_iter()
                .map(|o| (o.prefix, o.target))
                .collect();
            let audit = audit_overrides(router, &expected, &report.sent.withdraw);
            audit_not_installed = audit.not_installed.len();
            audit_leaked = audit.leaked.len();
            if !audit.clean() {
                let not_installed: Vec<ef_net_types::Prefix> = audit
                    .not_installed
                    .iter()
                    .filter_map(|f| f.prefix.parse().ok())
                    .collect();
                let leaked: Vec<ef_net_types::Prefix> = audit
                    .leaked
                    .iter()
                    .filter_map(|f| f.prefix.parse().ok())
                    .collect();
                let (reannounced, force_withdrawn) =
                    self.injector
                        .reconcile(router, &not_installed, &leaked, now);
                // Keep the collector's view current after the repair.
                self.collector.ingest(router.drain_bmp());
                self.telemetry.counter("reconcile.reannounced", reannounced);
                self.telemetry
                    .counter("reconcile.force_withdrawn", force_withdrawn);
                self.telemetry.emit(
                    self.pop,
                    now,
                    "reconcile",
                    &[
                        ("findings", audit.failures().into()),
                        ("reannounced", reannounced.into()),
                        ("force_withdrawn", force_withdrawn.into()),
                    ],
                );
            }
            audit.emit(&self.telemetry, self.pop, now);
        }

        let active = self.injector.announced();
        if self.telemetry.enabled() {
            for rec in &explains {
                self.telemetry.explain(self.pop, now, rec);
            }
            for o in &report.sent.announce {
                self.telemetry.emit(
                    self.pop,
                    now,
                    "override.announce",
                    &[
                        ("prefix", o.prefix.to_string().into()),
                        ("target", o.target.0.into()),
                        ("kind", o.target_kind.label().into()),
                        ("mbps", o.moved_mbps.into()),
                        ("reason", o.reason.label().into()),
                    ],
                );
            }
            for prefix in &report.sent.withdraw {
                self.telemetry.emit(
                    self.pop,
                    now,
                    "override.withdraw",
                    &[("prefix", prefix.to_string().into())],
                );
            }
            self.telemetry
                .counter("overrides.announced", report.sent.announce.len() as u64);
            self.telemetry
                .counter("overrides.withdrawn", report.sent.withdraw.len() as u64);
            if !report.is_clean() {
                self.telemetry.counter(
                    "inject.dropped_announce",
                    report.dropped_announce.len() as u64,
                );
                self.telemetry.counter(
                    "inject.dropped_withdraw",
                    report.dropped_withdraw.len() as u64,
                );
            }
            self.telemetry.gauge(
                &format!("pop{}.overrides_active", self.pop),
                active.len() as f64,
            );
            self.telemetry.gauge(
                &format!("pop{}.detoured_mbps", self.pop),
                active.total_moved_mbps(),
            );
            let total_us = epoch_timer.elapsed_us();
            self.telemetry.observe("epoch_duration_us", total_us as f64);
            self.telemetry.emit(
                self.pop,
                now,
                "epoch",
                &[
                    ("input_age_ms", age_ms.into()),
                    ("degraded", degraded.into()),
                    ("fail_open", fail_open.into()),
                    ("overrides_active", active.len().into()),
                    ("announced", report.sent.announce.len().into()),
                    ("withdrawn", report.sent.withdraw.len().into()),
                    ("projection_us", projection_us.into()),
                    ("allocation_us", allocation_us.into()),
                    ("guards_us", guards_us.into()),
                    ("injection_us", injection_us.into()),
                    ("bmp_ingest_us", bmp_ingest_us.into()),
                    ("total_us", total_us.into()),
                ],
            );
            self.telemetry.snapshot_metrics(self.pop, now);
        }
        Ok(EpochReport {
            now_ms: now,
            pop: self.pop,
            prefixes_known: self.collector.prefix_count(),
            total_demand_mbps: projection.demand_total_mbps(),
            unrouted_mbps: projection.unrouted_mbps,
            overloaded_before: outcome
                .overloaded_before
                .iter()
                .map(|(e, u)| (e.0, *u))
                .collect(),
            residual_overloaded: outcome
                .residual_overloaded
                .iter()
                .map(|(e, u)| (e.0, *u))
                .collect(),
            overrides_active: active.len(),
            detoured_mbps: active.total_moved_mbps(),
            detoured_by_kind: active
                .moved_by_target_kind()
                .into_iter()
                .map(|(k, v)| (k.label().to_string(), v))
                .collect(),
            churn_announced: report.sent.announce.len(),
            churn_withdrawn: report.sent.withdraw.len(),
            projected_load: projection
                .load_mbps
                .iter()
                .map(|(e, v)| (e.0, *v))
                .collect(),
            post_load: outcome.post_load.iter().map(|(e, v)| (e.0, *v)).collect(),
            input_age_ms: age_ms,
            degraded,
            fail_open,
            shift_capped_mbps,
            audit_not_installed,
            audit_leaked,
            explains,
        })
    }

    /// Emits enter/exit events (and bumps transition counters) when the
    /// controller crosses into or out of degraded / fail-open mode. These
    /// replace the ad-hoc debug prints an operator would otherwise add: the
    /// transition, its trigger (input age), and the override footprint at
    /// the moment of crossing are all structured fields.
    fn note_mode_transitions(&mut self, degraded: bool, fail_open: bool, age_ms: u64, now: Millis) {
        let overrides_active = self.injector.announced().len();
        let fields = [
            ("input_age_ms", age_ms.into()),
            ("overrides_active", overrides_active.into()),
        ];
        if degraded != self.last_degraded {
            let name = if degraded {
                self.telemetry.counter("controller.degraded_transitions", 1);
                "controller.degraded.enter"
            } else {
                "controller.degraded.exit"
            };
            self.telemetry.emit(self.pop, now, name, &fields);
        }
        if fail_open != self.last_fail_open {
            let name = if fail_open {
                self.telemetry
                    .counter("controller.fail_open_transitions", 1);
                "controller.fail_open.enter"
            } else {
                "controller.fail_open.exit"
            };
            self.telemetry.emit(self.pop, now, name, &fields);
        }
        self.last_degraded = degraded;
        self.last_fail_open = fail_open;
    }

    /// Degraded-mode desired set: the intersection of what the allocator
    /// wants and what is already announced (never enlarge on stale inputs),
    /// with each survivor's detour target re-validated against the current
    /// (stale) route view and interface limits.
    fn hold_or_shrink(&self, desired: &OverrideSet, projection: &Projection) -> OverrideSet {
        let announced = self.injector.announced();
        let mut kept = OverrideSet::new();
        // Load already attracted to each target by overrides kept so far,
        // on top of the organic projection.
        let mut extra: HashMap<EgressId, f64> = HashMap::new();
        for o in desired.iter_sorted() {
            if !announced.contains(&o.prefix) {
                continue; // would enlarge the set
            }
            let target_has_route = self
                .collector
                .candidates(&o.prefix)
                .iter()
                .any(|r| r.egress == o.target && !r.is_override());
            if !target_has_route {
                continue; // detour target vanished from the (stale) view
            }
            let base = projection.load_mbps.get(&o.target).copied().unwrap_or(0.0);
            let added = extra.get(&o.target).copied().unwrap_or(0.0);
            if base + added + o.moved_mbps > self.limit_mbps(o.target) {
                continue; // target can no longer absorb this detour
            }
            *extra.entry(o.target).or_default() += o.moved_mbps;
            kept.insert(*o);
        }
        kept
    }

    /// Enforces the per-epoch blast-radius cap: overrides for prefixes not
    /// already announced are dropped (in deterministic prefix order) once
    /// their cumulative demand exceeds the allowed fraction of the PoP's
    /// total. Returns the refused `(prefix, demand)` pairs so provenance
    /// records can carry the rejection.
    fn cap_blast_radius(
        &self,
        desired: &mut OverrideSet,
        total_demand_mbps: f64,
    ) -> Vec<(ef_net_types::Prefix, f64)> {
        if self.cfg.max_shift_fraction_per_epoch >= 1.0 {
            return Vec::new();
        }
        let budget = self.cfg.max_shift_fraction_per_epoch * total_demand_mbps;
        let announced = self.injector.announced();
        let mut new_shift = 0.0f64;
        let mut refused: Vec<(ef_net_types::Prefix, f64)> = Vec::new();
        for o in desired.iter_sorted() {
            if announced.contains(&o.prefix) {
                continue; // already shifted in an earlier epoch
            }
            if new_shift + o.moved_mbps > budget {
                refused.push((o.prefix, o.moved_mbps));
            } else {
                new_shift += o.moved_mbps;
            }
        }
        for (prefix, _) in &refused {
            desired.remove(prefix);
        }
        refused
    }

    /// The report for an epoch that could not run (injector down): nothing
    /// was observed or changed; BGP semantics already withdrew every
    /// override.
    fn skipped_report(&self, traffic: &TrafficState, now: Millis) -> EpochReport {
        EpochReport {
            now_ms: now,
            pop: self.pop,
            prefixes_known: self.collector.prefix_count(),
            total_demand_mbps: crate::state::total_traffic_mbps(traffic),
            unrouted_mbps: 0.0,
            overloaded_before: Vec::new(),
            residual_overloaded: Vec::new(),
            overrides_active: 0,
            detoured_mbps: 0.0,
            detoured_by_kind: HashMap::new(),
            churn_announced: 0,
            churn_withdrawn: 0,
            projected_load: HashMap::new(),
            post_load: HashMap::new(),
            input_age_ms: 0,
            degraded: false,
            fail_open: true,
            shift_capped_mbps: 0.0,
            audit_not_installed: 0,
            audit_leaked: 0,
            explains: Vec::new(),
        }
    }

    /// True while the injector's BGP session to the router is up.
    pub fn injector_up(&self) -> bool {
        self.injector.session_up()
    }

    /// Records a router-side loss of the injector session (the fault model
    /// or a real transport removed the controller pseudo-peer). All
    /// overrides are implicitly withdrawn by BGP; subsequent guarded
    /// epochs return [`EpochError::InjectorDown`] until a reattach
    /// succeeds. The loss is charged to the backoff governor, so a
    /// flapping session earns growing reconnect delays and, past the
    /// damping threshold, outright suppression until it cools.
    pub fn injector_session_lost(&mut self, now: Millis) {
        self.injector.session_lost();
        self.injector_governor.record_down(now);
    }

    /// Attempts a governed reattach of the injector session: a no-op
    /// (returning `false`) while the backoff governor still holds the
    /// session down. On a successful attach the governor is credited; on a
    /// failed attach it is charged another failure. Call once per
    /// simulation step (or epoch) while [`injector_up`](Self::injector_up)
    /// is false.
    pub fn try_reattach_injector(&mut self, router: &mut BgpRouter, now: Millis) -> bool {
        if self.injector.session_up() {
            return true;
        }
        if !self.injector_governor.can_reconnect(now) {
            return false;
        }
        match Injector::try_attach(
            router,
            self.injector_peer_id(),
            self.cfg.override_marker,
            now,
        ) {
            Ok(inj) => {
                self.injector = inj;
                self.injector_governor.record_up(now);
                true
            }
            Err(_) => {
                self.injector_governor.record_down(now);
                false
            }
        }
    }

    /// Re-establishes the injector session after a loss, immediately and
    /// unconditionally (operator-initiated restart: bypasses the backoff
    /// governor). The announced set starts empty (stateless restart); the
    /// next epoch recomputes and re-announces whatever the inputs justify.
    pub fn reattach_injector(&mut self, router: &mut BgpRouter, now: Millis) {
        self.injector = Injector::attach(
            router,
            self.injector_peer_id(),
            self.cfg.override_marker,
            now,
        );
        self.injector_governor.record_up(now);
    }

    /// Resynchronises the router with the injector's announced set via
    /// ROUTE-REFRESH on the live session — the recovery used when the
    /// *content* of the injector feed was damaged (partial loss, update
    /// corruption) but the session itself held. Returns `false` if the
    /// session is down or refresh was not negotiated; those cases are
    /// handled by the reattach and audit/reconcile paths instead.
    pub fn resync_injector(&mut self, router: &mut BgpRouter, now: Millis) -> bool {
        let ok = self.injector.resync_via_refresh(router, now);
        if ok {
            self.telemetry.counter("injector.refresh_resyncs", 1);
        }
        ok
    }

    /// Cumulative injection accounting: sends, drops, session refusals,
    /// and reconciliation repairs.
    pub fn injection_ledger(&self) -> &InjectionLedger {
        self.injector.ledger()
    }

    /// Configures the injector's deterministic partial-loss gate (the
    /// `InjectorPartialLoss` fault). `fraction == 0` disables it.
    pub fn set_injection_loss(&mut self, fraction: f64, seed: u64) {
        self.injector.set_loss(fraction, seed);
    }

    /// Updates an interface's usable capacity (provisioning change or
    /// fault-model link degradation). Unknown interfaces are ignored.
    pub fn set_interface_capacity(&mut self, egress: EgressId, capacity_mbps: f64) {
        if let Some(info) = self.interfaces.get_mut(&egress) {
            info.capacity_mbps = capacity_mbps;
        }
    }

    /// Withdraws every override (drain before maintenance).
    pub fn drain(&mut self, router: &mut BgpRouter, now: Millis) {
        self.injector.drain(router, now);
    }

    /// Utilization limit in Mbps for an interface, as the allocator sees it.
    pub fn limit_mbps(&self, egress: EgressId) -> f64 {
        self.interfaces
            .get(&egress)
            .map(|i| i.capacity_mbps * self.cfg.util_limit)
            .unwrap_or(f64::INFINITY)
    }

    /// Classifies an interface (for reports).
    pub fn interface_kind(&self, egress: EgressId) -> Option<PeerKind> {
        self.interfaces.get(&egress).map(|i| i.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InterfaceInfo;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::policy::Policy;
    use ef_bgp::router::{PeerAttachment, PeerStub, RouterConfig};
    use ef_net_types::{Asn, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    struct World {
        router: BgpRouter,
        #[allow(dead_code)]
        peer: PeerStub,
        #[allow(dead_code)]
        transit: PeerStub,
        controller: PopController,
    }

    /// One private peer (egress 1, 100 Mbps) + one transit (egress 2, big),
    /// both announcing the given prefixes.
    fn world(prefixes: &[&str]) -> World {
        let mut router = BgpRouter::new(RouterConfig {
            name: "pop0-pr0".into(),
            asn: Asn::LOCAL,
            router_id: "10.0.0.1".parse().unwrap(),
        });
        for (id, asn, kind, egress) in [
            (1u64, 65001u32, PeerKind::PrivatePeer, 1u32),
            (2, 65010, PeerKind::Transit, 2),
        ] {
            router.add_peer(PeerAttachment {
                peer: PeerId(id),
                peer_asn: Asn(asn),
                kind,
                egress: EgressId(egress),
                policy: Policy::default_import(Asn::LOCAL, kind),
                max_prefixes: 0,
            });
        }
        let mut peer = PeerStub::new(PeerId(1), Asn(65001), "10.9.0.1".parse().unwrap());
        let mut transit = PeerStub::new(PeerId(2), Asn(65010), "10.9.0.2".parse().unwrap());
        peer.pump(&mut router, 0);
        transit.pump(&mut router, 0);
        for prefix in prefixes {
            peer.announce(
                &mut router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65001)]),
                    ..Default::default()
                },
                0,
            );
            transit.announce(
                &mut router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65010)]),
                    ..Default::default()
                },
                0,
            );
        }
        let interfaces = HashMap::from([
            (
                EgressId(1),
                InterfaceInfo::new(100.0, PeerKind::PrivatePeer),
            ),
            (
                EgressId(2),
                InterfaceInfo::new(100_000.0, PeerKind::Transit),
            ),
        ]);
        let mut controller =
            PopController::new(0, ControllerConfig::default(), interfaces, &mut router);
        controller.ingest_bmp(router.drain_bmp());
        World {
            router,
            peer,
            transit,
            controller,
        }
    }

    #[test]
    fn quiet_epoch_changes_nothing() {
        let mut w = world(&["1.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 40.0)]);
        let report = w.controller.run_epoch(&traffic, &mut w.router, 30_000);
        assert_eq!(report.overrides_active, 0);
        assert_eq!(report.churn_announced + report.churn_withdrawn, 0);
        assert!(report.overloaded_before.is_empty());
        assert_eq!(report.total_demand_mbps, 40.0);
        assert_eq!(
            w.router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn overload_triggers_detour_and_recovery_reverts_it() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        // Peak: 150 Mbps on a 100 Mbps PNI.
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let report = w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(report.overloaded_before.len(), 1);
        assert_eq!(report.overrides_active, 1);
        assert!(report.detoured_mbps > 0.0);
        assert!(report.residual_overloaded.is_empty());
        assert!(report.detoured_by_kind.contains_key("transit"));
        // One prefix steered to transit.
        let steered = [p("1.0.0.0/24"), p("2.0.0.0/24")]
            .iter()
            .filter(|pre| w.router.fib_entry(pre).unwrap().egress == EgressId(2))
            .count();
        assert_eq!(steered, 1);

        // Off-peak: demand drops; the stateless recompute withdraws.
        let off_peak = HashMap::from([(p("1.0.0.0/24"), 30.0), (p("2.0.0.0/24"), 20.0)]);
        let report = w.controller.run_epoch(&off_peak, &mut w.router, 60_000);
        assert_eq!(report.overrides_active, 0);
        assert_eq!(report.churn_withdrawn, 1);
        assert_eq!(
            w.router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
        assert_eq!(
            w.router.fib_entry(&p("2.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn steady_overload_causes_no_churn_after_first_epoch() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let first = w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(first.churn_announced, 1);
        for i in 2..6 {
            let again = w.controller.run_epoch(&peak, &mut w.router, 30_000 * i);
            assert_eq!(
                again.churn_announced + again.churn_withdrawn,
                0,
                "steady state is churn-free (epoch {i})"
            );
            assert_eq!(again.overrides_active, 1);
        }
    }

    #[test]
    fn dry_run_reports_but_does_not_steer() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        // Swap in a dry-run controller. The original controller already
        // consumed the BMP backlog, so hand the dry one its collected view
        // by replaying fresh announcements from the peers.
        let cfg = ControllerConfig {
            dry_run: true,
            ..Default::default()
        };
        let interfaces = w.controller.interfaces().clone();
        let mut dry = PopController::new(1, cfg, interfaces, &mut w.router);
        w.router.drain_bmp();
        for prefix in ["1.0.0.0/24", "2.0.0.0/24"] {
            w.peer.announce(
                &mut w.router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65001)]),
                    ..Default::default()
                },
                1,
            );
            w.transit.announce(
                &mut w.router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65010)]),
                    ..Default::default()
                },
                1,
            );
        }
        dry.ingest_bmp(w.router.drain_bmp());
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let report = dry.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(report.overloaded_before.len(), 1, "overload detected");
        assert_eq!(report.overrides_active, 0, "but nothing injected");
        assert_eq!(
            w.router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn unrouted_demand_is_surfaced() {
        let mut w = world(&["1.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 10.0), (p("99.0.0.0/24"), 5.0)]);
        let report = w.controller.run_epoch(&traffic, &mut w.router, 30_000);
        assert_eq!(report.unrouted_mbps, 5.0);
    }

    #[test]
    fn limit_and_kind_helpers() {
        let w = world(&[]);
        assert!((w.controller.limit_mbps(EgressId(1)) - 95.0).abs() < 1e-9);
        assert_eq!(w.controller.limit_mbps(EgressId(77)), f64::INFINITY);
        assert_eq!(
            w.controller.interface_kind(EgressId(1)),
            Some(PeerKind::PrivatePeer)
        );
        assert_eq!(w.controller.interface_kind(EgressId(77)), None);
    }

    #[test]
    fn fresh_inputs_behave_like_run_epoch() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let report = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 30_000, EpochInputs::fresh())
            .unwrap();
        assert!(!report.degraded);
        assert!(!report.fail_open);
        assert_eq!(report.input_age_ms, 0);
        assert_eq!(report.overrides_active, 1);
        assert_eq!(report.shift_capped_mbps, 0.0);
    }

    #[test]
    fn stale_inputs_never_enlarge_the_override_set() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        // Overload appears while inputs are stale: the controller must not
        // create the detour it would otherwise inject.
        let stale = EpochInputs {
            bmp_age_ms: w.controller.config().stale_input_secs * 1000,
            traffic_age_ms: 0,
        };
        let report = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 30_000, stale)
            .unwrap();
        assert!(report.degraded);
        assert!(!report.fail_open);
        assert_eq!(report.overloaded_before.len(), 1, "overload still observed");
        assert_eq!(report.overrides_active, 0, "but nothing new injected");
        assert_eq!(report.churn_announced, 0);
    }

    #[test]
    fn stale_inputs_keep_existing_overrides_that_revalidate() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        // Fresh epoch installs the detour.
        let first = w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(first.overrides_active, 1);
        // Inputs go stale while the overload persists: the standing
        // override is held (target still routed, still has room).
        let stale = EpochInputs {
            bmp_age_ms: 0,
            traffic_age_ms: w.controller.config().stale_input_secs * 1000 + 1,
        };
        let report = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 60_000, stale)
            .unwrap();
        assert!(report.degraded);
        assert_eq!(report.overrides_active, 1, "standing override held");
        assert_eq!(report.churn_announced + report.churn_withdrawn, 0);
    }

    #[test]
    fn stale_inputs_drop_overrides_whose_target_vanished() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(w.controller.active_overrides().len(), 1);
        let steered = *w
            .controller
            .active_overrides()
            .iter_sorted()
            .first()
            .unwrap();
        // The transit route under the detour disappears; the BMP withdraw
        // reaches the collector, but the traffic input is stale.
        w.transit.withdraw(&mut w.router, [steered.prefix], 50_000);
        w.controller.ingest_bmp(w.router.drain_bmp());
        let stale = EpochInputs {
            bmp_age_ms: 0,
            traffic_age_ms: w.controller.config().stale_input_secs * 1000,
        };
        let report = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 60_000, stale)
            .unwrap();
        assert!(report.degraded);
        assert_eq!(
            report.overrides_active, 0,
            "override to a vanished target is not kept"
        );
    }

    #[test]
    fn fail_open_horizon_withdraws_everything() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(w.controller.active_overrides().len(), 1);
        let ancient = EpochInputs {
            bmp_age_ms: w.controller.config().fail_open_secs * 1000,
            traffic_age_ms: 0,
        };
        let report = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 700_000, ancient)
            .unwrap();
        assert!(report.fail_open);
        assert!(!report.degraded);
        assert_eq!(report.overrides_active, 0);
        assert_eq!(report.churn_withdrawn, 1);
        assert!(!w.router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
        assert!(!w.router.fib_entry(&p("2.0.0.0/24")).unwrap().is_override);
    }

    #[test]
    fn blast_radius_cap_limits_new_shift_per_epoch() {
        let prefixes = ["1.0.0.0/24", "2.0.0.0/24", "3.0.0.0/24", "4.0.0.0/24"];
        let mut w = world(&prefixes);
        let mut cfg = *w.controller.config();
        cfg.max_shift_fraction_per_epoch = 0.15;
        // Rebuild a capped controller over the same router state.
        let interfaces = w.controller.interfaces().clone();
        w.controller.drain(&mut w.router, 0);
        let mut capped = PopController::new(2, cfg, interfaces, &mut w.router);
        w.router.drain_bmp();
        for prefix in prefixes {
            for (stub, asn) in [(&mut w.peer, 65001u32), (&mut w.transit, 65010)] {
                stub.announce(
                    &mut w.router,
                    p(prefix),
                    PathAttributes {
                        as_path: AsPath::sequence([Asn(asn)]),
                        ..Default::default()
                    },
                    1,
                );
            }
        }
        capped.ingest_bmp(w.router.drain_bmp());
        // 240 Mbps offered against a 100 Mbps PNI: the allocator wants to
        // move ~150 Mbps at once; the cap allows 0.15 × 240 = 36 Mbps.
        let heavy: HashMap<_, _> = prefixes.iter().map(|s| (p(s), 60.0)).collect();
        let report = capped
            .run_epoch_guarded(&heavy, &mut w.router, 30_000, EpochInputs::fresh())
            .unwrap();
        assert!(report.shift_capped_mbps > 0.0, "cap engaged");
        assert!(
            report.detoured_mbps <= 36.0 + 1e-9,
            "newly shifted demand {} within the 36 Mbps budget",
            report.detoured_mbps
        );
        // Across epochs the cap still lets the controller converge.
        let mut last = report;
        for i in 2..6 {
            last = capped
                .run_epoch_guarded(&heavy, &mut w.router, 30_000 * i, EpochInputs::fresh())
                .unwrap();
        }
        assert!(
            last.residual_overloaded.is_empty(),
            "converged under the cap"
        );
    }

    #[test]
    fn injector_loss_skips_epochs_and_reattach_recovers() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(w.controller.active_overrides().len(), 1);

        // The router loses the controller pseudo-peer.
        let injector_peer = w.controller.injector_peer_id();
        w.router.remove_peer(injector_peer, 40_000);
        w.controller.injector_session_lost(40_000);
        assert!(!w.controller.injector_up());
        assert!(!w.router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);

        let err = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 60_000, EpochInputs::fresh())
            .unwrap_err();
        assert_eq!(err, EpochError::InjectorDown);
        // The infallible wrapper reports a skipped, failed-open epoch.
        let report = w.controller.run_epoch(&peak, &mut w.router, 90_000);
        assert!(report.fail_open);
        assert_eq!(report.overrides_active, 0);

        // Reattach: the next epoch restores the needed detour.
        w.controller.reattach_injector(&mut w.router, 100_000);
        assert!(w.controller.injector_up());
        let report = w.controller.run_epoch(&peak, &mut w.router, 120_000);
        assert_eq!(report.overrides_active, 1);
        assert_eq!(report.churn_announced, 1);
    }

    #[test]
    fn governed_reattach_waits_out_the_backoff_then_recovers() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(w.controller.active_overrides().len(), 1);

        let injector_peer = w.controller.injector_peer_id();
        w.router.remove_peer(injector_peer, 40_000);
        w.controller.injector_session_lost(40_000);

        // Immediately after the loss the governor still holds the session
        // down (base backoff is at least a second).
        assert!(!w.controller.try_reattach_injector(&mut w.router, 40_000));
        assert!(!w.controller.injector_up());

        // Once the backoff elapses the governed reattach succeeds and the
        // next epoch replays the needed override.
        assert!(w.controller.try_reattach_injector(&mut w.router, 70_000));
        assert!(w.controller.injector_up());
        let report = w.controller.run_epoch(&peak, &mut w.router, 90_000);
        assert_eq!(report.overrides_active, 1);
        assert_eq!(report.churn_announced, 1);
    }

    /// The acceptance scenario for reconciliation: divergence injected
    /// behind the controller's back is detected by the post-epoch audit and
    /// repaired in the same epoch, so the following audit is clean.
    #[test]
    fn reconciliation_repairs_injected_divergence_within_one_epoch() {
        use ef_bgp::message::{BgpMessage, UpdateMessage};
        use ef_bgp::wire::encode_message;

        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        w.controller.run_epoch(&peak, &mut w.router, 30_000);
        let overridden: Vec<_> = w
            .controller
            .active_overrides()
            .iter_sorted()
            .into_iter()
            .map(|o| (o.prefix, o.target))
            .collect();
        assert_eq!(overridden.len(), 1);
        let (prefix, _) = overridden[0];

        // Divergence 1 (not-installed): the router loses the override route
        // while the controller still believes it announced — modeled as a
        // withdraw arriving on the injector session without the injector's
        // knowledge.
        let withdraw =
            encode_message(&BgpMessage::Update(UpdateMessage::withdraw([prefix]))).unwrap();
        w.router
            .deliver(w.controller.injector_peer_id(), &withdraw, 40_000);
        assert!(!w.router.fib_entry(&prefix).unwrap().is_override);

        // Divergence 2 (leak): an override route the controller never asked
        // for shows up on the injector session.
        let stray = p("2.0.0.0/24");
        let mut attrs = ef_bgp::attrs::PathAttributes {
            origin: ef_bgp::attrs::Origin::Igp,
            next_hop: Some(EgressId(2).to_next_hop().unwrap()),
            ..Default::default()
        };
        attrs.add_community(w.controller.config().override_marker);
        let announce =
            encode_message(&BgpMessage::Update(UpdateMessage::announce(stray, attrs))).unwrap();
        w.router
            .deliver(w.controller.injector_peer_id(), &announce, 41_000);
        assert!(w.router.fib_entry(&stray).unwrap().is_override);

        // The next epoch's audit finds both divergences and reconciliation
        // repairs them in place.
        w.controller.run_epoch(&peak, &mut w.router, 60_000);
        assert!(
            w.router.fib_entry(&prefix).unwrap().is_override,
            "missing override re-announced"
        );
        assert!(
            !w.router.fib_entry(&stray).unwrap().is_override,
            "leaked override force-withdrawn"
        );
        assert_eq!(w.controller.injection_ledger().reconcile_reannounced, 1);
        assert_eq!(w.controller.injection_ledger().reconcile_force_withdrawn, 1);

        // Post-repair the audit is clean: findings went to zero within one
        // epoch of the divergence being observable.
        let expected: Vec<_> = w
            .controller
            .active_overrides()
            .iter_sorted()
            .into_iter()
            .map(|o| (o.prefix, o.target))
            .collect();
        let audit = ef_telemetry::audit_overrides(&w.router, &expected, &[]);
        assert!(audit.clean(), "clean after repair: {audit:?}");
    }

    #[test]
    fn capacity_updates_feed_the_next_epoch() {
        let mut w = world(&["1.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 60.0)]);
        let quiet = w.controller.run_epoch(&traffic, &mut w.router, 30_000);
        assert_eq!(quiet.overrides_active, 0);
        // The PNI loses half its capacity: 60 Mbps no longer fits 50.
        w.controller.set_interface_capacity(EgressId(1), 50.0);
        let report = w.controller.run_epoch(&traffic, &mut w.router, 60_000);
        assert_eq!(report.overrides_active, 1, "detour after capacity loss");
        // Restore: the stateless recompute reverts.
        w.controller.set_interface_capacity(EgressId(1), 100.0);
        let report = w.controller.run_epoch(&traffic, &mut w.router, 90_000);
        assert_eq!(report.overrides_active, 0);
    }

    #[test]
    fn telemetry_captures_epoch_events_explains_and_clean_audit() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let (handle, sink) = TelemetryHandle::memory();
        w.controller.set_telemetry(handle);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let report = w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(report.overrides_active, 1);

        // Every announced override has an emitted explain, in the sink and
        // in the report (identical records).
        let explains = sink.explains();
        assert!(!explains.is_empty());
        assert_eq!(
            explains
                .iter()
                .map(|(_, _, e)| e.clone())
                .collect::<Vec<_>>(),
            report.explains
        );
        for o in w.controller.active_overrides().iter_sorted() {
            assert!(
                report
                    .explains
                    .iter()
                    .any(|e| e.emitted() && e.prefix == o.prefix.to_string()),
                "override {} lacks provenance",
                o.prefix
            );
        }

        // The announce event carries the structured fields.
        let announces = sink.events_named("override.announce");
        assert_eq!(announces.len(), 1);
        assert_eq!(announces[0].str_field("kind"), Some("transit"));

        // The epoch event has the per-phase wall-clock timings.
        let epochs = sink.events_named("epoch");
        assert_eq!(epochs.len(), 1);
        for key in [
            "projection_us",
            "allocation_us",
            "guards_us",
            "injection_us",
            "bmp_ingest_us",
            "total_us",
        ] {
            assert!(epochs[0].field(key).is_some(), "missing {key}");
        }

        // The audit ran and found the router state consistent.
        assert!(sink.events_named("audit.override_leaked").is_empty());
        assert!(sink.events_named("audit.override_not_installed").is_empty());
        let snaps = sink.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].2.counters["audit.checked"], 1);
        assert_eq!(snaps[0].2.counters.get("audit.failures"), Some(&0));
        assert_eq!(snaps[0].2.counters["overrides.announced"], 1);
        assert_eq!(snaps[0].2.gauges["pop0.overrides_active"], 1.0);
        assert_eq!(snaps[0].2.histograms["epoch_duration_us"].count, 1);
    }

    #[test]
    fn telemetry_records_mode_transitions_and_amends_verdicts() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let (handle, sink) = TelemetryHandle::memory();
        w.controller.set_telemetry(handle);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);

        // Stale inputs: the detour the allocator wants is dropped and its
        // provenance says so.
        let stale = EpochInputs {
            bmp_age_ms: w.controller.config().stale_input_secs * 1000,
            traffic_age_ms: 0,
        };
        let report = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 30_000, stale)
            .unwrap();
        assert!(report.degraded);
        assert_eq!(sink.events_named("controller.degraded.enter").len(), 1);
        assert!(report
            .explains
            .iter()
            .any(|e| e.verdict == ExplainVerdict::DroppedStaleInput));

        // Ancient inputs: fail-open enter (and degraded exit), with the
        // allocator's wish recorded as dropped by fail-open.
        let ancient = EpochInputs {
            bmp_age_ms: w.controller.config().fail_open_secs * 1000,
            traffic_age_ms: 0,
        };
        let report = w
            .controller
            .run_epoch_guarded(&peak, &mut w.router, 60_000, ancient)
            .unwrap();
        assert!(report.fail_open);
        assert_eq!(sink.events_named("controller.fail_open.enter").len(), 1);
        assert_eq!(sink.events_named("controller.degraded.exit").len(), 1);
        assert!(report
            .explains
            .iter()
            .all(|e| e.verdict != ExplainVerdict::Emitted));

        // Recovery: both modes exit.
        let report = w.controller.run_epoch(&peak, &mut w.router, 90_000);
        assert!(!report.fail_open && !report.degraded);
        assert_eq!(sink.events_named("controller.fail_open.exit").len(), 1);
    }

    #[test]
    fn reports_are_identical_with_and_without_telemetry() {
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let run = |telemetry: bool| -> Vec<String> {
            let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
            if telemetry {
                let (handle, _sink) = TelemetryHandle::memory();
                w.controller.set_telemetry(handle);
            }
            (1..4)
                .map(|i| {
                    let r = w.controller.run_epoch(&peak, &mut w.router, 30_000 * i);
                    serde_json::to_string(&r).unwrap()
                })
                .collect()
        };
        assert_eq!(run(false), run(true), "telemetry must not perturb results");
    }

    #[test]
    fn drain_withdraws_all() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(w.controller.active_overrides().len(), 1);
        w.controller.drain(&mut w.router, 60_000);
        assert!(w.controller.active_overrides().is_empty());
        assert!(!w.router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
        assert!(!w.router.fib_entry(&p("2.0.0.0/24")).unwrap().is_override);
    }
}
