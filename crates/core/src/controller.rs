//! The per-PoP control loop (paper §4).
//!
//! [`PopController`] owns the collector, the injector, and the epoch cycle.
//! It holds no cross-epoch decision state: each call to
//! [`run_epoch`](PopController::run_epoch) recomputes the full desired
//! override set from fresh routes and traffic and lets the injector apply
//! the diff. The paper argues this stateless design keeps the controller
//! simple and self-correcting — an operator can restart it at any time and
//! the next epoch converges to the same answer.

use std::collections::HashMap;

use serde::Serialize;

use ef_bgp::bmp::BmpMessage;
use ef_bgp::peer::{PeerId, PeerKind};
use ef_bgp::route::EgressId;
use ef_bgp::router::BgpRouter;
use ef_bgp::session::Millis;

use crate::allocator::allocate;
use crate::collector::RouteCollector;
use crate::config::ControllerConfig;
use crate::injector::Injector;
use crate::overrides::OverrideSet;
use crate::projection::project;
use crate::state::{InterfaceMap, TrafficState};

/// What one controller epoch observed and did, for telemetry and the
/// evaluation harness.
#[derive(Debug, Clone, Serialize)]
pub struct EpochReport {
    /// Simulated time of the epoch, ms.
    pub now_ms: u64,
    /// PoP this controller serves.
    pub pop: u16,
    /// Prefixes with at least one route in the collector.
    pub prefixes_known: usize,
    /// Total demand presented, Mbps.
    pub total_demand_mbps: f64,
    /// Demand with no route at all, Mbps.
    pub unrouted_mbps: f64,
    /// Interfaces projected over the limit before mitigation
    /// `(egress, projected utilization)`, worst first.
    pub overloaded_before: Vec<(u32, f64)>,
    /// Interfaces still over the limit after mitigation.
    pub residual_overloaded: Vec<(u32, f64)>,
    /// Overrides active after this epoch.
    pub overrides_active: usize,
    /// Demand detoured by active overrides, Mbps.
    pub detoured_mbps: f64,
    /// Demand detoured per target interconnect kind, Mbps.
    pub detoured_by_kind: HashMap<String, f64>,
    /// BGP announcements sent this epoch.
    pub churn_announced: usize,
    /// BGP withdrawals sent this epoch.
    pub churn_withdrawn: usize,
    /// Projected (unmitigated) load per interface, Mbps.
    pub projected_load: HashMap<u32, f64>,
    /// Predicted post-mitigation load per interface, Mbps.
    pub post_load: HashMap<u32, f64>,
}

/// The Edge Fabric controller for one PoP.
pub struct PopController {
    pop: u16,
    cfg: ControllerConfig,
    interfaces: InterfaceMap,
    collector: RouteCollector,
    injector: Injector,
    perf_overrides: OverrideSet,
}

impl PopController {
    /// Creates a controller and attaches its BGP session to the PoP's
    /// router. The collector's peer→egress map is read from the router's
    /// current attachments.
    pub fn new(
        pop: u16,
        cfg: ControllerConfig,
        interfaces: InterfaceMap,
        router: &mut BgpRouter,
    ) -> Self {
        cfg.validate().expect("controller config invalid");
        let mut peer_egress = HashMap::new();
        for peer in router.peer_ids() {
            if let Some(attach) = router.attachment(peer) {
                peer_egress.insert(peer, attach.egress);
            }
        }
        let injector = Injector::attach(
            router,
            PeerId(1_000_000 + pop as u64),
            cfg.override_marker,
            0,
        );
        PopController {
            pop,
            cfg,
            interfaces,
            collector: RouteCollector::new(peer_egress),
            injector,
            perf_overrides: OverrideSet::new(),
        }
    }

    /// The PoP this controller serves.
    pub fn pop(&self) -> u16 {
        self.pop
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Read access to the collected route state.
    pub fn collector(&self) -> &RouteCollector {
        &self.collector
    }

    /// The overrides currently announced to the router.
    pub fn active_overrides(&self) -> &OverrideSet {
        self.injector.announced()
    }

    /// Interface facts the controller operates with.
    pub fn interfaces(&self) -> &InterfaceMap {
        &self.interfaces
    }

    /// Feeds BMP messages from the router into the route collector. Call
    /// whenever the feed has data; at minimum once per epoch before
    /// [`run_epoch`](Self::run_epoch).
    pub fn ingest_bmp(&mut self, messages: impl IntoIterator<Item = BmpMessage>) {
        self.collector.ingest(messages);
    }

    /// Installs the §6 performance-override intents the capacity pass must
    /// honor from now on (empty set disables the extension).
    pub fn set_perf_overrides(&mut self, set: OverrideSet) {
        self.perf_overrides = set;
    }

    /// Runs one controller cycle against `traffic` (per-prefix Mbps).
    pub fn run_epoch(
        &mut self,
        traffic: &TrafficState,
        router: &mut BgpRouter,
        now: Millis,
    ) -> EpochReport {
        let projection = project(&self.collector, traffic);
        let outcome = allocate(
            &self.cfg,
            &self.interfaces,
            &self.collector,
            traffic,
            &projection,
            &self.perf_overrides,
            self.injector.announced(),
        );

        let diff = if self.cfg.dry_run {
            Default::default()
        } else {
            self.injector.apply(router, &outcome.overrides, now)
        };

        // Pull the router's BMP echoes of our own changes immediately so
        // the collector's view stays current within the epoch.
        self.collector.ingest(router.drain_bmp());

        let active = self.injector.announced();
        EpochReport {
            now_ms: now,
            pop: self.pop,
            prefixes_known: self.collector.prefix_count(),
            total_demand_mbps: traffic.values().sum(),
            unrouted_mbps: projection.unrouted_mbps,
            overloaded_before: outcome
                .overloaded_before
                .iter()
                .map(|(e, u)| (e.0, *u))
                .collect(),
            residual_overloaded: outcome
                .residual_overloaded
                .iter()
                .map(|(e, u)| (e.0, *u))
                .collect(),
            overrides_active: active.len(),
            detoured_mbps: active.total_moved_mbps(),
            detoured_by_kind: active
                .moved_by_target_kind()
                .into_iter()
                .map(|(k, v)| (k.label().to_string(), v))
                .collect(),
            churn_announced: diff.announce.len(),
            churn_withdrawn: diff.withdraw.len(),
            projected_load: projection
                .load_mbps
                .iter()
                .map(|(e, v)| (e.0, *v))
                .collect(),
            post_load: outcome.post_load.iter().map(|(e, v)| (e.0, *v)).collect(),
        }
    }

    /// Withdraws every override (drain before maintenance).
    pub fn drain(&mut self, router: &mut BgpRouter, now: Millis) {
        self.injector.drain(router, now);
    }

    /// Utilization limit in Mbps for an interface, as the allocator sees it.
    pub fn limit_mbps(&self, egress: EgressId) -> f64 {
        self.interfaces
            .get(&egress)
            .map(|i| i.capacity_mbps * self.cfg.util_limit)
            .unwrap_or(f64::INFINITY)
    }

    /// Classifies an interface (for reports).
    pub fn interface_kind(&self, egress: EgressId) -> Option<PeerKind> {
        self.interfaces.get(&egress).map(|i| i.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::InterfaceInfo;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::policy::Policy;
    use ef_bgp::router::{PeerAttachment, PeerStub, RouterConfig};
    use ef_net_types::{Asn, Prefix};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    struct World {
        router: BgpRouter,
        #[allow(dead_code)]
        peer: PeerStub,
        #[allow(dead_code)]
        transit: PeerStub,
        controller: PopController,
    }

    /// One private peer (egress 1, 100 Mbps) + one transit (egress 2, big),
    /// both announcing the given prefixes.
    fn world(prefixes: &[&str]) -> World {
        let mut router = BgpRouter::new(RouterConfig {
            name: "pop0-pr0".into(),
            asn: Asn::LOCAL,
            router_id: "10.0.0.1".parse().unwrap(),
        });
        for (id, asn, kind, egress) in [
            (1u64, 65001u32, PeerKind::PrivatePeer, 1u32),
            (2, 65010, PeerKind::Transit, 2),
        ] {
            router.add_peer(PeerAttachment {
                peer: PeerId(id),
                peer_asn: Asn(asn),
                kind,
                egress: EgressId(egress),
                policy: Policy::default_import(Asn::LOCAL, kind),
                max_prefixes: 0,
            });
        }
        let mut peer = PeerStub::new(PeerId(1), Asn(65001), "10.9.0.1".parse().unwrap());
        let mut transit = PeerStub::new(PeerId(2), Asn(65010), "10.9.0.2".parse().unwrap());
        peer.pump(&mut router, 0);
        transit.pump(&mut router, 0);
        for prefix in prefixes {
            peer.announce(
                &mut router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65001)]),
                    ..Default::default()
                },
                0,
            );
            transit.announce(
                &mut router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65010)]),
                    ..Default::default()
                },
                0,
            );
        }
        let interfaces = HashMap::from([
            (
                EgressId(1),
                InterfaceInfo {
                    capacity_mbps: 100.0,
                    kind: PeerKind::PrivatePeer,
                },
            ),
            (
                EgressId(2),
                InterfaceInfo {
                    capacity_mbps: 100_000.0,
                    kind: PeerKind::Transit,
                },
            ),
        ]);
        let mut controller =
            PopController::new(0, ControllerConfig::default(), interfaces, &mut router);
        controller.ingest_bmp(router.drain_bmp());
        World {
            router,
            peer,
            transit,
            controller,
        }
    }

    #[test]
    fn quiet_epoch_changes_nothing() {
        let mut w = world(&["1.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 40.0)]);
        let report = w.controller.run_epoch(&traffic, &mut w.router, 30_000);
        assert_eq!(report.overrides_active, 0);
        assert_eq!(report.churn_announced + report.churn_withdrawn, 0);
        assert!(report.overloaded_before.is_empty());
        assert_eq!(report.total_demand_mbps, 40.0);
        assert_eq!(
            w.router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn overload_triggers_detour_and_recovery_reverts_it() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        // Peak: 150 Mbps on a 100 Mbps PNI.
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let report = w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(report.overloaded_before.len(), 1);
        assert_eq!(report.overrides_active, 1);
        assert!(report.detoured_mbps > 0.0);
        assert!(report.residual_overloaded.is_empty());
        assert!(report.detoured_by_kind.contains_key("transit"));
        // One prefix steered to transit.
        let steered = [p("1.0.0.0/24"), p("2.0.0.0/24")]
            .iter()
            .filter(|pre| w.router.fib_entry(pre).unwrap().egress == EgressId(2))
            .count();
        assert_eq!(steered, 1);

        // Off-peak: demand drops; the stateless recompute withdraws.
        let off_peak = HashMap::from([(p("1.0.0.0/24"), 30.0), (p("2.0.0.0/24"), 20.0)]);
        let report = w.controller.run_epoch(&off_peak, &mut w.router, 60_000);
        assert_eq!(report.overrides_active, 0);
        assert_eq!(report.churn_withdrawn, 1);
        assert_eq!(
            w.router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
        assert_eq!(
            w.router.fib_entry(&p("2.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn steady_overload_causes_no_churn_after_first_epoch() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let first = w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(first.churn_announced, 1);
        for i in 2..6 {
            let again = w.controller.run_epoch(&peak, &mut w.router, 30_000 * i);
            assert_eq!(
                again.churn_announced + again.churn_withdrawn,
                0,
                "steady state is churn-free (epoch {i})"
            );
            assert_eq!(again.overrides_active, 1);
        }
    }

    #[test]
    fn dry_run_reports_but_does_not_steer() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        // Swap in a dry-run controller. The original controller already
        // consumed the BMP backlog, so hand the dry one its collected view
        // by replaying fresh announcements from the peers.
        let cfg = ControllerConfig {
            dry_run: true,
            ..Default::default()
        };
        let interfaces = w.controller.interfaces().clone();
        let mut dry = PopController::new(1, cfg, interfaces, &mut w.router);
        w.router.drain_bmp();
        for prefix in ["1.0.0.0/24", "2.0.0.0/24"] {
            w.peer.announce(
                &mut w.router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65001)]),
                    ..Default::default()
                },
                1,
            );
            w.transit.announce(
                &mut w.router,
                p(prefix),
                PathAttributes {
                    as_path: AsPath::sequence([Asn(65010)]),
                    ..Default::default()
                },
                1,
            );
        }
        dry.ingest_bmp(w.router.drain_bmp());
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        let report = dry.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(report.overloaded_before.len(), 1, "overload detected");
        assert_eq!(report.overrides_active, 0, "but nothing injected");
        assert_eq!(
            w.router.fib_entry(&p("1.0.0.0/24")).unwrap().egress,
            EgressId(1)
        );
    }

    #[test]
    fn unrouted_demand_is_surfaced() {
        let mut w = world(&["1.0.0.0/24"]);
        let traffic = HashMap::from([(p("1.0.0.0/24"), 10.0), (p("99.0.0.0/24"), 5.0)]);
        let report = w.controller.run_epoch(&traffic, &mut w.router, 30_000);
        assert_eq!(report.unrouted_mbps, 5.0);
    }

    #[test]
    fn limit_and_kind_helpers() {
        let w = world(&[]);
        assert!((w.controller.limit_mbps(EgressId(1)) - 95.0).abs() < 1e-9);
        assert_eq!(w.controller.limit_mbps(EgressId(77)), f64::INFINITY);
        assert_eq!(
            w.controller.interface_kind(EgressId(1)),
            Some(PeerKind::PrivatePeer)
        );
        assert_eq!(w.controller.interface_kind(EgressId(77)), None);
    }

    #[test]
    fn drain_withdraws_all() {
        let mut w = world(&["1.0.0.0/24", "2.0.0.0/24"]);
        let peak = HashMap::from([(p("1.0.0.0/24"), 80.0), (p("2.0.0.0/24"), 70.0)]);
        w.controller.run_epoch(&peak, &mut w.router, 30_000);
        assert_eq!(w.controller.active_overrides().len(), 1);
        w.controller.drain(&mut w.router, 60_000);
        assert!(w.controller.active_overrides().is_empty());
        assert!(!w.router.fib_entry(&p("1.0.0.0/24")).unwrap().is_override);
        assert!(!w.router.fib_entry(&p("2.0.0.0/24")).unwrap().is_override);
    }
}
