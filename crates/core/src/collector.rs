//! BMP route collection (paper §4.1).
//!
//! The controller never peers with routers to learn routes — it consumes
//! their BMP feeds, which export every post-policy route (not only the
//! decision winners). [`RouteCollector`] folds those messages into a
//! [`LocRib`]-shaped view the projection and allocator operate on.
//!
//! Routes are classified by the interconnect-kind community the routers'
//! import policy tagged at the edge; the egress interface of a route is the
//! attachment egress of the peer it came from (supplied as static config),
//! except controller-injected routes, whose egress rides in the synthetic
//! next hop.

use std::collections::HashMap;

use ef_bgp::attrstore::{AttrStore, RouteRec};
use ef_bgp::bmp::BmpMessage;
use ef_bgp::peer::{PeerId, PeerKind};
use ef_bgp::rib::LocRib;
use ef_bgp::route::{EgressId, Route, RouteSource};
use ef_net_types::Prefix;

/// Maintains the controller's merged route view from BMP.
#[derive(Debug, Default)]
pub struct RouteCollector {
    /// Peer → egress interface, from PoP config.
    peer_egress: HashMap<PeerId, EgressId>,
    rib: LocRib,
    /// Messages that could not be attributed (unknown peer, missing tag).
    dropped: usize,
    /// Global generation counter; the source of per-prefix stamps.
    generation: u64,
    /// Per-prefix generation, bumped whenever the prefix's *non-override*
    /// candidate set changes (see [`generation_of`](Self::generation_of)).
    generations: HashMap<Prefix, u64>,
}

impl RouteCollector {
    /// Creates a collector knowing each peer's egress interface.
    pub fn new(peer_egress: HashMap<PeerId, EgressId>) -> Self {
        RouteCollector {
            peer_egress,
            rib: LocRib::new(),
            dropped: 0,
            generation: 0,
            generations: HashMap::new(),
        }
    }

    /// Stamps `prefix` with a fresh generation.
    fn touch(&mut self, prefix: Prefix) {
        self.generation += 1;
        self.generations.insert(prefix, self.generation);
    }

    /// The prefix's generation stamp: guaranteed to change whenever the set
    /// of non-override candidate routes for the prefix changes, and
    /// guaranteed *not* to change on controller-route (override) churn —
    /// projection ignores overrides, so its memoized per-prefix decision
    /// stays valid exactly as long as this stamp does. Prefixes never seen
    /// report 0.
    pub fn generation_of(&self, prefix: &Prefix) -> u64 {
        self.generations.get(prefix).copied().unwrap_or(0)
    }

    /// The global generation counter: strictly increases every time *any*
    /// prefix's non-override candidate set changes, and never moves on
    /// override churn. When two snapshots of this counter agree, every
    /// per-prefix stamp taken in between is still valid — the projection
    /// cache's steady-state fast path.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Registers a (late-provisioned) peer's egress mapping.
    pub fn add_peer(&mut self, peer: PeerId, egress: EgressId) {
        self.peer_egress.insert(peer, egress);
    }

    /// Number of messages dropped for lack of attribution.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Folds a batch of BMP messages into the route view.
    pub fn ingest(&mut self, messages: impl IntoIterator<Item = BmpMessage>) {
        for msg in messages {
            match msg {
                BmpMessage::RouteMonitoring { peer, update } => {
                    // Kind is recovered from the import-tag community.
                    let kind = update.attrs.communities.iter().find_map(|c| {
                        (c.asn_part() == (ef_net_types::Asn::LOCAL.0 & 0xFFFF) as u16)
                            .then(|| PeerKind::from_tag_code(c.value_part()))
                            .flatten()
                    });
                    for prefix in &update.withdrawn {
                        // Dirty only if the withdrawal removes a route that
                        // projection could see (non-override); withdrawing
                        // nothing, or an override, leaves its view intact.
                        let dirties = self
                            .rib
                            .candidates(prefix)
                            .iter()
                            .any(|r| r.source.peer == peer.peer && !r.is_override());
                        self.rib.withdraw(prefix, peer.peer);
                        if dirties {
                            self.touch(*prefix);
                        }
                    }
                    if update.announced.is_empty() {
                        continue;
                    }
                    let Some(kind) = kind else {
                        self.dropped += 1;
                        continue;
                    };
                    let egress = if kind == PeerKind::Controller {
                        update.attrs.next_hop.and_then(EgressId::from_next_hop)
                    } else {
                        self.peer_egress.get(&peer.peer).copied()
                    };
                    let Some(egress) = egress else {
                        self.dropped += 1;
                        continue;
                    };
                    let source = RouteSource {
                        peer: peer.peer,
                        peer_asn: peer.peer_asn,
                        kind,
                    };
                    for prefix in &update.announced {
                        // One deep clone per distinct attribute set: the
                        // interned store dedups across the prefix fan-out.
                        self.rib.install_ref(*prefix, &update.attrs, source, egress);
                        // Controller self-echoes are overrides: projection
                        // never reads them, so they must not dirty the memo.
                        if kind != PeerKind::Controller {
                            self.touch(*prefix);
                        }
                    }
                }
                BmpMessage::PeerDown { peer, .. } => {
                    // `withdraw_peer` reports overall-best changes, which is
                    // the wrong signal here (overrides mask organic churn);
                    // scan for prefixes losing a non-override route instead.
                    let dirty: Vec<Prefix> = self
                        .rib
                        .iter()
                        .filter(|(_, routes)| {
                            routes
                                .iter()
                                .any(|r| r.source.peer == peer.peer && !r.is_override())
                        })
                        .map(|(prefix, _)| *prefix)
                        .collect();
                    self.rib.withdraw_peer(peer.peer);
                    for prefix in dirty {
                        self.touch(prefix);
                    }
                }
                BmpMessage::PeerUp(_) | BmpMessage::Initiation { .. } | BmpMessage::Termination => {
                }
            }
        }
    }

    /// Every candidate route for a prefix, as compact pooled records.
    pub fn candidates(&self, prefix: &Prefix) -> &[RouteRec] {
        self.rib.candidates(prefix)
    }

    /// Candidates ranked best-first by the BGP decision process.
    pub fn ranked(&self, prefix: &Prefix) -> Vec<RouteRec> {
        self.rib.ranked(prefix)
    }

    /// Zero-alloc variant of [`ranked`](Self::ranked): ranks into a
    /// caller-owned scratch vector.
    pub fn ranked_into(&self, prefix: &Prefix, out: &mut Vec<RouteRec>) {
        self.rib.ranked_into(prefix, out)
    }

    /// The interned attribute store backing the records, for the cold paths
    /// that need full [`Route`]s.
    pub fn store(&self) -> &AttrStore {
        self.rib.store()
    }

    /// Materializes a full [`Route`] from a pooled record.
    pub fn route(&self, prefix: Prefix, rec: &RouteRec) -> Route {
        self.rib.route(prefix, rec)
    }

    /// Number of prefixes with at least one route.
    pub fn prefix_count(&self) -> usize {
        self.rib.len()
    }

    /// Approximate resident bytes of the merged route view.
    pub fn approx_bytes(&self) -> usize {
        self.rib.approx_bytes()
    }

    /// Re-lays the route pool out prefix-sorted (after bulk load).
    pub fn compact(&mut self) {
        self.rib.compact()
    }

    /// Iterates `(prefix, candidates)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &[RouteRec])> {
        self.rib.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_bgp::attrs::{AsPath, PathAttributes};
    use ef_bgp::bmp::BmpPeerHeader;
    use ef_bgp::message::UpdateMessage;
    use ef_net_types::Asn;

    fn header(peer: u64, asn: u32) -> BmpPeerHeader {
        BmpPeerHeader {
            peer: PeerId(peer),
            peer_asn: Asn(asn),
            peer_bgp_id: "10.0.0.1".parse().unwrap(),
            timestamp_ms: 0,
        }
    }

    fn tagged_attrs(kind: PeerKind, path: &[u32]) -> PathAttributes {
        let mut attrs = PathAttributes {
            local_pref: Some(kind.default_local_pref()),
            as_path: AsPath::sequence(path.iter().map(|a| Asn(*a))),
            ..Default::default()
        };
        attrs.add_community(kind.tag_community());
        attrs
    }

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn collector() -> RouteCollector {
        RouteCollector::new(HashMap::from([
            (PeerId(1), EgressId(11)),
            (PeerId(2), EgressId(12)),
        ]))
    }

    #[test]
    fn announce_and_withdraw_flow_through() {
        let mut c = collector();
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(1, 65001),
            update: UpdateMessage::announce(
                p("203.0.113.0/24"),
                tagged_attrs(PeerKind::PrivatePeer, &[65001]),
            ),
        }]);
        assert_eq!(c.prefix_count(), 1);
        let routes = c.candidates(&p("203.0.113.0/24"));
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].egress, EgressId(11));
        assert_eq!(routes[0].source.kind, PeerKind::PrivatePeer);

        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(1, 65001),
            update: UpdateMessage::withdraw([p("203.0.113.0/24")]),
        }]);
        assert_eq!(c.prefix_count(), 0);
    }

    #[test]
    fn ranked_respects_decision_process() {
        let mut c = collector();
        c.ingest([
            BmpMessage::RouteMonitoring {
                peer: header(2, 65010),
                update: UpdateMessage::announce(
                    p("203.0.113.0/24"),
                    tagged_attrs(PeerKind::Transit, &[65010]),
                ),
            },
            BmpMessage::RouteMonitoring {
                peer: header(1, 65001),
                update: UpdateMessage::announce(
                    p("203.0.113.0/24"),
                    tagged_attrs(PeerKind::PrivatePeer, &[65001, 64999]),
                ),
            },
        ]);
        let ranked = c.ranked(&p("203.0.113.0/24"));
        assert_eq!(ranked.len(), 2);
        assert_eq!(
            ranked[0].source.kind,
            PeerKind::PrivatePeer,
            "tier beats length"
        );
    }

    #[test]
    fn peer_down_flushes_routes() {
        let mut c = collector();
        for prefix in ["1.0.0.0/24", "2.0.0.0/24"] {
            c.ingest([BmpMessage::RouteMonitoring {
                peer: header(1, 65001),
                update: UpdateMessage::announce(
                    p(prefix),
                    tagged_attrs(PeerKind::PrivatePeer, &[65001]),
                ),
            }]);
        }
        assert_eq!(c.prefix_count(), 2);
        c.ingest([BmpMessage::PeerDown {
            peer: header(1, 65001),
            reason: 1,
        }]);
        assert_eq!(c.prefix_count(), 0);
    }

    #[test]
    fn untagged_routes_are_dropped_and_counted() {
        let mut c = collector();
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(1, 65001),
            update: UpdateMessage::announce(
                p("203.0.113.0/24"),
                PathAttributes::default(), // no kind tag
            ),
        }]);
        assert_eq!(c.prefix_count(), 0);
        assert_eq!(c.dropped(), 1);
    }

    #[test]
    fn unknown_peer_is_dropped() {
        let mut c = collector();
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(99, 65099),
            update: UpdateMessage::announce(
                p("203.0.113.0/24"),
                tagged_attrs(PeerKind::PublicPeer, &[65099]),
            ),
        }]);
        assert_eq!(c.prefix_count(), 0);
        assert_eq!(c.dropped(), 1);
    }

    #[test]
    fn controller_routes_resolve_egress_from_next_hop() {
        let mut c = collector();
        let mut attrs = tagged_attrs(PeerKind::Controller, &[]);
        attrs.next_hop = Some(EgressId(42).to_next_hop().unwrap());
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(100, 32934),
            update: UpdateMessage::announce(p("203.0.113.0/24"), attrs),
        }]);
        let routes = c.candidates(&p("203.0.113.0/24"));
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].egress, EgressId(42));
        assert!(routes[0].is_override());
    }

    #[test]
    fn generations_track_non_override_churn_only() {
        let mut c = collector();
        let prefix = p("203.0.113.0/24");
        assert_eq!(c.generation_of(&prefix), 0, "unseen prefix is generation 0");

        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(1, 65001),
            update: UpdateMessage::announce(prefix, tagged_attrs(PeerKind::PrivatePeer, &[65001])),
        }]);
        let g1 = c.generation_of(&prefix);
        assert!(g1 > 0, "organic announce dirties");

        // Override churn is invisible to projection and must not dirty.
        let mut oattrs = tagged_attrs(PeerKind::Controller, &[]);
        oattrs.next_hop = Some(EgressId(42).to_next_hop().unwrap());
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(100, 32934),
            update: UpdateMessage::announce(prefix, oattrs),
        }]);
        assert_eq!(c.generation_of(&prefix), g1, "override announce is clean");
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(100, 32934),
            update: UpdateMessage::withdraw([prefix]),
        }]);
        assert_eq!(c.generation_of(&prefix), g1, "override withdraw is clean");

        // Withdrawing a route the peer does not hold leaves the set alone.
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(2, 65010),
            update: UpdateMessage::withdraw([prefix]),
        }]);
        assert_eq!(c.generation_of(&prefix), g1, "no-op withdraw is clean");

        // A real withdrawal dirties.
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(1, 65001),
            update: UpdateMessage::withdraw([prefix]),
        }]);
        assert!(c.generation_of(&prefix) > g1, "organic withdraw dirties");
    }

    #[test]
    fn peer_down_dirties_exactly_the_peers_prefixes() {
        let mut c = collector();
        c.ingest([
            BmpMessage::RouteMonitoring {
                peer: header(1, 65001),
                update: UpdateMessage::announce(
                    p("1.0.0.0/24"),
                    tagged_attrs(PeerKind::PrivatePeer, &[65001]),
                ),
            },
            BmpMessage::RouteMonitoring {
                peer: header(2, 65010),
                update: UpdateMessage::announce(
                    p("2.0.0.0/24"),
                    tagged_attrs(PeerKind::Transit, &[65010]),
                ),
            },
        ]);
        let g1 = c.generation_of(&p("1.0.0.0/24"));
        let g2 = c.generation_of(&p("2.0.0.0/24"));
        c.ingest([BmpMessage::PeerDown {
            peer: header(1, 65001),
            reason: 1,
        }]);
        assert!(
            c.generation_of(&p("1.0.0.0/24")) > g1,
            "downed peer's prefix dirtied"
        );
        assert_eq!(
            c.generation_of(&p("2.0.0.0/24")),
            g2,
            "unrelated prefix untouched"
        );
    }

    #[test]
    fn late_peer_registration_works() {
        let mut c = RouteCollector::new(HashMap::new());
        c.add_peer(PeerId(5), EgressId(50));
        c.ingest([BmpMessage::RouteMonitoring {
            peer: header(5, 65005),
            update: UpdateMessage::announce(
                p("5.0.0.0/24"),
                tagged_attrs(PeerKind::PublicPeer, &[65005]),
            ),
        }]);
        assert_eq!(c.prefix_count(), 1);
    }
}
