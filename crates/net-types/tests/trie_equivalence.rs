//! Equivalence proptests: the path-compressed [`CompressedTrie`] (both the
//! incremental and the batched `from_sorted` build) must be observationally
//! identical to the simple binary [`PrefixTrie`] on arbitrary mixed v4/v6
//! prefix sets — exact match, longest-prefix match, `matches`, removal, and
//! iteration order.

use std::net::{Ipv4Addr, Ipv6Addr};

use proptest::prelude::*;

use ef_net_types::{CompressedTrie, Prefix, PrefixTrie};

/// An arbitrary prefix from either family, biased toward short masks so
/// overlap (and therefore interesting LPM behaviour) is common.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::v4(Ipv4Addr::from(a), l)),
        (any::<u32>(), 0u8..=16).prop_map(|(a, l)| Prefix::v4(Ipv4Addr::from(a), l)),
        (any::<u128>(), 0u8..=128).prop_map(|(a, l)| Prefix::v6(Ipv6Addr::from(a), l)),
        (any::<u128>(), 0u8..=48).prop_map(|(a, l)| Prefix::v6(Ipv6Addr::from(a), l)),
    ]
}

fn arb_entries() -> impl Strategy<Value = Vec<(Prefix, u32)>> {
    proptest::collection::vec((arb_prefix(), any::<u32>()), 0..60)
}

proptest! {
    /// Incremental inserts: every observation matches the binary trie.
    #[test]
    fn incremental_build_matches_binary_trie(
        entries in arb_entries(),
        keys in proptest::collection::vec(arb_prefix(), 1..20),
    ) {
        let mut simple = PrefixTrie::new();
        let mut compressed = CompressedTrie::new();
        for (pfx, v) in &entries {
            prop_assert_eq!(simple.insert(*pfx, *v), compressed.insert(*pfx, *v));
        }
        prop_assert_eq!(simple.len(), compressed.len());
        for key in entries.iter().map(|(p, _)| *p).chain(keys) {
            prop_assert_eq!(simple.get(&key), compressed.get(&key));
            prop_assert_eq!(simple.longest_match(key), compressed.longest_match(key));
            prop_assert_eq!(simple.matches(key), compressed.matches(key));
        }
        let a: Vec<(Prefix, u32)> = simple.iter().map(|(p, v)| (p, *v)).collect();
        let b: Vec<(Prefix, u32)> = compressed.iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(a, b);
    }

    /// The batched one-pass build is indistinguishable from incremental
    /// insertion, including last-wins duplicate handling.
    #[test]
    fn batched_build_matches_incremental(entries in arb_entries()) {
        let mut incremental = CompressedTrie::new();
        for (pfx, v) in &entries {
            incremental.insert(*pfx, *v);
        }
        let batched = CompressedTrie::from_sorted(entries.clone());
        prop_assert_eq!(batched.len(), incremental.len());
        let a: Vec<(Prefix, u32)> = incremental.iter().map(|(p, v)| (p, *v)).collect();
        let b: Vec<(Prefix, u32)> = batched.iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(a, b);
        for (pfx, _) in &entries {
            prop_assert_eq!(batched.get(pfx), incremental.get(pfx));
            prop_assert_eq!(batched.longest_match(*pfx), incremental.longest_match(*pfx));
        }
        // Canonical patricia bound: at most 2n-1 live nodes.
        if !batched.is_empty() {
            prop_assert!(batched.node_count() < 2 * batched.len());
        }
    }

    /// Interleaved removals track the binary trie, and the arena stays
    /// canonical (merge-on-remove) after every step.
    #[test]
    fn removal_matches_binary_trie(
        entries in arb_entries(),
        remove_mask in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let mut simple = PrefixTrie::new();
        let mut compressed = CompressedTrie::new();
        for (pfx, v) in &entries {
            simple.insert(*pfx, *v);
            compressed.insert(*pfx, *v);
        }
        for (i, (pfx, _)) in entries.iter().enumerate() {
            if remove_mask[i % remove_mask.len()] {
                prop_assert_eq!(simple.remove(pfx), compressed.remove(pfx));
                if !compressed.is_empty() {
                    prop_assert!(compressed.node_count() < 2 * compressed.len());
                }
            }
        }
        prop_assert_eq!(simple.len(), compressed.len());
        for (pfx, _) in &entries {
            prop_assert_eq!(simple.get(pfx), compressed.get(pfx));
            prop_assert_eq!(simple.longest_match(*pfx), compressed.longest_match(*pfx));
        }
        let a: Vec<(Prefix, u32)> = simple.iter().map(|(p, v)| (p, *v)).collect();
        let b: Vec<(Prefix, u32)> = compressed.iter().map(|(p, v)| (p, *v)).collect();
        prop_assert_eq!(a, b);
        // Removing everything must drain the arena completely.
        for (pfx, _) in &entries {
            compressed.remove(pfx);
        }
        prop_assert!(compressed.is_empty());
        prop_assert_eq!(compressed.node_count(), 0);
    }
}
