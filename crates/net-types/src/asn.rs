use std::fmt;

use serde::{Deserialize, Serialize};

/// An Autonomous System Number (4-byte, RFC 6793).
///
/// ASNs identify the networks that exchange routes over BGP: Facebook's edge
/// (AS32934 in the real world), its transit providers, and every peer at
/// every PoP. The newtype keeps ASNs from being confused with other `u32`
/// identifiers flying around the simulator.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// The ASN used for the content provider's own network in generated
    /// deployments (Facebook's real ASN, used here as a recognizable default).
    pub const LOCAL: Asn = Asn(32934);

    /// Returns true if this ASN falls in a private-use range
    /// (64512–65534 or 4200000000–4294967294, RFC 6996).
    pub fn is_private(self) -> bool {
        matches!(self.0, 64512..=65534 | 4_200_000_000..=4_294_967_294)
    }

    /// Returns true if the ASN fits in two bytes (pre-RFC 6793 space).
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<Asn> for u32 {
    fn from(v: Asn) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_as_prefix() {
        assert_eq!(Asn(64512).to_string(), "AS64512");
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(!Asn(3356).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(4_294_967_295).is_private());
    }

    #[test]
    fn sixteen_bit_detection() {
        assert!(Asn(65535).is_16bit());
        assert!(!Asn(65536).is_16bit());
    }

    #[test]
    fn round_trips_through_u32() {
        let a = Asn(12345);
        assert_eq!(Asn::from(u32::from(a)), a);
    }

    #[test]
    fn serde_is_transparent() {
        let a = Asn(701);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "701");
        assert_eq!(serde_json::from_str::<Asn>(&json).unwrap(), a);
    }
}
