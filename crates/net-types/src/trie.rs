use crate::Prefix;

/// A binary radix trie keyed by [`Prefix`], supporting exact and
/// longest-prefix-match lookups.
///
/// The simulated routers use this as their FIB (a packet's egress is the
/// longest matching prefix's route), and the traffic collector uses it to
/// attribute sampled flows to announced prefixes.
///
/// IPv4 and IPv6 occupy disjoint subtrees (keyed off a family branch at the
/// root) so a single trie can hold both families safely.
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    v4: Node<T>,
    v6: Node<T>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            v4: Node::default(),
            v6: Node::default(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn root(&self, p: &Prefix) -> &Node<T> {
        if p.is_v4() {
            &self.v4
        } else {
            &self.v6
        }
    }

    fn root_mut(&mut self, p: &Prefix) -> &mut Node<T> {
        if p.is_v4() {
            &mut self.v4
        } else {
            &mut self.v6
        }
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let len = prefix.len();
        let mut node = self.root_mut(&prefix);
        for i in 0..len {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value stored exactly at `prefix`.
    ///
    /// Interior nodes left empty are *not* pruned; this trades a little
    /// memory for simpler, obviously-correct code (per the smoltcp ethos).
    pub fn remove(&mut self, prefix: &Prefix) -> Option<T> {
        let len = prefix.len();
        let mut node = self.root_mut(prefix);
        for i in 0..len {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns the value stored exactly at `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        let len = prefix.len();
        let mut node = self.root(prefix);
        for i in 0..len {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Mutable variant of [`get`](Self::get).
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut T> {
        let len = prefix.len();
        let mut node = self.root_mut(prefix);
        for i in 0..len {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// Longest-prefix match: the most specific stored prefix that contains
    /// `key`, together with its value.
    pub fn longest_match(&self, key: Prefix) -> Option<(Prefix, &T)> {
        let mut best: Option<(u8, &T)> = None;
        let mut node = self.root(&key);
        if let Some(v) = node.value.as_ref() {
            best = Some((0, v));
        }
        for i in 0..key.len() {
            let b = key.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (truncate(key, len), v))
    }

    /// All stored prefixes that contain `key` (from least to most specific).
    pub fn matches(&self, key: Prefix) -> Vec<(Prefix, &T)> {
        let mut out = Vec::new();
        let mut node = self.root(&key);
        if let Some(v) = node.value.as_ref() {
            out.push((truncate(key, 0), v));
        }
        for i in 0..key.len() {
            let b = key.bit(i) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        out.push((truncate(key, i + 1), v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Iterates over every `(prefix, value)` pair in deterministic
    /// (bitwise, v4-then-v6) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        collect(&self.v4, Prefix::V4 { addr: 0, len: 0 }, &mut out);
        collect(&self.v6, Prefix::V6 { addr: 0, len: 0 }, &mut out);
        out.into_iter()
    }
}

/// Returns `key` truncated to `len` bits (host bits zeroed).
fn truncate(key: Prefix, len: u8) -> Prefix {
    match key {
        Prefix::V4 { addr, .. } => {
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - len as u32)
            };
            Prefix::V4 {
                addr: addr & mask,
                len,
            }
        }
        Prefix::V6 { addr, .. } => {
            let mask = if len == 0 {
                0
            } else {
                u128::MAX << (128 - len as u32)
            };
            Prefix::V6 {
                addr: addr & mask,
                len,
            }
        }
    }
}

fn collect<'a, T>(node: &'a Node<T>, at: Prefix, out: &mut Vec<(Prefix, &'a T)>) {
    if let Some(v) = node.value.as_ref() {
        out.push((at, v));
    }
    if let Some((lo, hi)) = at.halves() {
        if let Some(c) = node.children[0].as_deref() {
            collect(c, lo, out);
        }
        if let Some(c) = node.children[1].as_deref() {
            collect(c, hi, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;
    use std::net::Ipv4Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(&p("10.0.0.0/9")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(2));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 10);
        *t.get_mut(&p("10.0.0.0/8")).unwrap() += 5;
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&15));
    }

    #[test]
    fn longest_match_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.0.0/16"), "sixteen");
        let (pre, v) = t.longest_match(p("10.1.2.0/24")).unwrap();
        assert_eq!((pre, *v), (p("10.1.0.0/16"), "sixteen"));
        let (pre, v) = t.longest_match(p("10.2.0.0/24")).unwrap();
        assert_eq!((pre, *v), (p("10.0.0.0/8"), "eight"));
        let (pre, v) = t.longest_match(p("192.168.0.0/24")).unwrap();
        assert_eq!((pre, *v), (p("0.0.0.0/0"), "default"));
    }

    #[test]
    fn longest_match_exact_hit() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.0.0/16"), 7);
        let (pre, v) = t.longest_match(p("10.1.0.0/16")).unwrap();
        assert_eq!((pre, *v), (p("10.1.0.0/16"), 7));
    }

    #[test]
    fn longest_match_misses_when_nothing_contains() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        assert!(t.longest_match(p("11.0.0.0/8")).is_none());
        // a more-specific entry does not match a less-specific key
        assert!(t.longest_match(p("10.0.0.0/4")).is_none());
    }

    #[test]
    fn families_do_not_collide() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), "v4");
        t.insert(p("::/0"), "v6");
        assert_eq!(t.len(), 2);
        assert_eq!(*t.longest_match(p("1.2.3.0/24")).unwrap().1, "v4");
        assert_eq!(*t.longest_match(p("2001:db8::/32")).unwrap().1, "v6");
    }

    #[test]
    fn matches_returns_chain() {
        let mut t = PrefixTrie::new();
        t.insert(p("0.0.0.0/0"), 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        let m = t.matches(p("10.1.2.0/24"));
        let prefixes: Vec<Prefix> = m.iter().map(|(pfx, _)| *pfx).collect();
        assert_eq!(
            prefixes,
            vec![p("0.0.0.0/0"), p("10.0.0.0/8"), p("10.1.0.0/16")]
        );
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = PrefixTrie::new();
        let input = ["10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "2001:db8::/32"];
        for (i, s) in input.iter().enumerate() {
            t.insert(p(s), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(pfx, _)| pfx).collect();
        assert_eq!(
            got,
            vec![
                p("9.0.0.0/8"),
                p("10.0.0.0/8"),
                p("10.1.0.0/16"),
                p("2001:db8::/32")
            ]
        );
    }

    proptest! {
        /// The trie must agree with a naive scan over a HashMap model.
        #[test]
        fn prop_matches_model(
            entries in proptest::collection::hash_map(0u32..1u32<<16, any::<u32>(), 0..50),
            key: u32,
        ) {
            // Map 16-bit numbers to /16 prefixes and a /24 key, so overlaps happen.
            let mut trie = PrefixTrie::new();
            let mut model: HashMap<Prefix, u32> = HashMap::new();
            for (k, v) in &entries {
                let pfx = Prefix::v4(Ipv4Addr::from(k << 16), 16);
                trie.insert(pfx, *v);
                model.insert(pfx, *v);
            }
            let keypfx = Prefix::v4(Ipv4Addr::from(key), 24);
            let expected = model
                .iter()
                .filter(|(pfx, _)| pfx.contains(&keypfx))
                .max_by_key(|(pfx, _)| pfx.len())
                .map(|(pfx, v)| (*pfx, *v));
            let got = trie.longest_match(keypfx).map(|(pfx, v)| (pfx, *v));
            prop_assert_eq!(got, expected);
        }

        /// Insert-then-remove returns the trie to exact-match emptiness.
        #[test]
        fn prop_insert_remove_inverse(addrs in proptest::collection::vec(any::<u32>(), 1..40)) {
            let mut trie = PrefixTrie::new();
            let prefixes: Vec<Prefix> = addrs
                .iter()
                .map(|a| Prefix::v4(Ipv4Addr::from(*a), 24))
                .collect();
            for (i, pfx) in prefixes.iter().enumerate() {
                trie.insert(*pfx, i);
            }
            for pfx in &prefixes {
                trie.remove(pfx);
            }
            prop_assert!(trie.is_empty());
            for pfx in &prefixes {
                prop_assert!(trie.get(pfx).is_none());
            }
        }
    }
}
