use std::cmp::Ordering;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An IP prefix (CIDR block), IPv4 or IPv6.
///
/// Prefixes are the unit Edge Fabric steers: the controller's traffic
/// collector aggregates flow samples per prefix, the allocator detours whole
/// prefixes, and override BGP announcements carry exactly one prefix each.
///
/// Host bits beyond the mask are always stored zeroed, so two `Prefix` values
/// are equal iff they denote the same CIDR block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub enum Prefix {
    /// IPv4 prefix: network address (host bits zero) plus mask length 0..=32.
    V4 { addr: u32, len: u8 },
    /// IPv6 prefix: network address (host bits zero) plus mask length 0..=128.
    V6 { addr: u128, len: u8 },
}

impl Prefix {
    /// Builds an IPv4 prefix, zeroing host bits. Panics if `len > 32`.
    pub fn v4(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "IPv4 prefix length {len} > 32");
        let raw = u32::from(addr);
        Prefix::V4 {
            addr: raw & mask_v4(len),
            len,
        }
    }

    /// Builds an IPv6 prefix, zeroing host bits. Panics if `len > 128`.
    pub fn v6(addr: Ipv6Addr, len: u8) -> Self {
        assert!(len <= 128, "IPv6 prefix length {len} > 128");
        let raw = u128::from(addr);
        Prefix::V6 {
            addr: raw & mask_v6(len),
            len,
        }
    }

    /// The default IPv4 route `0.0.0.0/0`.
    pub const DEFAULT_V4: Prefix = Prefix::V4 { addr: 0, len: 0 };

    /// Mask length in bits.
    pub fn len(&self) -> u8 {
        match *self {
            Prefix::V4 { len, .. } | Prefix::V6 { len, .. } => len,
        }
    }

    /// True for the zero-length (default) route.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this is an IPv4 prefix.
    pub fn is_v4(&self) -> bool {
        matches!(self, Prefix::V4 { .. })
    }

    /// Number of address bits in this family (32 or 128).
    pub fn family_bits(&self) -> u8 {
        match self {
            Prefix::V4 { .. } => 32,
            Prefix::V6 { .. } => 128,
        }
    }

    /// The network address bits, left-aligned into a `u128` regardless of
    /// family. Bit `family_bits-1` of the family word becomes bit 127. This
    /// is the canonical key for the radix trie.
    pub fn bits_left_aligned(&self) -> u128 {
        match *self {
            Prefix::V4 { addr, .. } => (addr as u128) << 96,
            Prefix::V6 { addr, .. } => addr,
        }
    }

    /// Returns the `i`-th bit of the network address counting from the most
    /// significant bit (bit 0 is the top bit). `i` must be `< len`.
    pub fn bit(&self, i: u8) -> bool {
        debug_assert!(i < self.len());
        (self.bits_left_aligned() >> (127 - i)) & 1 == 1
    }

    /// True if `self` contains `other`: same family, `self.len <=
    /// other.len`, and the first `self.len` bits agree. A prefix contains
    /// itself.
    pub fn contains(&self, other: &Prefix) -> bool {
        if self.is_v4() != other.is_v4() || self.len() > other.len() {
            return false;
        }
        if self.is_empty() {
            return true;
        }
        let shift = 128 - self.len() as u32;
        (self.bits_left_aligned() >> shift) == (other.bits_left_aligned() >> shift)
    }

    /// True if this prefix contains the given IPv4 address.
    pub fn contains_v4(&self, ip: Ipv4Addr) -> bool {
        self.contains(&Prefix::v4(ip, 32))
    }

    /// Splits this prefix into its two halves, one mask bit longer.
    /// Returns `None` if the prefix is already maximally specific.
    pub fn halves(&self) -> Option<(Prefix, Prefix)> {
        match *self {
            Prefix::V4 { addr, len } if len < 32 => {
                let bit = 1u32 << (31 - len);
                Some((
                    Prefix::V4 { addr, len: len + 1 },
                    Prefix::V4 {
                        addr: addr | bit,
                        len: len + 1,
                    },
                ))
            }
            Prefix::V6 { addr, len } if len < 128 => {
                let bit = 1u128 << (127 - len);
                Some((
                    Prefix::V6 { addr, len: len + 1 },
                    Prefix::V6 {
                        addr: addr | bit,
                        len: len + 1,
                    },
                ))
            }
            _ => None,
        }
    }

    /// The enclosing prefix one bit shorter, or `None` for /0.
    pub fn parent(&self) -> Option<Prefix> {
        match *self {
            Prefix::V4 { addr, len } if len > 0 => {
                let len = len - 1;
                Some(Prefix::V4 {
                    addr: addr & mask_v4(len),
                    len,
                })
            }
            Prefix::V6 { addr, len } if len > 0 => {
                let len = len - 1;
                Some(Prefix::V6 {
                    addr: addr & mask_v6(len),
                    len,
                })
            }
            _ => None,
        }
    }

    /// An arbitrary representative host address inside the prefix (the
    /// network address itself), handy for simulated probing.
    pub fn representative_v4(&self) -> Option<Ipv4Addr> {
        match *self {
            Prefix::V4 { addr, .. } => Some(Ipv4Addr::from(addr)),
            Prefix::V6 { .. } => None,
        }
    }
}

fn mask_v4(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

fn mask_v6(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Prefix::V4 { addr, len } => write!(f, "{}/{}", Ipv4Addr::from(addr), len),
            Prefix::V6 { addr, len } => write!(f, "{}/{}", Ipv6Addr::from(addr), len),
        }
    }
}

/// Error produced when parsing a prefix from CIDR text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(format!("missing '/' in {s:?}")))?;
        let len: u8 = len
            .parse()
            .map_err(|_| PrefixParseError(format!("bad length in {s:?}")))?;
        if let Ok(v4) = addr.parse::<Ipv4Addr>() {
            if len > 32 {
                return Err(PrefixParseError(format!("IPv4 length {len} > 32")));
            }
            Ok(Prefix::v4(v4, len))
        } else if let Ok(v6) = addr.parse::<Ipv6Addr>() {
            if len > 128 {
                return Err(PrefixParseError(format!("IPv6 length {len} > 128")));
            }
            Ok(Prefix::v6(v6, len))
        } else {
            Err(PrefixParseError(format!("bad address in {s:?}")))
        }
    }
}

impl TryFrom<String> for Prefix {
    type Error = PrefixParseError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

impl From<Prefix> for String {
    fn from(p: Prefix) -> String {
        p.to_string()
    }
}

/// Orders IPv4 before IPv6, then by left-aligned bits, then by length —
/// a stable total order convenient for deterministic iteration.
impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.is_v4() as u8)
            .cmp(&(other.is_v4() as u8))
            .reverse()
            .then(self.bits_left_aligned().cmp(&other.bits_left_aligned()))
            .then(self.len().cmp(&other.len()))
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_v4() {
        assert_eq!(p("10.1.0.0/16").to_string(), "10.1.0.0/16");
        assert_eq!(p("0.0.0.0/0"), Prefix::DEFAULT_V4);
    }

    #[test]
    fn parse_and_display_v6() {
        assert_eq!(p("2001:db8::/32").to_string(), "2001:db8::/32");
    }

    #[test]
    fn host_bits_are_normalized() {
        assert_eq!(p("10.1.2.3/16"), p("10.1.0.0/16"));
        assert_eq!(p("2001:db8::1/32"), p("2001:db8::/32"));
    }

    #[test]
    fn parse_errors() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn containment_basics() {
        assert!(p("10.0.0.0/8").contains(&p("10.1.0.0/16")));
        assert!(!p("10.1.0.0/16").contains(&p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").contains(&p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").contains(&p("11.0.0.0/16")));
        assert!(p("0.0.0.0/0").contains(&p("192.168.1.0/24")));
        // cross-family never contains
        assert!(!p("0.0.0.0/0").contains(&p("2001:db8::/32")));
    }

    #[test]
    fn contains_address() {
        assert!(p("192.168.0.0/16").contains_v4("192.168.3.4".parse().unwrap()));
        assert!(!p("192.168.0.0/16").contains_v4("192.169.0.0".parse().unwrap()));
    }

    #[test]
    fn halves_and_parent() {
        let (lo, hi) = p("10.0.0.0/8").halves().unwrap();
        assert_eq!(lo, p("10.0.0.0/9"));
        assert_eq!(hi, p("10.128.0.0/9"));
        assert_eq!(lo.parent().unwrap(), p("10.0.0.0/8"));
        assert_eq!(hi.parent().unwrap(), p("10.0.0.0/8"));
        assert!(p("1.2.3.4/32").halves().is_none());
        assert!(Prefix::DEFAULT_V4.parent().is_none());
    }

    #[test]
    fn bit_indexing() {
        let pre = p("128.0.0.0/1");
        assert!(pre.bit(0));
        let pre = p("64.0.0.0/2");
        assert!(!pre.bit(0));
        assert!(pre.bit(1));
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![p("10.0.0.0/8"), p("2001:db8::/32"), p("1.0.0.0/8")];
        v.sort();
        assert_eq!(v, vec![p("1.0.0.0/8"), p("10.0.0.0/8"), p("2001:db8::/32")]);
    }

    #[test]
    fn serde_round_trip() {
        let pre = p("203.0.113.0/24");
        let json = serde_json::to_string(&pre).unwrap();
        assert_eq!(json, "\"203.0.113.0/24\"");
        assert_eq!(serde_json::from_str::<Prefix>(&json).unwrap(), pre);
    }

    proptest! {
        #[test]
        fn prop_v4_parse_display_round_trip(addr: u32, len in 0u8..=32) {
            let pre = Prefix::v4(Ipv4Addr::from(addr), len);
            let back: Prefix = pre.to_string().parse().unwrap();
            prop_assert_eq!(pre, back);
        }

        #[test]
        fn prop_v6_parse_display_round_trip(addr: u128, len in 0u8..=128) {
            let pre = Prefix::v6(Ipv6Addr::from(addr), len);
            let back: Prefix = pre.to_string().parse().unwrap();
            prop_assert_eq!(pre, back);
        }

        #[test]
        fn prop_parent_contains_child(addr: u32, len in 1u8..=32) {
            let child = Prefix::v4(Ipv4Addr::from(addr), len);
            let parent = child.parent().unwrap();
            prop_assert!(parent.contains(&child));
        }

        #[test]
        fn prop_halves_partition(addr: u32, len in 0u8..=31) {
            let pre = Prefix::v4(Ipv4Addr::from(addr), len);
            let (lo, hi) = pre.halves().unwrap();
            prop_assert!(pre.contains(&lo));
            prop_assert!(pre.contains(&hi));
            prop_assert!(!lo.contains(&hi));
            prop_assert!(!hi.contains(&lo));
        }

        #[test]
        fn prop_containment_is_transitive(addr: u32, a in 0u8..=30) {
            let c = Prefix::v4(Ipv4Addr::from(addr), a + 2);
            let b = c.parent().unwrap();
            let top = b.parent().unwrap();
            prop_assert!(top.contains(&b) && b.contains(&c));
            prop_assert!(top.contains(&c));
        }
    }
}
