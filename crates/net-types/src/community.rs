use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::Asn;

/// A classic 32-bit BGP community (RFC 1997), displayed as `asn:value`.
///
/// Edge Fabric leans on communities in two places the paper calls out:
///
/// * Peering routers tag routes at import with the *peer type* (transit,
///   private/public peer, route server) so the controller can classify every
///   route it sees over BMP.
/// * The controller's injected overrides carry a community marking them as
///   controller-originated so they can be audited and filtered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Community(pub u32);

impl Community {
    /// Builds a community from the conventional `asn:value` pair.
    ///
    /// Only the low 16 bits of the ASN are representable in a classic
    /// community; generated topologies use 16-bit ASNs for tagging.
    pub fn new(asn: u16, value: u16) -> Self {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits, conventionally an ASN.
    pub fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits, the operator-defined value.
    pub fn value_part(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// RFC 1997 well-known community `NO_EXPORT`.
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// RFC 1997 well-known community `NO_ADVERTISE`.
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);

    /// True if the community is in the well-known reserved range.
    pub fn is_well_known(self) -> bool {
        (self.0 >> 16) == 0xFFFF
    }

    /// Communities the reproduction uses to tag routes at import by peer
    /// type, mirroring the paper's route classification. The ASN part is the
    /// low 16 bits of the local AS.
    pub fn peer_type_tag(kind_code: u16) -> Self {
        Community::new((Asn::LOCAL.0 & 0xFFFF) as u16, kind_code)
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

/// Error produced when parsing a community from `asn:value` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityParseError(String);

impl fmt::Display for CommunityParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid community: {}", self.0)
    }
}

impl std::error::Error for CommunityParseError {}

impl FromStr for Community {
    type Err = CommunityParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, v) = s
            .split_once(':')
            .ok_or_else(|| CommunityParseError(format!("missing ':' in {s:?}")))?;
        let a: u16 = a
            .parse()
            .map_err(|_| CommunityParseError(format!("bad asn part in {s:?}")))?;
        let v: u16 = v
            .parse()
            .map_err(|_| CommunityParseError(format!("bad value part in {s:?}")))?;
        Ok(Community::new(a, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packs_parts() {
        let c = Community::new(32934, 100);
        assert_eq!(c.asn_part(), 32934);
        assert_eq!(c.value_part(), 100);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let c = Community::new(65000, 42);
        assert_eq!(c.to_string(), "65000:42");
        assert_eq!("65000:42".parse::<Community>().unwrap(), c);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("65000".parse::<Community>().is_err());
        assert!("a:b".parse::<Community>().is_err());
        assert!("70000:1".parse::<Community>().is_err());
    }

    #[test]
    fn well_known_detection() {
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(Community::NO_ADVERTISE.is_well_known());
        assert!(!Community::new(32934, 1).is_well_known());
    }
}
