//! A path-compressed (patricia) radix trie keyed by [`Prefix`], stored in a
//! flat arena.
//!
//! The binary [`PrefixTrie`](crate::PrefixTrie) allocates one boxed node per
//! key *bit*: a /24 route costs 24 pointer-chased heap nodes. At full-table
//! scale (~1M prefixes) that is tens of millions of cache-missing nodes. The
//! [`CompressedTrie`] collapses every non-branching chain into a single node
//! carrying a *skip string* (the edge label), so the node count is bounded by
//! `2·keys - 1` regardless of key length, and all nodes live contiguously in
//! one `Vec` addressed by `u32` indices — no per-node allocation, no pointer
//! chasing across the heap.
//!
//! A batched [`from_sorted`](CompressedTrie::from_sorted) build constructs
//! the canonical trie for a key set in one pass over the sorted keys
//! (O(n) nodes, O(1) label computation per node), which is how a 1M-prefix
//! FIB loads without a million root-to-leaf descents.
//!
//! Layout invariant (canonical patricia form): every node either stores a
//! value or has two children (the family roots may transiently hold a single
//! child with a value-less label only when they compress the whole family
//! into one chain — i.e. the root *is* the chain). `remove` restores the
//! invariant by merging pass-through nodes into their single child.

use crate::Prefix;

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct CNode<T> {
    /// Edge label (skip string): the key bits this node consumes below its
    /// parent, left-aligned at bit 127. Bits past `label_len` are zero.
    label: u128,
    /// Number of valid bits in `label`.
    label_len: u8,
    /// Value stored at depth `parent_depth + label_len`, if this node
    /// terminates a stored prefix.
    value: Option<T>,
    /// Children, indexed by the key bit following this node's label.
    child: [u32; 2],
}

/// A path-compressed prefix trie over a flat node arena. See the module docs.
///
/// IPv4 and IPv6 occupy disjoint subtrees (two root slots) so a single trie
/// holds both families, mirroring [`PrefixTrie`](crate::PrefixTrie).
#[derive(Debug, Clone)]
pub struct CompressedTrie<T> {
    nodes: Vec<CNode<T>>,
    /// Recycled node slots.
    free: Vec<u32>,
    v4_root: u32,
    v6_root: u32,
    len: usize,
}

impl<T> Default for CompressedTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// `x << s`, well-defined as 0 for shifts >= 128.
#[inline]
fn shl(x: u128, s: u32) -> u128 {
    if s >= 128 {
        0
    } else {
        x << s
    }
}

/// Mask selecting the top `n` bits of a left-aligned word.
#[inline]
fn mask_left(n: u8) -> u128 {
    if n == 0 {
        0
    } else {
        u128::MAX << (128 - n as u32)
    }
}

/// Length of the common prefix of two left-aligned bit strings, capped.
#[inline]
fn common_len(a: u128, b: u128, cap: u8) -> u8 {
    let diff = a ^ b;
    let lz = diff.leading_zeros() as u8;
    lz.min(cap)
}

/// Bit `i` (from the top) of a left-aligned bit string.
#[inline]
fn bit_at(bits: u128, i: u8) -> usize {
    ((bits >> (127 - i as u32)) & 1) as usize
}

/// Returns `key` truncated to `len` bits.
fn truncate(key: Prefix, len: u8) -> Prefix {
    match key {
        Prefix::V4 { addr, .. } => Prefix::V4 {
            addr: addr & (mask_left(len) >> 96) as u32,
            len,
        },
        Prefix::V6 { addr, .. } => Prefix::V6 {
            addr: addr & mask_left(len),
            len,
        },
    }
}

impl<T> CompressedTrie<T> {
    /// Creates an empty trie.
    pub fn new() -> Self {
        CompressedTrie {
            nodes: Vec::new(),
            free: Vec::new(),
            v4_root: NIL,
            v6_root: NIL,
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no prefixes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of arena nodes currently allocated (live + free). Bounded by
    /// `2·len - 1` live nodes in canonical form; exposed for accounting.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Approximate resident bytes of the arena.
    pub fn approx_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<CNode<T>>()
    }

    fn root_slot(&self, v4: bool) -> u32 {
        if v4 {
            self.v4_root
        } else {
            self.v6_root
        }
    }

    fn set_root(&mut self, v4: bool, idx: u32) {
        if v4 {
            self.v4_root = idx;
        } else {
            self.v6_root = idx;
        }
    }

    fn alloc(&mut self, node: CNode<T>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let key = prefix.bits_left_aligned();
        let klen = prefix.len();
        let v4 = prefix.is_v4();

        if self.root_slot(v4) == NIL {
            let leaf = self.alloc(CNode {
                label: key & mask_left(klen),
                label_len: klen,
                value: Some(value),
                child: [NIL, NIL],
            });
            self.set_root(v4, leaf);
            self.len += 1;
            return None;
        }

        let mut cur = self.root_slot(v4);
        // (parent index, child slot) of `cur`; NIL parent means family root.
        let mut parent: (u32, usize) = (NIL, 0);
        let mut depth: u8 = 0;
        loop {
            let node = &self.nodes[cur as usize];
            let rem_key = shl(key, depth as u32);
            let rem_len = klen - depth;
            let common = common_len(rem_key, node.label, rem_len.min(node.label_len));

            if common < node.label_len {
                // The key diverges (or ends) inside this node's label:
                // split the label at `common`.
                let node_label = node.label;
                let node_label_len = node.label_len;
                let old_bit = bit_at(node_label, common);
                // Shorten the existing node to the label tail.
                {
                    let node = &mut self.nodes[cur as usize];
                    node.label = shl(node_label, common as u32);
                    node.label_len = node_label_len - common;
                }
                let mut split = CNode {
                    label: node_label & mask_left(common),
                    label_len: common,
                    value: None,
                    child: [NIL, NIL],
                };
                split.child[old_bit] = cur;
                let split_idx = if common == rem_len {
                    // The inserted prefix terminates exactly at the split.
                    split.value = Some(value);
                    self.alloc(split)
                } else {
                    let new_bit = bit_at(rem_key, common);
                    let split_idx = self.alloc(split);
                    let leaf = self.alloc(CNode {
                        label: shl(rem_key, common as u32) & mask_left(rem_len - common),
                        label_len: rem_len - common,
                        value: Some(value),
                        child: [NIL, NIL],
                    });
                    self.nodes[split_idx as usize].child[new_bit] = leaf;
                    split_idx
                };
                if parent.0 == NIL {
                    self.set_root(v4, split_idx);
                } else {
                    self.nodes[parent.0 as usize].child[parent.1] = split_idx;
                }
                self.len += 1;
                return None;
            }

            // The whole label matches.
            if rem_len == node.label_len {
                let old = self.nodes[cur as usize].value.replace(value);
                if old.is_none() {
                    self.len += 1;
                }
                return old;
            }

            // Descend past the label.
            let next_depth = depth + node.label_len;
            let b = bit_at(key, next_depth);
            let next = self.nodes[cur as usize].child[b];
            if next == NIL {
                let leaf = self.alloc(CNode {
                    label: shl(key, next_depth as u32) & mask_left(klen - next_depth),
                    label_len: klen - next_depth,
                    value: Some(value),
                    child: [NIL, NIL],
                });
                self.nodes[cur as usize].child[b] = leaf;
                self.len += 1;
                return None;
            }
            parent = (cur, b);
            cur = next;
            depth = next_depth;
        }
    }

    /// Walks to the node holding `prefix` exactly. Returns its index.
    fn find(&self, prefix: &Prefix) -> Option<u32> {
        let key = prefix.bits_left_aligned();
        let klen = prefix.len();
        let mut cur = self.root_slot(prefix.is_v4());
        let mut depth: u8 = 0;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            let rem_key = shl(key, depth as u32);
            let rem_len = klen - depth;
            if node.label_len > rem_len
                || common_len(rem_key, node.label, node.label_len) < node.label_len
            {
                return None;
            }
            if rem_len == node.label_len {
                return Some(cur);
            }
            depth += node.label_len;
            cur = node.child[bit_at(key, depth)];
        }
        None
    }

    /// Returns the value stored exactly at `prefix`, if any.
    pub fn get(&self, prefix: &Prefix) -> Option<&T> {
        self.find(prefix)
            .and_then(|idx| self.nodes[idx as usize].value.as_ref())
    }

    /// Mutable variant of [`get`](Self::get).
    pub fn get_mut(&mut self, prefix: &Prefix) -> Option<&mut T> {
        self.find(prefix)
            .and_then(|idx| self.nodes[idx as usize].value.as_mut())
    }

    /// Removes and returns the value stored exactly at `prefix`, merging
    /// pass-through nodes so the arena stays canonical under churn.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<T> {
        let key = prefix.bits_left_aligned();
        let klen = prefix.len();
        let v4 = prefix.is_v4();
        let mut cur = self.root_slot(v4);
        let mut parent: (u32, usize) = (NIL, 0);
        let mut depth: u8 = 0;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            let rem_key = shl(key, depth as u32);
            let rem_len = klen - depth;
            if node.label_len > rem_len
                || common_len(rem_key, node.label, node.label_len) < node.label_len
            {
                return None;
            }
            if rem_len == node.label_len {
                let old = self.nodes[cur as usize].value.take()?;
                self.len -= 1;
                self.cleanup(cur, parent, v4);
                return Some(old);
            }
            depth += node.label_len;
            let b = bit_at(key, depth);
            parent = (cur, b);
            cur = self.nodes[cur as usize].child[b];
        }
        None
    }

    /// Restores canonical form around a node whose value was just removed:
    /// drops it if it became an empty leaf, merges it into its single child
    /// if it became a pass-through, then re-examines the parent.
    fn cleanup(&mut self, idx: u32, parent: (u32, usize), v4: bool) {
        let (c0, c1) = {
            let n = &self.nodes[idx as usize];
            (n.child[0], n.child[1])
        };
        match (c0 != NIL, c1 != NIL) {
            (false, false) => {
                // Empty leaf: unlink and free, then fix the parent, which
                // may have become a value-less pass-through.
                if parent.0 == NIL {
                    self.set_root(v4, NIL);
                } else {
                    self.nodes[parent.0 as usize].child[parent.1] = NIL;
                }
                self.free.push(idx);
                if parent.0 != NIL && self.nodes[parent.0 as usize].value.is_none() {
                    self.merge_single_child(parent.0);
                }
            }
            (true, false) | (false, true) => self.merge_single_child(idx),
            (true, true) => {}
        }
    }

    /// If `idx` has exactly one child and no value, splices the child's
    /// label onto `idx` and absorbs it (freeing the child slot).
    fn merge_single_child(&mut self, idx: u32) {
        let (c0, c1, label_len, has_value) = {
            let n = &self.nodes[idx as usize];
            (n.child[0], n.child[1], n.label_len, n.value.is_some())
        };
        if has_value {
            return;
        }
        let child = match (c0 != NIL, c1 != NIL) {
            (true, false) => c0,
            (false, true) => c1,
            _ => return,
        };
        let child_node = std::mem::replace(
            &mut self.nodes[child as usize],
            CNode {
                label: 0,
                label_len: 0,
                value: None,
                child: [NIL, NIL],
            },
        );
        self.free.push(child);
        let n = &mut self.nodes[idx as usize];
        n.label |= child_node.label >> label_len as u32;
        n.label_len += child_node.label_len;
        n.value = child_node.value;
        n.child = child_node.child;
    }

    /// Longest-prefix match: the most specific stored prefix that contains
    /// `key`, together with its value.
    pub fn longest_match(&self, key: Prefix) -> Option<(Prefix, &T)> {
        let kbits = key.bits_left_aligned();
        let klen = key.len();
        let mut best: Option<(u8, u32)> = None;
        let mut cur = self.root_slot(key.is_v4());
        let mut depth: u8 = 0;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            // The node's full label must lie within the key for its prefix
            // to contain the key.
            if node.label_len > klen - depth
                || common_len(shl(kbits, depth as u32), node.label, node.label_len) < node.label_len
            {
                break;
            }
            depth += node.label_len;
            if node.value.is_some() {
                best = Some((depth, cur));
            }
            if depth == klen {
                break;
            }
            cur = node.child[bit_at(kbits, depth)];
        }
        best.and_then(|(len, idx)| {
            self.nodes[idx as usize]
                .value
                .as_ref()
                .map(|v| (truncate(key, len), v))
        })
    }

    /// All stored prefixes that contain `key` (least to most specific).
    pub fn matches(&self, key: Prefix) -> Vec<(Prefix, &T)> {
        let kbits = key.bits_left_aligned();
        let klen = key.len();
        let mut out = Vec::new();
        let mut cur = self.root_slot(key.is_v4());
        let mut depth: u8 = 0;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            if node.label_len > klen - depth
                || common_len(shl(kbits, depth as u32), node.label, node.label_len) < node.label_len
            {
                break;
            }
            depth += node.label_len;
            if let Some(v) = node.value.as_ref() {
                out.push((truncate(key, depth), v));
            }
            if depth == klen {
                break;
            }
            cur = node.child[bit_at(kbits, depth)];
        }
        out
    }

    /// Iterates over every `(prefix, value)` pair in deterministic
    /// (bitwise, v4-then-v6) order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        self.collect_family(self.v4_root, true, &mut out);
        self.collect_family(self.v6_root, false, &mut out);
        out.into_iter()
    }

    fn collect_family<'a>(&'a self, root: u32, v4: bool, out: &mut Vec<(Prefix, &'a T)>) {
        if root == NIL {
            return;
        }
        // Pre-order DFS, child 0 before child 1, which is exactly (bits, len)
        // order: a node's own value sorts before everything in its subtrees,
        // and subtree 0's bit pattern sorts below subtree 1's.
        let mut stack: Vec<(u32, u128, u8)> = vec![(root, 0, 0)];
        while let Some((idx, bits, depth)) = stack.pop() {
            let node = &self.nodes[idx as usize];
            let bits = bits | (node.label >> depth as u32);
            let depth = depth + node.label_len;
            // Push child 1 first so child 0 pops first.
            if node.child[1] != NIL {
                stack.push((node.child[1], bits, depth));
            }
            if node.child[0] != NIL {
                stack.push((node.child[0], bits, depth));
            }
            if let Some(v) = node.value.as_ref() {
                let prefix = if v4 {
                    Prefix::V4 {
                        addr: (bits >> 96) as u32,
                        len: depth,
                    }
                } else {
                    Prefix::V6 {
                        addr: bits,
                        len: depth,
                    }
                };
                out.push((prefix, v));
            }
        }
    }

    /// Builds the canonical trie for a key set in one pass (the batched
    /// build path): sort by `(bits, len)`, then recursively emit one node
    /// per branch point with an O(1) label computation — no per-key
    /// root-to-leaf descent. Later duplicates win, matching repeated
    /// [`insert`](Self::insert).
    pub fn from_sorted(mut entries: Vec<(Prefix, T)>) -> Self {
        entries.sort_by_key(|a| a.0);
        // Keep the *last* occurrence of duplicate prefixes (stable sort
        // preserves input order within runs), so repeated keys behave like
        // repeated `insert` calls. Values are wrapped in Option so the
        // recursive build can move them out of the slice.
        let mut dedup: Vec<(Prefix, Option<T>)> = Vec::with_capacity(entries.len());
        for (p, v) in entries {
            match dedup.last_mut() {
                Some(last) if last.0 == p => last.1 = Some(v),
                _ => dedup.push((p, Some(v))),
            }
        }
        let split = dedup.partition_point(|(p, _)| p.is_v4());
        let mut trie = CompressedTrie {
            nodes: Vec::with_capacity(dedup.len().saturating_mul(2)),
            free: Vec::new(),
            v4_root: NIL,
            v6_root: NIL,
            len: dedup.len(),
        };
        let (v4_entries, v6_entries) = dedup.split_at_mut(split);
        trie.v4_root = trie_build_range(&mut trie, v4_entries, 0);
        trie.v6_root = trie_build_range(&mut trie, v6_entries, 0);
        trie
    }
}

/// Recursive step of [`CompressedTrie::from_sorted`]: builds the subtree for
/// `entries` (sorted, deduped, all agreeing on their first `depth` bits, each
/// len >= depth) and returns its root node index.
fn trie_build_range<T>(
    trie: &mut CompressedTrie<T>,
    entries: &mut [(Prefix, Option<T>)],
    depth: u8,
) -> u32 {
    if entries.is_empty() {
        return NIL;
    }
    let first_bits = entries[0].0.bits_left_aligned();
    let first_len = entries[0].0.len();
    let last_bits = entries[entries.len() - 1].0.bits_left_aligned();
    // Sorted range ⇒ the common bit-prefix of all entries is that of first
    // and last. Capping at the first entry's len also caps at the range's
    // minimum len: among equal bit patterns the shortest len sorts first,
    // and a shorter entry elsewhere in the range would shrink the lcp too.
    let l = common_len(first_bits, last_bits, first_len).max(depth);

    let label = shl(first_bits, depth as u32) & mask_left(l - depth);
    let idx = trie.alloc(CNode {
        label,
        label_len: l - depth,
        value: None,
        child: [NIL, NIL],
    });

    // An entry terminating exactly at the branch point is necessarily the
    // first of the range (same bits, smallest len).
    let rest = if first_len == l {
        let (head, rest) = entries.split_at_mut(1);
        trie.nodes[idx as usize].value = head[0].1.take();
        rest
    } else {
        entries
    };
    if !rest.is_empty() {
        let mid = rest.partition_point(|(p, _)| bit_at(p.bits_left_aligned(), l) == 0);
        let (zeros, ones) = rest.split_at_mut(mid);
        let c0 = trie_build_range(trie, zeros, l);
        let c1 = trie_build_range(trie, ones, l);
        trie.nodes[idx as usize].child = [c0, c1];
    }
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut t = CompressedTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.1.0.0/16"), 2), None);
        assert_eq!(t.insert(p("10.1.0.0/16"), 3), Some(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&1));
        assert_eq!(t.get(&p("10.1.0.0/16")), Some(&3));
        assert_eq!(t.get(&p("10.2.0.0/16")), None);
        assert_eq!(t.remove(&p("10.0.0.0/8")), Some(1));
        assert_eq!(t.remove(&p("10.0.0.0/8")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn longest_match_picks_most_specific() {
        let mut t = CompressedTrie::new();
        t.insert(p("0.0.0.0/0"), "default");
        t.insert(p("10.0.0.0/8"), "coarse");
        t.insert(p("10.1.0.0/16"), "fine");
        let (pfx, v) = t.longest_match(p("10.1.2.0/24")).unwrap();
        assert_eq!(pfx, p("10.1.0.0/16"));
        assert_eq!(*v, "fine");
        let (pfx, v) = t.longest_match(p("10.200.0.0/16")).unwrap();
        assert_eq!(pfx, p("10.0.0.0/8"));
        assert_eq!(*v, "coarse");
        let (pfx, v) = t.longest_match(p("192.0.2.0/24")).unwrap();
        assert_eq!(pfx, p("0.0.0.0/0"));
        assert_eq!(*v, "default");
    }

    #[test]
    fn matches_lists_least_to_most_specific() {
        let mut t = CompressedTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        let m: Vec<u8> = t
            .matches(p("10.1.2.3/32"))
            .into_iter()
            .map(|(pfx, _)| pfx.len())
            .collect();
        assert_eq!(m, vec![8, 16, 24]);
    }

    #[test]
    fn families_do_not_interfere() {
        let mut t = CompressedTrie::new();
        t.insert(p("::/0"), "v6-default");
        t.insert(p("10.0.0.0/8"), "v4");
        assert!(t.longest_match(p("10.1.0.0/16")).is_some());
        assert_eq!(
            t.longest_match(p("2001:db8::/32")).unwrap().1,
            &"v6-default"
        );
        assert_eq!(t.get(&p("::/0")), Some(&"v6-default"));
    }

    #[test]
    fn node_count_stays_canonical_under_churn() {
        let mut t = CompressedTrie::new();
        for i in 0u32..64 {
            t.insert(Prefix::v4(std::net::Ipv4Addr::from(i << 8), 24), i);
        }
        assert!(t.node_count() < 2 * t.len());
        for i in 0u32..32 {
            t.remove(&Prefix::v4(std::net::Ipv4Addr::from(i << 8), 24));
        }
        // Merge-on-remove keeps the arena canonical, not just correct.
        assert!(t.node_count() < 2 * t.len());
        for i in 32u32..64 {
            t.remove(&Prefix::v4(std::net::Ipv4Addr::from(i << 8), 24));
        }
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = CompressedTrie::new();
        let keys = [
            "10.1.0.0/16",
            "10.0.0.0/8",
            "2001:db8::/32",
            "0.0.0.0/0",
            "10.1.0.0/24",
        ];
        for (i, k) in keys.iter().enumerate() {
            t.insert(p(k), i);
        }
        let got: Vec<Prefix> = t.iter().map(|(pfx, _)| pfx).collect();
        let mut want: Vec<Prefix> = keys.iter().map(|k| p(k)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn from_sorted_matches_incremental() {
        let keys = [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.0.0.0/9",
            "10.128.0.0/9",
            "10.1.2.0/24",
            "192.0.2.0/24",
            "::/0",
            "2001:db8::/32",
            "2001:db8::1/128",
        ];
        let batched =
            CompressedTrie::from_sorted(keys.iter().enumerate().map(|(i, k)| (p(k), i)).collect());
        let mut incremental = CompressedTrie::new();
        for (i, k) in keys.iter().enumerate() {
            incremental.insert(p(k), i);
        }
        assert_eq!(batched.len(), incremental.len());
        let a: Vec<(Prefix, usize)> = batched.iter().map(|(pfx, v)| (pfx, *v)).collect();
        let b: Vec<(Prefix, usize)> = incremental.iter().map(|(pfx, v)| (pfx, *v)).collect();
        assert_eq!(a, b);
        for k in &keys {
            assert_eq!(batched.get(&p(k)), incremental.get(&p(k)));
        }
        assert!(batched.node_count() < 2 * batched.len());
    }

    #[test]
    fn from_sorted_duplicates_keep_last() {
        let t = CompressedTrie::from_sorted(vec![(p("10.0.0.0/8"), 1), (p("10.0.0.0/8"), 2)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn host_route_boundaries() {
        let mut t = CompressedTrie::new();
        t.insert(p("255.255.255.255/32"), "v4-host");
        t.insert(p("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128"), "v6-host");
        assert_eq!(t.get(&p("255.255.255.255/32")), Some(&"v4-host"));
        assert_eq!(
            t.longest_match(p("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128"))
                .unwrap()
                .1,
            &"v6-host"
        );
        assert_eq!(t.remove(&p("255.255.255.255/32")), Some("v4-host"));
        assert_eq!(t.len(), 1);
    }
}
