//! Core network types shared by every crate in the Edge Fabric reproduction.
//!
//! This crate is dependency-light on purpose: it defines the vocabulary —
//! [`Prefix`], [`Asn`], [`Community`] — and the longest-prefix-match tries
//! several subsystems need: the simple binary [`PrefixTrie`] and the
//! path-compressed arena [`CompressedTrie`] used at full-table scale.
//!
//! # Examples
//!
//! ```
//! use ef_net_types::{Prefix, PrefixTrie};
//!
//! let mut trie: PrefixTrie<&str> = PrefixTrie::new();
//! trie.insert("10.0.0.0/8".parse().unwrap(), "coarse");
//! trie.insert("10.1.0.0/16".parse().unwrap(), "fine");
//!
//! let hit = trie.longest_match("10.1.2.0/24".parse().unwrap()).unwrap();
//! assert_eq!(*hit.1, "fine");
//! ```

mod asn;
mod community;
mod ctrie;
mod prefix;
mod trie;

pub use asn::Asn;
pub use community::Community;
pub use ctrie::CompressedTrie;
pub use prefix::{Prefix, PrefixParseError};
pub use trie::PrefixTrie;
