//! Space-Saving heavy-hitter tracking (Metwally et al., 2005).
//!
//! A PoP serves orders of magnitude more prefixes than the allocator can
//! reason about per 30-second cycle. Production Edge Fabric bounds its work
//! by focusing on the prefixes that carry the traffic; [`SpaceSaving`]
//! provides that top-k view with bounded memory and the classic guarantee:
//! any prefix whose true count exceeds `total/capacity` is present in the
//! summary, and every reported count overestimates truth by at most the
//! minimum tracked count.

use std::collections::HashMap;

/// Space-Saving summary over `u32` keys (prefix indices) with `u64` counts.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// key → (count, overestimation error at insertion).
    entries: HashMap<u32, (u64, u64)>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a summary tracking at most `capacity` keys (≥1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        SpaceSaving {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Observes `weight` for `key`.
    pub fn observe(&mut self, key: u32, weight: u64) {
        self.total += weight;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.0 += weight;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(key, (weight, 0));
            return;
        }
        // Evict the minimum-count entry; newcomer inherits its count as the
        // overestimation bound.
        let (&min_key, &(min_count, _)) = self
            .entries
            .iter()
            .min_by_key(|(_, (c, _))| *c)
            .expect("nonempty at capacity");
        self.entries.remove(&min_key);
        self.entries.insert(key, (min_count + weight, min_count));
    }

    /// The tracked keys sorted by estimated count, heaviest first. Each
    /// element is `(key, estimated_count, max_overestimation)`.
    pub fn top(&self) -> Vec<(u32, u64, u64)> {
        let mut v: Vec<(u32, u64, u64)> = self
            .entries
            .iter()
            .map(|(k, (c, e))| (*k, *c, *e))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Estimated count for a key (0 if untracked).
    pub fn estimate(&self, key: u32) -> u64 {
        self.entries.get(&key).map(|(c, _)| *c).unwrap_or(0)
    }

    /// True if `key` is *guaranteed* heavy: its count minus error still
    /// exceeds `threshold`.
    pub fn guaranteed_above(&self, key: u32, threshold: u64) -> bool {
        self.entries
            .get(&key)
            .map(|(c, e)| c.saturating_sub(*e) > threshold)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tracks_everything_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for k in 0..5 {
            ss.observe(k, (k + 1) as u64);
        }
        assert_eq!(ss.len(), 5);
        assert_eq!(ss.estimate(4), 5);
        assert_eq!(ss.estimate(9), 0);
        assert_eq!(ss.total(), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn top_is_sorted_heaviest_first() {
        let mut ss = SpaceSaving::new(10);
        ss.observe(1, 5);
        ss.observe(2, 50);
        ss.observe(3, 20);
        let keys: Vec<u32> = ss.top().iter().map(|(k, _, _)| *k).collect();
        assert_eq!(keys, vec![2, 3, 1]);
    }

    #[test]
    fn eviction_keeps_heavy_keys() {
        let mut ss = SpaceSaving::new(3);
        ss.observe(1, 1000);
        ss.observe(2, 900);
        ss.observe(3, 800);
        // A burst of singletons must not displace the heavies.
        for k in 100..200 {
            ss.observe(k, 1);
        }
        let top = ss.top();
        let heavy: Vec<u32> = top.iter().take(2).map(|(k, _, _)| *k).collect();
        assert!(heavy.contains(&1));
        assert!(heavy.contains(&2));
    }

    #[test]
    fn overestimation_is_bounded_by_min() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(1, 10);
        ss.observe(2, 20);
        ss.observe(3, 1); // evicts key 1 (count 10); key 3 reports 11, err 10
        assert_eq!(ss.estimate(3), 11);
        let (_, _, err) = *ss.top().iter().find(|(k, _, _)| *k == 3).unwrap();
        assert_eq!(err, 10);
        assert!(!ss.guaranteed_above(3, 5), "3's true count may be just 1");
    }

    #[test]
    fn guaranteed_above_for_clean_entries() {
        let mut ss = SpaceSaving::new(4);
        ss.observe(1, 100);
        assert!(ss.guaranteed_above(1, 99));
        assert!(!ss.guaranteed_above(1, 100));
        assert!(!ss.guaranteed_above(2, 0));
    }

    #[test]
    fn classic_guarantee_on_zipf_stream() {
        // Any key with true count > total/capacity must be tracked.
        let mut rng = StdRng::seed_from_u64(7);
        let capacity = 20;
        let mut ss = SpaceSaving::new(capacity);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for _ in 0..20_000 {
            // Zipf-ish: low keys much more likely.
            let r: f64 = rng.gen();
            let key = (1.0 / r).log2().floor() as u32;
            ss.observe(key, 1);
            *truth.entry(key).or_default() += 1;
        }
        let threshold = ss.total() / capacity as u64;
        for (key, count) in truth {
            if count > threshold {
                assert!(
                    ss.estimate(key) >= count,
                    "heavy key {key} (true {count}) missing or undercounted"
                );
            }
        }
    }

    proptest! {
        /// Estimates never undercount the truth.
        #[test]
        fn prop_never_undercounts(stream in proptest::collection::vec(0u32..50, 0..500)) {
            let mut ss = SpaceSaving::new(8);
            let mut truth: HashMap<u32, u64> = HashMap::new();
            for k in &stream {
                ss.observe(*k, 1);
                *truth.entry(*k).or_default() += 1;
            }
            for (k, (count, _)) in &ss.entries {
                prop_assert!(*count >= truth.get(k).copied().unwrap_or(0));
            }
            prop_assert!(ss.len() <= 8);
            prop_assert_eq!(ss.total(), stream.len() as u64);
        }
    }
}
