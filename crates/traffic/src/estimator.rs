//! Windowed per-prefix rate estimation from flow samples.
//!
//! Edge Fabric's traffic collector aggregates sampled flows into
//! per-prefix egress rates over a sliding window of about a minute
//! (paper §4.1), preferring a slightly stale but stable estimate over a
//! noisy instantaneous one. [`RateEstimator`] reproduces that: scaled
//! sample bytes land in per-second buckets; the estimate for a prefix is
//! the windowed byte count divided by the window length.

use std::collections::HashMap;

use crate::sampler::FlowSample;

/// Sliding-window rate estimator keyed by prefix index.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window_secs: u64,
    /// Ring of per-second buckets: `buckets[s % window]` holds
    /// `(second_stamp, per-prefix bytes)`.
    buckets: Vec<(u64, HashMap<u32, u64>)>,
}

impl RateEstimator {
    /// Creates an estimator with the given window (seconds, ≥1).
    pub fn new(window_secs: u64) -> Self {
        assert!(window_secs >= 1, "window must be at least one second");
        RateEstimator {
            window_secs,
            buckets: (0..window_secs)
                .map(|_| (u64::MAX, HashMap::new()))
                .collect(),
        }
    }

    /// The window length in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Ingests samples observed during second `now_secs`.
    pub fn ingest(&mut self, now_secs: u64, samples: &[FlowSample]) {
        let idx = (now_secs % self.window_secs) as usize;
        let bucket = &mut self.buckets[idx];
        if bucket.0 != now_secs {
            bucket.0 = now_secs;
            bucket.1.clear();
        }
        for s in samples {
            *bucket.1.entry(s.prefix_idx).or_default() += s.scaled_bytes;
        }
    }

    /// Estimated rate (Mbps) for one prefix at time `now_secs`, over the
    /// trailing window.
    pub fn rate_mbps(&self, now_secs: u64, prefix_idx: u32) -> f64 {
        let mut bytes = 0u64;
        for (stamp, map) in &self.buckets {
            if self.in_window(now_secs, *stamp) {
                bytes += map.get(&prefix_idx).copied().unwrap_or(0);
            }
        }
        bytes as f64 * 8.0 / 1e6 / self.window_secs as f64
    }

    /// All per-prefix estimates at `now_secs`, Mbps. Prefixes with no
    /// samples in the window are absent (the controller treats them as
    /// negligible, exactly as production does).
    pub fn all_rates_mbps(&self, now_secs: u64) -> HashMap<u32, f64> {
        let mut bytes: HashMap<u32, u64> = HashMap::new();
        for (stamp, map) in &self.buckets {
            if self.in_window(now_secs, *stamp) {
                for (prefix, b) in map {
                    *bytes.entry(*prefix).or_default() += b;
                }
            }
        }
        bytes
            .into_iter()
            .map(|(p, b)| (p, b as f64 * 8.0 / 1e6 / self.window_secs as f64))
            .collect()
    }

    fn in_window(&self, now_secs: u64, stamp: u64) -> bool {
        stamp != u64::MAX && stamp <= now_secs && now_secs - stamp < self.window_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(prefix_idx: u32, scaled_bytes: u64) -> FlowSample {
        FlowSample {
            prefix_idx,
            count: 1,
            scaled_bytes,
        }
    }

    #[test]
    fn single_second_estimate() {
        let mut est = RateEstimator::new(10);
        // 12.5 MB in one second of a 10 s window = 10 Mbps average.
        est.ingest(0, &[sample(1, 12_500_000)]);
        assert!((est.rate_mbps(0, 1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn steady_stream_converges_to_true_rate() {
        let mut est = RateEstimator::new(10);
        // 1.25 MB/s = 10 Mbps, sustained.
        for t in 0..20 {
            est.ingest(t, &[sample(1, 1_250_000)]);
        }
        assert!((est.rate_mbps(19, 1) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn old_samples_age_out() {
        let mut est = RateEstimator::new(5);
        est.ingest(0, &[sample(1, 1_000_000)]);
        assert!(est.rate_mbps(0, 1) > 0.0);
        assert_eq!(est.rate_mbps(5, 1), 0.0, "outside the window");
    }

    #[test]
    fn future_buckets_do_not_leak_backwards() {
        let mut est = RateEstimator::new(5);
        est.ingest(10, &[sample(1, 1_000_000)]);
        assert_eq!(est.rate_mbps(8, 1), 0.0);
    }

    #[test]
    fn multiple_prefixes_tracked_independently() {
        let mut est = RateEstimator::new(4);
        est.ingest(0, &[sample(1, 4_000_000), sample(2, 8_000_000)]);
        let rates = est.all_rates_mbps(0);
        assert!((rates[&2] / rates[&1] - 2.0).abs() < 1e-9);
        assert!(!rates.contains_key(&3));
    }

    #[test]
    fn reingesting_same_second_accumulates() {
        let mut est = RateEstimator::new(4);
        est.ingest(0, &[sample(1, 1_000_000)]);
        est.ingest(0, &[sample(1, 1_000_000)]);
        let one = est.rate_mbps(0, 1);
        let mut est2 = RateEstimator::new(4);
        est2.ingest(0, &[sample(1, 2_000_000)]);
        assert!((one - est2.rate_mbps(0, 1)).abs() < 1e-12);
    }

    #[test]
    fn ring_reuse_clears_stale_bucket() {
        let mut est = RateEstimator::new(3);
        est.ingest(0, &[sample(1, 3_000_000)]);
        // Second 3 maps onto the same ring slot as second 0.
        est.ingest(3, &[sample(2, 3_000_000)]);
        assert_eq!(est.rate_mbps(3, 1), 0.0, "old bucket contents cleared");
        assert!(est.rate_mbps(3, 2) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one second")]
    fn zero_window_rejected() {
        RateEstimator::new(0);
    }

    #[test]
    fn sampled_pipeline_estimates_within_a_few_percent() {
        // End-to-end: sampler → estimator over a 30 s window must land
        // within a few percent for a PoP-scale prefix, the accuracy the
        // controller's projections rely on.
        use crate::sampler::{SamplerConfig, SflowSampler};
        let mut sampler = SflowSampler::new(SamplerConfig::default());
        let mut est = RateEstimator::new(30);
        let true_mbps = 2500.0;
        for t in 0..30u64 {
            let samples = sampler.sample_all([(7u32, true_mbps)], 1.0);
            est.ingest(t, &samples);
        }
        let got = est.rate_mbps(29, 7);
        let rel = (got - true_mbps).abs() / true_mbps;
        assert!(rel < 0.05, "estimate {got} off by {:.1}%", rel * 100.0);
    }

    #[test]
    fn sampled_pipeline_misses_tiny_prefixes() {
        use crate::sampler::{SamplerConfig, SflowSampler};
        let mut sampler = SflowSampler::new(SamplerConfig::default());
        let mut est = RateEstimator::new(30);
        for t in 0..30u64 {
            let samples = sampler.sample_all([(9u32, 0.01)], 1.0);
            est.ingest(t, &samples);
        }
        // 10 kbps is far below the sampling floor; the estimate is either
        // zero or wildly quantized — the controller treats it as noise.
        let got = est.rate_mbps(29, 9);
        assert!(got < 2.0, "tiny prefix estimate {got} stays negligible");
    }
}
