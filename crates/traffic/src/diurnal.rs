//! Diurnal demand curves.
//!
//! Paper §3.2's congestion exists because demand is strongly diurnal: the
//! evening peak at each PoP runs roughly 1.5–2× the daily average, and the
//! preferred interconnects are provisioned somewhere in between. The curve
//! here is a raised cosine peaking at 20:00 *local* time, phased per region
//! by its UTC offset, normalized to mean 1 over the day.

use serde::{Deserialize, Serialize};

use ef_topology::Region;

/// A raised-cosine diurnal multiplier with configurable peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCurve {
    /// Multiplier at the daily peak (mean is 1.0). Typical: 1.8.
    pub peak_factor: f64,
    /// Local hour of the peak. Typical: 20.0 (8 pm).
    pub peak_hour: f64,
}

impl Default for DiurnalCurve {
    fn default() -> Self {
        DiurnalCurve {
            peak_factor: 1.8,
            peak_hour: 20.0,
        }
    }
}

impl DiurnalCurve {
    /// Creates a curve with the given peak-to-mean factor (must be in
    /// `[1, 2)` so the trough stays positive).
    pub fn with_peak(peak_factor: f64) -> Self {
        assert!(
            (1.0..2.0).contains(&peak_factor),
            "peak factor {peak_factor} outside [1, 2)"
        );
        DiurnalCurve {
            peak_factor,
            ..Default::default()
        }
    }

    /// The demand multiplier at `utc_hours` (hours since simulated
    /// midnight UTC, may exceed 24) for a consumer in `region`.
    pub fn multiplier(&self, utc_hours: f64, region: Region) -> f64 {
        let local = utc_hours + region.utc_offset_hours();
        let amplitude = self.peak_factor - 1.0;
        let phase = (local - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        1.0 + amplitude * phase.cos()
    }

    /// Multiplier as a function of seconds since midnight UTC.
    pub fn multiplier_at_secs(&self, utc_secs: u64, region: Region) -> f64 {
        self.multiplier(utc_secs as f64 / 3600.0, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn peaks_at_peak_hour_local() {
        let curve = DiurnalCurve::default();
        // Europe is UTC+1, so local 20:00 is 19:00 UTC.
        let at_peak = curve.multiplier(19.0, Region::Europe);
        assert!((at_peak - 1.8).abs() < 1e-9);
        let off_peak = curve.multiplier(7.0, Region::Europe);
        assert!((off_peak - 0.2).abs() < 1e-9, "trough is 2 - peak");
    }

    #[test]
    fn regions_peak_at_different_utc_times() {
        let curve = DiurnalCurve::default();
        // At 19:00 UTC Europe peaks but East Asia (UTC+9, local 04:00) is
        // near trough.
        let eu = curve.multiplier(19.0, Region::Europe);
        let eas = curve.multiplier(19.0, Region::EastAsia);
        assert!(eu > 1.7);
        assert!(
            eas < 0.65,
            "East Asia at local 04:00 is near trough, got {eas}"
        );
    }

    #[test]
    fn mean_over_day_is_one() {
        let curve = DiurnalCurve::default();
        let n = 24 * 60;
        let mean: f64 = (0..n)
            .map(|i| curve.multiplier(i as f64 / 60.0, Region::NorthAmerica))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 1e-6);
    }

    #[test]
    fn seconds_and_hours_agree() {
        let curve = DiurnalCurve::default();
        let a = curve.multiplier(6.5, Region::Oceania);
        let b = curve.multiplier_at_secs(6 * 3600 + 1800, Region::Oceania);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn silly_peak_factor_rejected() {
        DiurnalCurve::with_peak(2.5);
    }

    proptest! {
        #[test]
        fn prop_multiplier_positive_and_bounded(
            h in 0.0f64..48.0,
            peak in 1.0f64..1.99,
        ) {
            let curve = DiurnalCurve::with_peak(peak);
            for region in Region::ALL {
                let m = curve.multiplier(h, region);
                prop_assert!(m > 0.0);
                prop_assert!(m <= peak + 1e-9);
            }
        }

        #[test]
        fn prop_periodic_in_24h(h in 0.0f64..24.0) {
            let curve = DiurnalCurve::default();
            let a = curve.multiplier(h, Region::Europe);
            let b = curve.multiplier(h + 24.0, Region::Europe);
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
