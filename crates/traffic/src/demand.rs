//! The offered-demand model: what each prefix *actually* asks of each PoP
//! at each instant.
//!
//! Rate = (deployment average for the `(PoP, prefix)` pair)
//!      × (diurnal multiplier phased by the prefix's home region)
//!      × (slow multiplicative noise, deterministic in the seed).
//!
//! The noise term is a sum of two incommensurate sinusoids with
//! prefix-specific phases — smooth enough that 30-second controller cycles
//! see a quasi-static demand (as the paper assumes), but varied enough that
//! projections are never exactly right.

use ef_topology::{Deployment, PopId, Region};

use crate::diurnal::DiurnalCurve;

/// One prefix's offered demand at a PoP at some instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandPoint {
    /// Index into the deployment universe's prefix list.
    pub prefix_idx: u32,
    /// Offered rate, Mbps.
    pub mbps: f64,
}

/// Deterministic offered-demand generator over a deployment.
#[derive(Debug, Clone)]
pub struct DemandModel {
    curve: DiurnalCurve,
    /// Noise amplitude (0 disables noise).
    noise_amplitude: f64,
    seed: u64,
    /// Per-prefix home region, precomputed from the deployment.
    prefix_region: Vec<Region>,
}

impl DemandModel {
    /// Builds a model over `deployment` with default curve and ±10% noise.
    pub fn new(deployment: &Deployment, seed: u64) -> Self {
        Self::with_curve(deployment, seed, DiurnalCurve::default(), 0.10)
    }

    /// Builds a model with explicit curve and noise amplitude.
    pub fn with_curve(
        deployment: &Deployment,
        seed: u64,
        curve: DiurnalCurve,
        noise_amplitude: f64,
    ) -> Self {
        let prefix_region = deployment
            .universe
            .prefixes
            .iter()
            .map(|p| deployment.universe.origin_of(p).region)
            .collect();
        DemandModel {
            curve,
            noise_amplitude,
            seed,
            prefix_region,
        }
    }

    /// The diurnal curve in use.
    pub fn curve(&self) -> DiurnalCurve {
        self.curve
    }

    /// Offered rate multiplier for `prefix_idx` at `utc_secs`.
    pub fn multiplier(&self, prefix_idx: u32, utc_secs: u64) -> f64 {
        let region = self.prefix_region[prefix_idx as usize];
        let diurnal = self.curve.multiplier_at_secs(utc_secs, region);
        diurnal * self.noise(prefix_idx, utc_secs)
    }

    /// Offered demand for every prefix served by `pop` at `utc_secs`.
    pub fn offered(&self, deployment: &Deployment, pop: PopId, utc_secs: u64) -> Vec<DemandPoint> {
        deployment
            .pop(pop)
            .served
            .iter()
            .map(|s| DemandPoint {
                prefix_idx: s.prefix_idx,
                mbps: s.avg_mbps * self.multiplier(s.prefix_idx, utc_secs),
            })
            .collect()
    }

    /// Smooth multiplicative noise in `[1-a, 1+a]`, deterministic in
    /// `(seed, prefix)`, continuous in time.
    fn noise(&self, prefix_idx: u32, utc_secs: u64) -> f64 {
        if self.noise_amplitude == 0.0 {
            return 1.0;
        }
        let phase = splitmix(self.seed ^ u64::from(prefix_idx));
        let p1 = (phase & 0xFFFF) as f64 / 65536.0 * std::f64::consts::TAU;
        let p2 = ((phase >> 16) & 0xFFFF) as f64 / 65536.0 * std::f64::consts::TAU;
        let t = utc_secs as f64;
        // Periods of ~37 and ~101 minutes: slow against 30 s cycles.
        let s = 0.6 * (t / 2220.0 * std::f64::consts::TAU + p1).sin()
            + 0.4 * (t / 6060.0 * std::f64::consts::TAU + p2).sin();
        1.0 + self.noise_amplitude * s
    }
}

/// SplitMix64 — tiny, deterministic hash for phase derivation.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ef_topology::{generate, GenConfig};

    fn dep() -> Deployment {
        generate(&GenConfig::small(3))
    }

    #[test]
    fn offered_is_deterministic() {
        let d = dep();
        let m = DemandModel::new(&d, 42);
        let a = m.offered(&d, PopId(0), 3600);
        let b = m.offered(&d, PopId(0), 3600);
        assert_eq!(a, b);
    }

    #[test]
    fn offered_covers_served_prefixes() {
        let d = dep();
        let m = DemandModel::new(&d, 42);
        let offered = m.offered(&d, PopId(1), 0);
        assert_eq!(offered.len(), d.pop(PopId(1)).served.len());
        assert!(offered.iter().all(|p| p.mbps > 0.0));
    }

    #[test]
    fn demand_rises_into_the_regional_peak() {
        let d = dep();
        // No noise: isolate the diurnal effect.
        let m = DemandModel::with_curve(&d, 1, DiurnalCurve::default(), 0.0);
        let pop = d
            .pops
            .iter()
            .find(|p| p.region == Region::Europe)
            .expect("an EU PoP exists");
        // For an EU-origin prefix the peak is 19:00 UTC, the trough 07:00.
        let eu_prefix = pop
            .served
            .iter()
            .map(|s| s.prefix_idx)
            .find(|pi| {
                d.universe
                    .origin_of(&d.universe.prefixes[*pi as usize])
                    .region
                    == Region::Europe
            })
            .expect("an EU prefix is served");
        let peak = m.multiplier(eu_prefix, 19 * 3600);
        let trough = m.multiplier(eu_prefix, 7 * 3600);
        assert!(peak / trough > 5.0, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn noise_is_bounded_and_smooth() {
        let d = dep();
        let m = DemandModel::new(&d, 9);
        let mut prev = None;
        for t in (0..7200).step_by(30) {
            let v = m.multiplier(0, t);
            if let Some(p) = prev {
                let rel: f64 = (v - p) / p;
                assert!(
                    rel.abs() < 0.25,
                    "30s demand step jumped {:.1}%",
                    rel * 100.0
                );
            }
            prev = Some(v);
        }
    }

    #[test]
    fn different_seeds_give_different_noise() {
        let d = dep();
        let a = DemandModel::new(&d, 1).multiplier(5, 1234);
        let b = DemandModel::new(&d, 2).multiplier(5, 1234);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_noise_is_pure_diurnal() {
        let d = dep();
        let m = DemandModel::with_curve(&d, 1, DiurnalCurve::default(), 0.0);
        let region = d.universe.origin_of(&d.universe.prefixes[0]).region;
        let expect = DiurnalCurve::default().multiplier_at_secs(555, region);
        assert!((m.multiplier(0, 555) - expect).abs() < 1e-12);
    }
}
