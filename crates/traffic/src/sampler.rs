//! sFlow-style packet-sampling collector.
//!
//! Production routers export 1-in-N packet samples; Edge Fabric's traffic
//! collector scales them back up into per-prefix rates (paper §4.1). The
//! simulator has no packets, so the sampler inverts the math: given a true
//! rate `r` over an interval `dt`, the number of exported samples is
//! Poisson-distributed with mean `r·dt / (pkt_bytes·8) / N`, and each
//! sample represents `pkt_bytes · N` bytes. Estimates built from these
//! samples carry exactly the sampling error a production collector sees —
//! including the "small prefixes are invisible" effect.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sampler parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerConfig {
    /// 1-in-N packet sampling rate (N).
    pub sample_rate: u32,
    /// Mean packet size in bytes (egress video traffic skews large).
    pub packet_bytes: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            sample_rate: 1000,
            packet_bytes: 1200,
            seed: 1,
        }
    }
}

/// The exported samples for one prefix over one interval, pre-aggregated:
/// `count` packets were sampled, together representing `scaled_bytes`
/// (`count × packet_bytes × N`) of traffic. Aggregation is lossless for
/// rate estimation — the Poisson count carries all the sampling error —
/// while keeping memory O(prefixes) instead of O(samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSample {
    /// Index of the destination prefix.
    pub prefix_idx: u32,
    /// Number of packets sampled in the interval.
    pub count: u64,
    /// Bytes represented after upscaling (`count × packet_bytes × N`).
    pub scaled_bytes: u64,
}

/// The sampling process for one collector.
#[derive(Debug)]
pub struct SflowSampler {
    cfg: SamplerConfig,
    rng: StdRng,
}

impl SflowSampler {
    /// Creates a sampler.
    pub fn new(cfg: SamplerConfig) -> Self {
        SflowSampler {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> SamplerConfig {
        self.cfg
    }

    /// Samples one prefix's traffic over `dt_secs` at true rate `mbps`.
    /// Returns the aggregated sample record, or `None` when no packet was
    /// sampled (common for small prefixes — they are invisible to the
    /// collector, exactly as in production).
    pub fn sample_prefix(
        &mut self,
        prefix_idx: u32,
        mbps: f64,
        dt_secs: f64,
    ) -> Option<FlowSample> {
        if mbps <= 0.0 || dt_secs <= 0.0 {
            return None;
        }
        let bytes = mbps * 1e6 / 8.0 * dt_secs;
        let packets = bytes / self.cfg.packet_bytes as f64;
        let lambda = packets / self.cfg.sample_rate as f64;
        let n = poisson(&mut self.rng, lambda);
        if n == 0 {
            return None;
        }
        let scaled = self.cfg.packet_bytes as u64 * self.cfg.sample_rate as u64;
        Some(FlowSample {
            prefix_idx,
            count: n,
            scaled_bytes: n * scaled,
        })
    }

    /// Samples a whole demand vector, one record per visible prefix.
    pub fn sample_all(
        &mut self,
        demand: impl IntoIterator<Item = (u32, f64)>,
        dt_secs: f64,
    ) -> Vec<FlowSample> {
        demand
            .into_iter()
            .filter_map(|(prefix_idx, mbps)| self.sample_prefix(prefix_idx, mbps, dt_secs))
            .collect()
    }
}

/// Poisson sampling: Knuth's product method for small λ, a rounded normal
/// approximation for large λ (error negligible at λ > 30 for our use).
fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_yields_no_samples() {
        let mut s = SflowSampler::new(SamplerConfig::default());
        assert!(s.sample_prefix(0, 0.0, 60.0).is_none());
        assert!(s.sample_prefix(0, 10.0, 0.0).is_none());
    }

    #[test]
    fn sample_count_tracks_rate() {
        let mut s = SflowSampler::new(SamplerConfig::default());
        // 1000 Mbps for 60 s = 7.5 GB = 6.25M packets of 1200 B → λ = 6250.
        let n = s.sample_prefix(0, 1000.0, 60.0).unwrap().count as f64;
        assert!(
            (n - 6250.0).abs() < 500.0,
            "sample count {n} far from expectation 6250"
        );
    }

    #[test]
    fn upscaled_bytes_reconstruct_rate() {
        let cfg = SamplerConfig::default();
        let mut s = SflowSampler::new(cfg);
        let dt = 60.0;
        let true_mbps = 500.0;
        let sample = s.sample_prefix(0, true_mbps, dt).unwrap();
        let est_mbps = sample.scaled_bytes as f64 * 8.0 / dt / 1e6;
        let rel = (est_mbps - true_mbps).abs() / true_mbps;
        assert!(rel < 0.10, "estimate off by {:.1}%", rel * 100.0);
        assert_eq!(
            sample.scaled_bytes,
            sample.count * u64::from(cfg.packet_bytes) * u64::from(cfg.sample_rate)
        );
    }

    #[test]
    fn tiny_prefixes_are_often_invisible() {
        // 0.05 Mbps for 30 s ≈ 156 packets → λ ≈ 0.16: most intervals
        // export nothing, the real-world small-prefix blindness.
        let mut s = SflowSampler::new(SamplerConfig::default());
        let mut empty = 0;
        for _ in 0..100 {
            if s.sample_prefix(7, 0.05, 30.0).is_none() {
                empty += 1;
            }
        }
        assert!(empty > 70, "only {empty}/100 intervals were empty");
    }

    #[test]
    fn sample_all_keeps_per_prefix_records() {
        let mut s = SflowSampler::new(SamplerConfig::default());
        let samples = s.sample_all(vec![(1, 800.0), (2, 400.0)], 30.0);
        assert_eq!(samples.len(), 2);
        let one = samples.iter().find(|f| f.prefix_idx == 1).unwrap();
        let two = samples.iter().find(|f| f.prefix_idx == 2).unwrap();
        assert!(one.count > two.count, "heavier prefix samples more packets");
    }

    #[test]
    fn determinism_per_seed() {
        let a = SflowSampler::new(SamplerConfig::default()).sample_prefix(0, 100.0, 30.0);
        let b = SflowSampler::new(SamplerConfig::default()).sample_prefix(0, 100.0, 30.0);
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = StdRng::seed_from_u64(5);
        for lambda in [0.5, 5.0, 200.0] {
            let n = 3000;
            let mean: f64 = (0..n)
                .map(|_| poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            let rel = (mean - lambda).abs() / lambda;
            assert!(rel < 0.12, "λ={lambda}: sample mean {mean}");
        }
    }
}
