//! Traffic substrate for the Edge Fabric reproduction.
//!
//! The production system consumes two traffic signals (paper §4.1):
//!
//! 1. the *actual* egress demand placed on each PoP, which in production is
//!    oceans of user traffic — here a [`DemandModel`] combining the
//!    deployment's Zipf per-prefix averages with region-phased
//!    [`diurnal`] curves and slow multiplicative noise; and
//! 2. the controller's *estimate* of that demand, built from sampled flow
//!    records — here an sFlow-style [`sampler`] feeding a windowed
//!    [`RateEstimator`], so the controller sees realistic sampling error
//!    rather than ground truth.
//!
//! [`heavy::SpaceSaving`] provides the top-k heavy-hitter structure used to
//! bound controller work per cycle.

pub mod demand;
pub mod diurnal;
pub mod estimator;
pub mod heavy;
pub mod sampler;

pub use demand::{DemandModel, DemandPoint};
pub use diurnal::DiurnalCurve;
pub use estimator::RateEstimator;
pub use heavy::SpaceSaving;
pub use sampler::{FlowSample, SamplerConfig, SflowSampler};
