//! Congestion response: with/without Edge Fabric on the same world.
//!
//! Runs the same deployment, demand, and seeds twice — once with the
//! controller disabled (baseline BGP) and once enabled — through an evening
//! peak, then compares the busiest interface's utilization trajectory, the
//! drop volume, and the user-visible RTT on the congested path.
//!
//! Run with: `cargo run --release --example congestion_response`

use ef_bgp::route::EgressId;
use ef_sim::{scenario, ScenarioBuilder, SimConfig};
use ef_topology::{generate, GenConfig};

fn main() {
    let cfg = scenario()
        .topology(GenConfig {
            n_pops: 8,
            n_ases: 200,
            n_prefixes: 1200,
            total_avg_gbps: 3000.0,
            ..GenConfig::default()
        })
        .hours(6) // span a regional peak
        .epoch_secs(30)
        .build();

    let deployment = generate(&cfg.gen);

    // Pick the tightest private interconnect to watch: run a short baseline
    // probe and take the interface with the most overload.
    println!("== Probing for the busiest interface ==");
    let mut probe =
        ScenarioBuilder::from_config(cfg.clone().baseline()).engine_with(deployment.clone());
    probe.run_epochs(cfg.duration_secs / cfg.epoch_secs / 4);
    let probe_metrics = probe.take_metrics();
    let victim = probe_metrics
        .worst_interfaces()
        .first()
        .map(|s| EgressId(s.egress))
        .expect("some interface exists");
    let victim_stats = &probe_metrics.interfaces[&victim];
    println!(
        "watching if{} ({}, {:.0} Mbps capacity, peak {:.0}% in probe)\n",
        victim.0,
        victim_stats.kind,
        victim_stats.capacity_mbps,
        victim_stats.peak_util * 100.0
    );

    let run_arm = |label: &str, arm_cfg: SimConfig| -> (Vec<(u64, f64)>, f64, f64) {
        println!("== Running {label} arm ==");
        let mut engine = ScenarioBuilder::from_config(arm_cfg).engine_with(deployment.clone());
        engine.flag_interface(victim);
        engine.run();
        let metrics = engine.take_metrics();
        let series = metrics.series.get(&victim).cloned().unwrap_or_default();
        let drops: f64 = metrics.pop_epochs.iter().map(|r| r.dropped_mbps).sum();
        let offered: f64 = metrics.pop_epochs.iter().map(|r| r.offered_mbps).sum();
        (series, drops, offered)
    };

    let (base_series, base_drops, base_offered) = run_arm("baseline BGP", cfg.clone().baseline());
    let (ef_series, ef_drops, ef_offered) = run_arm("Edge Fabric", cfg.clone());

    let capacity = victim_stats.capacity_mbps;
    let perf = &ScenarioBuilder::from_config(cfg.clone())
        .engine_with(deployment.clone())
        .perf_model;

    println!(
        "\n-- if{} utilization through the peak (20-min samples) --",
        victim.0
    );
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>12}",
        "t(h)", "baseline util", "EF util", "base RTT+", "EF RTT+"
    );
    for (i, ((t, base_load), (_, ef_load))) in base_series.iter().zip(ef_series.iter()).enumerate()
    {
        if i % 40 != 0 {
            continue; // print every 40th epoch = 20 min
        }
        let bu = base_load / capacity;
        let eu = ef_load / capacity;
        println!(
            "{:>6.1} {:>13.0}% {:>13.0}% {:>10.1}ms {:>10.1}ms",
            *t as f64 / 3600.0,
            bu * 100.0,
            eu * 100.0,
            perf.congestion_delay_ms(bu),
            perf.congestion_delay_ms(eu)
        );
    }

    println!("\n-- Outcome --");
    println!(
        "baseline: dropped {:.3}% of offered traffic; peak util {:.0}%",
        100.0 * base_drops / base_offered,
        base_series
            .iter()
            .map(|(_, l)| l / capacity)
            .fold(0.0f64, f64::max)
            * 100.0
    );
    println!(
        "edge fabric: dropped {:.3}% of offered traffic; peak util {:.0}%",
        100.0 * ef_drops / ef_offered,
        ef_series
            .iter()
            .map(|(_, l)| l / capacity)
            .fold(0.0f64, f64::max)
            * 100.0
    );
    let improvement = if ef_drops > 0.0 {
        base_drops / ef_drops
    } else {
        f64::INFINITY
    };
    println!("drop reduction: {improvement:.0}x");
}
