//! Quickstart: the Edge Fabric mechanism on one hand-built PoP.
//!
//! Builds a router with one under-provisioned private interconnect and one
//! big transit, drives demand past the PNI's capacity, and shows the
//! controller detecting the overload, injecting a BGP override, and
//! reverting it when the peak passes.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashMap;

use edge_fabric::state::InterfaceInfo;
use edge_fabric::{ControllerConfig, PopController};
use ef_bgp::attrs::{AsPath, PathAttributes};
use ef_bgp::peer::{PeerId, PeerKind};
use ef_bgp::policy::Policy;
use ef_bgp::route::EgressId;
use ef_bgp::router::{BgpRouter, PeerAttachment, PeerStub, RouterConfig};
use ef_net_types::{Asn, Prefix};

fn main() {
    // --- A PoP with two interconnects --------------------------------------
    // egress 1: private peering with AS65001, 100 Mbps (the preferred path)
    // egress 2: transit via AS65010, effectively unlimited
    let mut router = BgpRouter::new(RouterConfig {
        name: "demo-pop-pr0".into(),
        asn: Asn::LOCAL,
        router_id: "10.0.0.1".parse().unwrap(),
    });
    for (id, asn, kind, egress) in [
        (1u64, 65001u32, PeerKind::PrivatePeer, 1u32),
        (2, 65010, PeerKind::Transit, 2),
    ] {
        router.add_peer(PeerAttachment {
            peer: PeerId(id),
            peer_asn: Asn(asn),
            kind,
            egress: EgressId(egress),
            policy: Policy::default_import(Asn::LOCAL, kind),
            max_prefixes: 0,
        });
    }
    let mut peer = PeerStub::new(PeerId(1), Asn(65001), "10.9.0.1".parse().unwrap());
    let mut transit = PeerStub::new(PeerId(2), Asn(65010), "10.9.0.2".parse().unwrap());
    peer.pump(&mut router, 0);
    transit.pump(&mut router, 0);

    // AS65001 originates two /24s; transit also reaches them (longer path).
    let prefixes: Vec<Prefix> = ["203.0.113.0/24", "198.51.100.0/24"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    for prefix in &prefixes {
        peer.announce(
            &mut router,
            *prefix,
            PathAttributes {
                as_path: AsPath::sequence([Asn(65001)]),
                ..Default::default()
            },
            0,
        );
        transit.announce(
            &mut router,
            *prefix,
            PathAttributes {
                as_path: AsPath::sequence([Asn(65010), Asn(65001)]),
                ..Default::default()
            },
            0,
        );
    }

    // --- Attach the controller ---------------------------------------------
    let interfaces = HashMap::from([
        (
            EgressId(1),
            InterfaceInfo::new(100.0, PeerKind::PrivatePeer),
        ),
        (
            EgressId(2),
            InterfaceInfo::new(100_000.0, PeerKind::Transit),
        ),
    ]);
    let mut controller =
        PopController::new(0, ControllerConfig::default(), interfaces, &mut router);
    controller.ingest_bmp(router.drain_bmp());

    let show_fib = |router: &BgpRouter, label: &str| {
        println!("  FIB ({label}):");
        for prefix in &prefixes {
            let entry = router.fib_entry(prefix).expect("route installed");
            println!(
                "    {prefix} -> if{}{}",
                entry.egress.0,
                if entry.is_override {
                    "  [controller override]"
                } else {
                    ""
                }
            );
        }
    };

    println!("== Edge Fabric quickstart ==\n");
    println!("Both prefixes prefer the 100 Mbps private interconnect (BGP tiering):");
    show_fib(&router, "initial");

    // --- Off-peak: everything fits ------------------------------------------
    let off_peak = HashMap::from([(prefixes[0], 40.0), (prefixes[1], 30.0)]);
    let report = controller.run_epoch(&off_peak, &mut router, 30_000);
    println!("\nEpoch 1 (off-peak, 70 Mbps offered):");
    println!(
        "  overloaded interfaces: {}, overrides active: {}",
        report.overloaded_before.len(),
        report.overrides_active
    );

    // --- Peak: 150 Mbps cannot fit the preferred 100 Mbps link ---------------
    let peak = HashMap::from([(prefixes[0], 80.0), (prefixes[1], 70.0)]);
    let report = controller.run_epoch(&peak, &mut router, 60_000);
    println!("\nEpoch 2 (evening peak, 150 Mbps offered):");
    println!(
        "  projected overload on if1: {:.0}% of capacity",
        report
            .overloaded_before
            .first()
            .map(|(_, u)| u * 100.0)
            .unwrap_or(0.0)
    );
    println!(
        "  controller injected {} override(s), detouring {:.0} Mbps to transit",
        report.churn_announced, report.detoured_mbps
    );
    show_fib(&router, "under override");

    // --- Peak passes: the stateless recompute withdraws -----------------------
    let report = controller.run_epoch(&off_peak, &mut router, 90_000);
    println!("\nEpoch 3 (demand falls back to 70 Mbps):");
    println!(
        "  withdrawals sent: {}, overrides active: {}",
        report.churn_withdrawn, report.overrides_active
    );
    show_fib(&router, "reverted");

    println!("\nEvery override travelled as a real BGP UPDATE (wire-encoded and");
    println!("re-decoded by the router) and won the standard decision process via");
    println!("LOCAL_PREF — withdraw the announcement and plain BGP is back.");
}
