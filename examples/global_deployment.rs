//! Global deployment: a 20-PoP, paper-scale (laptop-sized) edge.
//!
//! Generates the default deployment, prints the Table-1-style interconnect
//! summary and route diversity, then simulates three evening hours with the
//! controller enabled and reports what Edge Fabric did at each PoP.
//!
//! Run with: `cargo run --release --example global_deployment`

use ef_sim::scenario;
use ef_topology::stats::{pop_summaries, route_diversity};

fn main() {
    // Three hours around the first regional evening peaks.
    let cfg = scenario().hours(3).epoch_secs(30).build();

    println!("== Building deployment (seed {}) ==", cfg.gen.seed);
    let mut engine = ef_sim::ScenarioBuilder::from_config(cfg).engine();
    let dep = &engine.deployment;
    println!(
        "{} PoPs, {} BGP adjacencies, {} egress interfaces, {} prefixes from {} eyeball ASes\n",
        dep.pops.len(),
        dep.peer_count(),
        dep.interface_count(),
        dep.universe.prefixes.len(),
        dep.universe.ases.len()
    );

    println!("-- Table 1: PoP interconnection characteristics --");
    println!(
        "{:<12} {:>3} {:>4} {:>8} {:>7} {:>7} {:>6} {:>10} {:>10}",
        "pop", "reg", "PRs", "transit", "private", "public", "rs", "cap(Gbps)", "avg(Gbps)"
    );
    for row in pop_summaries(dep) {
        println!(
            "{:<12} {:>3} {:>4} {:>8} {:>7} {:>7} {:>6} {:>10.0} {:>10.1}",
            row.name,
            row.region,
            row.routers,
            row.transit_peers,
            row.private_peers,
            row.public_peers,
            row.route_server_peers,
            row.capacity_gbps,
            row.avg_demand_gbps
        );
    }

    println!("\n-- Fig 2 shape: traffic-weighted route diversity --");
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7}",
        "pop", ">=1", ">=2", ">=3", ">=4"
    );
    for d in route_diversity(dep) {
        println!(
            "{:<12} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            d.name,
            d.frac_traffic_ge[0] * 100.0,
            d.frac_traffic_ge[1] * 100.0,
            d.frac_traffic_ge[2] * 100.0,
            d.frac_traffic_ge[3] * 100.0
        );
    }

    println!(
        "\n== Simulating {} epochs of 30 s with Edge Fabric enabled ==",
        3 * 120
    );
    engine.run();
    assert!(
        engine.all_sessions_up(),
        "all BGP sessions survived the run"
    );
    let metrics = engine.take_metrics();

    // Per-PoP rollup.
    println!("\n-- Controller activity per PoP --");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "pop", "peak detour", "mean detour", "overrides", "announces", "withdraws"
    );
    for pop in &engine.deployment.pops {
        let records: Vec<_> = metrics
            .pop_epochs
            .iter()
            .filter(|r| r.pop == pop.id.0)
            .collect();
        if records.is_empty() {
            continue;
        }
        let peak = records
            .iter()
            .map(|r| r.detoured_mbps / r.offered_mbps.max(1.0))
            .fold(0.0f64, f64::max);
        let mean = records
            .iter()
            .map(|r| r.detoured_mbps / r.offered_mbps.max(1.0))
            .sum::<f64>()
            / records.len() as f64;
        let max_ov = records
            .iter()
            .map(|r| r.overrides_active)
            .max()
            .unwrap_or(0);
        let announces: usize = records.iter().map(|r| r.churn_announced).sum();
        let withdraws: usize = records.iter().map(|r| r.churn_withdrawn).sum();
        println!(
            "{:<12} {:>11.1}% {:>11.1}% {:>10} {:>9} {:>9}",
            pop.name,
            peak * 100.0,
            mean * 100.0,
            max_ov,
            announces,
            withdraws
        );
    }

    // Overload outcome.
    let interfaces_over_cap = metrics
        .interfaces
        .values()
        .filter(|s| s.epochs_over_capacity > 0)
        .count();
    let total_drops: f64 = metrics.pop_epochs.iter().map(|r| r.dropped_mbps).sum();
    let total_offered: f64 = metrics.pop_epochs.iter().map(|r| r.offered_mbps).sum();
    println!(
        "\nInterfaces that ever exceeded capacity: {} / {}",
        interfaces_over_cap,
        metrics.interfaces.len()
    );
    println!(
        "Traffic dropped: {:.4}% of offered (Edge Fabric keeps drops to transients)",
        100.0 * total_drops / total_offered
    );
    println!(
        "Detour episodes completed: {} (median duration {}s)",
        metrics.episodes.len(),
        median_duration(&metrics)
    );
}

fn median_duration(metrics: &ef_sim::MetricsStore) -> u64 {
    let mut durations: Vec<u64> = metrics.episodes.iter().map(|e| e.duration_secs()).collect();
    if durations.is_empty() {
        return 0;
    }
    durations.sort_unstable();
    durations[durations.len() / 2]
}
