//! Performance-aware Edge Fabric (paper §6).
//!
//! Runs alternate-path measurement slices over a deployment, reports how
//! often BGP's preferred path is *not* the best-performing one, then turns
//! on §6.2 steering and shows the tail of prefixes being moved to their
//! faster alternates without creating congestion.
//!
//! Run with: `cargo run --release --example performance_aware`

use std::collections::HashMap;

use ef_bgp::route::EgressId;
use ef_perf::compare::{compare_paths, summarize};
use ef_sim::{scenario, PerfSimConfig, ScenarioBuilder};
use ef_topology::GenConfig;

fn main() {
    let cfg = scenario()
        .topology(GenConfig {
            n_pops: 6,
            n_ases: 150,
            n_prefixes: 900,
            total_avg_gbps: 2000.0,
            ..GenConfig::default()
        })
        .hours(2)
        .epoch_secs(30)
        .perf(PerfSimConfig {
            slice_fraction: 0.005,
            steer: false, // measure first, steer later
            ..Default::default()
        })
        .build();

    println!("== Phase 1: measurement only (§6.1) ==");
    let mut engine = ScenarioBuilder::from_config(cfg.clone()).engine();
    engine.run();

    // Compare preferred vs alternates at each PoP.
    let mut all_summaries = Vec::new();
    for pop in &engine.pops {
        let Some(measurer) = pop.measurer.as_ref() else {
            continue;
        };
        // Preferred egress per measured prefix, from the live FIB.
        let preferred: HashMap<u32, EgressId> = measurer
            .report()
            .iter()
            .filter_map(|d| {
                let prefix = engine.prefix_of(d.key.prefix_idx);
                pop.router
                    .fib_entry(&prefix)
                    .map(|e| (d.key.prefix_idx, e.egress))
            })
            .collect();
        let comparisons = compare_paths(measurer, &preferred);
        let summary = summarize(&comparisons);
        println!(
            "{:<12} prefixes measured: {:>4}  equivalent: {:>5.1}%  alt >=20ms faster: {:>4.1}%  pref >=20ms faster: {:>4.1}%",
            pop.pop.name,
            summary.prefixes,
            summary.frac_equivalent * 100.0,
            summary.frac_alt_wins_20ms * 100.0,
            summary.frac_pref_wins_20ms * 100.0
        );
        all_summaries.push(summary);
    }
    let mean_tail: f64 = all_summaries
        .iter()
        .map(|s| s.frac_alt_wins_20ms)
        .sum::<f64>()
        / all_summaries.len().max(1) as f64;
    println!(
        "\nAcross PoPs, ~{:.1}% of measured prefixes have an alternate >=20 ms faster",
        mean_tail * 100.0
    );
    println!("than the BGP-preferred path — the tail §6 targets.\n");

    println!("== Phase 2: steering enabled (§6.2) ==");
    let mut engine = ScenarioBuilder::from_config(cfg)
        .perf(PerfSimConfig {
            slice_fraction: 0.005,
            steer: true,
            ..Default::default()
        })
        .engine();
    engine.run();
    let metrics = engine.take_metrics();

    let perf_overrides: usize = engine
        .pops
        .iter()
        .filter_map(|p| p.controller.as_ref())
        .map(|c| {
            c.active_overrides()
                .iter_sorted()
                .iter()
                .filter(|o| o.reason == edge_fabric::OverrideReason::Performance)
                .count()
        })
        .sum();
    let cap_overrides: usize = engine
        .pops
        .iter()
        .filter_map(|p| p.controller.as_ref())
        .map(|c| {
            c.active_overrides()
                .iter_sorted()
                .iter()
                .filter(|o| o.reason == edge_fabric::OverrideReason::Capacity)
                .count()
        })
        .sum();
    println!(
        "active overrides at end of run: {perf_overrides} performance, {cap_overrides} capacity"
    );

    let over_cap = metrics
        .interfaces
        .values()
        .filter(|s| s.epochs_over_capacity > 0)
        .count();
    println!(
        "interfaces ever over capacity with steering on: {over_cap} / {} — perf",
        metrics.interfaces.len()
    );
    println!("steering must not create congestion; the capacity pass vets every move.");
}
